//! `ppsim` — command-line front end for the uniform-sizeest library.
//!
//! ```text
//! ppsim estimate   --n 1000 [--seed S]         uniform log-size estimation (Thm 3.1)
//! ppsim weak       --n 1000 [--seed S]         Alistarh et al. weak estimator
//! ppsim upper      --n 1000 [--seed S]         probability-1 upper bound (§3.3)
//! ppsim terminate  --n 1000 [--seed S]         terminating with a leader (Thm 3.13)
//! ppsim count      --n 1000 [--seed S]         exact counting with a leader
//! ppsim majority   --n 1000 --ones 600 [--seed S]   uniformized majority
//! ppsim impossible --n 100000 [--seed S]       Theorem 4.1 demo (dense counter)
//! ```

use std::collections::BTreeMap;

fn parse_args() -> (String, BTreeMap<String, u64>) {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| {
        eprintln!("usage: ppsim <estimate|weak|upper|terminate|count|majority|impossible> [--n N] [--seed S] [--ones K]");
        std::process::exit(2);
    });
    let mut opts = BTreeMap::new();
    opts.insert("n".to_string(), 1000);
    opts.insert("seed".to_string(), 1);
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .unwrap_or_else(|| {
                eprintln!("unexpected argument {}", rest[i]);
                std::process::exit(2);
            })
            .to_string();
        i += 1;
        let value: u64 = rest.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("--{key} needs an integer value");
            std::process::exit(2);
        });
        opts.insert(key, value);
        i += 1;
    }
    (cmd, opts)
}

fn main() {
    let (cmd, opts) = parse_args();
    let n = opts["n"] as usize;
    let seed = opts["seed"];
    let logn = (n as f64).log2();
    match cmd.as_str() {
        "estimate" => {
            let out = uniform_sizeest::protocols::log_size::estimate_log_size(n, seed, None);
            println!(
                "converged: {} at parallel time {:.0}",
                out.converged, out.time
            );
            match out.output {
                Some(k) => println!(
                    "estimate k = {k} (log2 n = {logn:.3}, error {:+.3})",
                    k as f64 - logn
                ),
                None => println!("no output (budget exhausted)"),
            }
        }
        "weak" => {
            let out = uniform_sizeest::baselines::alistarh::weak_estimate(n, seed);
            println!(
                "weak estimate k = {} (log2 n = {logn:.3}, error {:+.3}) in time {:.1}",
                out.estimate,
                out.estimate as f64 - logn,
                out.time
            );
        }
        "upper" => {
            let out = uniform_sizeest::protocols::upper_bound::estimate_upper_bound(
                n,
                seed,
                20.0 * n as f64,
            );
            println!(
                "report = {} (>= log2 n = {logn:.3}: {}), backup kex = {}, fast time {:.0}",
                out.report,
                out.report as f64 >= logn,
                out.kex,
                out.fast_time
            );
        }
        "terminate" => {
            let out = uniform_sizeest::protocols::leader::run_terminating(n, seed, 1e9);
            if out.terminated {
                println!(
                    "leader terminated at t = {:.0}; estimate {:?} (agreement {:.1}%)",
                    out.termination_time,
                    out.output,
                    out.agreement * 100.0
                );
            } else {
                println!("did not terminate within budget");
            }
        }
        "count" => {
            let out = uniform_sizeest::baselines::exact_leader::run_exact_count(n, seed, 1e9);
            println!(
                "leader counted {} of {} agents (terminated: {}) in time {:.0}",
                out.count, n, out.terminated, out.time
            );
        }
        "majority" => {
            let ones = *opts.get("ones").unwrap_or(&(n as u64 * 3 / 5)) as usize;
            let out =
                uniform_sizeest::baselines::majority::run_uniform_majority(n, ones, seed, 1e9);
            println!(
                "uniformized majority over {ones}/{n} ones: winner {:?} in time {:.0}",
                out.winner, out.time
            );
        }
        "impossible" => {
            let rel = uniform_sizeest::termination::experiment::counter_protocol(8);
            let t = uniform_sizeest::termination::experiment::signal_time(
                &rel,
                uniform_sizeest::termination::experiment::counter_dense_config(n as u64),
                |&s| s == uniform_sizeest::termination::experiment::COUNTER_T,
                1e6,
                seed,
            );
            println!(
                "dense counter(8) raised its termination signal at t = {:.2} (n = {n})",
                t.expect("dense counter terminates")
            );
            println!("(Theorem 4.1: this stays O(1) no matter how large n gets)");
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}
