//! # uniform-sizeest — workspace facade
//!
//! Reproduction of Doty & Eftekhari, *"Efficient size estimation and
//! impossibility of termination in uniform dense population protocols"*
//! (PODC 2019). This crate re-exports the workspace members under one roof
//! so examples and downstream users can depend on a single crate:
//!
//! * [`engine`] — the population-protocol simulation substrate.
//! * [`analysis`] — the probability toolkit (Appendix D/E lemmas).
//! * [`protocols`] — the paper's size-estimation protocols (the core
//!   contribution).
//! * [`baselines`] — comparison protocols and downstream clients.
//! * [`termination`] — Theorem 4.1 machinery (producibility, density).
//! * [`sweep`] — the parallel sweep orchestrator (specs, journals,
//!   shards).
//!
//! # Example
//!
//! ```
//! use uniform_sizeest::protocols::log_size::estimate_log_size;
//!
//! let outcome = estimate_log_size(100, 42, None);
//! assert!(outcome.converged);
//! let k = outcome.output.unwrap() as f64;
//! assert!((k - 100f64.log2()).abs() <= 5.7); // Theorem 3.1's band
//! ```

pub use pp_analysis as analysis;
pub use pp_baselines as baselines;
pub use pp_core as protocols;
pub use pp_engine as engine;
pub use pp_sweep as sweep;
pub use pp_termination as termination;
