//! Coin-tournament leader election — the second downstream client.
//!
//! The fast leader-election protocols the paper cites run `Θ(log n)`
//! synchronized rounds of coin-flip elimination. Per stage, every surviving
//! contender flips a fair coin; the stage's maximum flip spreads by
//! epidemic, and contenders holding a smaller flip drop out. Each stage
//! halves the contenders in expectation and can never eliminate the last
//! one (only an agent that flipped heads can eliminate tails-flippers, and
//! that agent survives its own stage), so after `Θ(log n)` stages exactly
//! one contender remains w.h.p.
//!
//! Implemented as a [`Downstream`] client of the composition framework, so
//! the stage pacing comes from the uniform leaderless phase clock — the
//! protocol never sees `n`.

use pp_core::composition::Downstream;
use pp_engine::rng::SimRng;
use rand::Rng;

/// Downstream per-agent election state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElectionState {
    /// Still in the running.
    pub contender: bool,
    /// This stage's coin flip (contenders only; 0 for spectators).
    pub coin: u8,
    /// Largest flip observed this stage (spread by epidemic).
    pub best_seen: u8,
    /// The stage the agent last re-flipped for.
    pub flipped_for_stage: u64,
}

/// The tournament protocol.
#[derive(Debug, Clone, Copy)]
pub struct CoinTournament {
    /// Stage count multiplier (stages = `stage_factor · s`; default 3 —
    /// about `3 log n` halvings).
    pub stage_factor: u64,
    /// Clock multiplier per stage (default 95).
    pub clock_factor: u64,
}

impl Default for CoinTournament {
    fn default() -> Self {
        Self {
            stage_factor: 3,
            clock_factor: 95,
        }
    }
}

impl CoinTournament {
    /// Re-flip at a stage boundary.
    fn refresh(&self, a: &mut ElectionState, stage: u64, rng: &mut SimRng) {
        if a.flipped_for_stage != stage {
            a.flipped_for_stage = stage;
            a.coin = if a.contender { rng.gen_range(0..=1) } else { 0 };
            a.best_seen = a.coin;
        }
    }
}

impl Downstream for CoinTournament {
    type State = ElectionState;

    fn num_stages(&self, s: u64) -> u64 {
        self.stage_factor * s
    }

    fn stage_threshold(&self, s: u64) -> u64 {
        self.clock_factor * s
    }

    fn fresh(&self, _s: u64, _agent_input: u64, _rng: &mut SimRng) -> ElectionState {
        ElectionState {
            contender: true,
            coin: 0,
            best_seen: 0,
            flipped_for_stage: u64::MAX, // force a flip at stage 0
        }
    }

    fn interact(
        &self,
        rec: &mut ElectionState,
        sen: &mut ElectionState,
        rec_stage: u64,
        sen_stage: u64,
        _s: u64,
        rng: &mut SimRng,
    ) {
        self.refresh(rec, rec_stage, rng);
        self.refresh(sen, sen_stage, rng);
        if rec_stage != sen_stage {
            return;
        }
        // Spread the stage maximum and eliminate low flippers.
        let best = rec.best_seen.max(sen.best_seen);
        rec.best_seen = best;
        sen.best_seen = best;
        for a in [rec, sen] {
            if a.contender && a.coin < best {
                a.contender = false;
            }
        }
    }

    fn output(&self, state: &ElectionState) -> Option<u64> {
        Some(u64::from(state.contender))
    }
}

/// Result of an election run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ElectionOutcome {
    /// Number of surviving contenders (want exactly 1).
    pub contenders: usize,
    /// Parallel time at which all stages completed.
    pub time: f64,
    /// Whether the run finished its stages within the budget.
    pub converged: bool,
}

/// Runs the uniformized election on `n` agents.
pub fn run_uniform_election(n: usize, seed: u64, max_time: f64) -> ElectionOutcome {
    let tournament = CoinTournament::default();
    let mut sim = pp_core::composition::composed_population(tournament, n, seed, |_| 0);
    let out = sim.run_until(
        |view| {
            view.iter()
                .all(|(c, _)| c.stage >= tournament.num_stages(c.estimate))
        },
        max_time,
    );
    let contenders: u64 = sim
        .view()
        .iter()
        .filter(|(c, _)| c.inner.contender)
        .map(|(_, k)| k)
        .sum();
    ElectionOutcome {
        contenders: contenders as usize,
        time: out.time,
        converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::rng::rng_from_seed;

    #[test]
    fn elimination_requires_higher_flip() {
        let t = CoinTournament::default();
        let mut rng = rng_from_seed(1);
        let mut a = ElectionState {
            contender: true,
            coin: 0,
            best_seen: 0,
            flipped_for_stage: 3,
        };
        let mut b = ElectionState {
            contender: true,
            coin: 1,
            best_seen: 1,
            flipped_for_stage: 3,
        };
        t.interact(&mut a, &mut b, 3, 3, 5, &mut rng);
        assert!(!a.contender, "tails loses to heads");
        assert!(b.contender, "heads survives");
    }

    #[test]
    fn different_stages_do_not_interact() {
        let t = CoinTournament::default();
        let mut rng = rng_from_seed(2);
        let mut a = ElectionState {
            contender: true,
            coin: 0,
            best_seen: 0,
            flipped_for_stage: 2,
        };
        let mut b = ElectionState {
            contender: true,
            coin: 1,
            best_seen: 1,
            flipped_for_stage: 3,
        };
        t.interact(&mut a, &mut b, 2, 3, 5, &mut rng);
        assert!(a.contender, "cross-stage evidence must not eliminate");
    }

    #[test]
    fn spectators_relay_evidence() {
        let t = CoinTournament::default();
        let mut rng = rng_from_seed(3);
        let mut spectator = ElectionState {
            contender: false,
            coin: 0,
            best_seen: 1,
            flipped_for_stage: 4,
        };
        let mut victim = ElectionState {
            contender: true,
            coin: 0,
            best_seen: 0,
            flipped_for_stage: 4,
        };
        t.interact(&mut spectator, &mut victim, 4, 4, 5, &mut rng);
        assert!(!victim.contender, "relayed heads should eliminate");
    }

    #[test]
    fn election_converges_to_unique_leader() {
        let mut unique = 0;
        let trials = 5;
        for seed in 0..trials {
            let out = run_uniform_election(200, 40 + seed, 3e6);
            assert!(out.converged, "seed {seed} did not finish stages");
            assert!(out.contenders >= 1, "seed {seed} eliminated everyone");
            if out.contenders == 1 {
                unique += 1;
            }
        }
        assert!(
            unique >= trials - 1,
            "only {unique}/{trials} elected a unique leader"
        );
    }
}
