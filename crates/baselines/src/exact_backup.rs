//! The slow exact `l_i / f_i` backup protocol of §3.3, standalone.
//!
//! Transitions (all agents start as `l_0`):
//!
//! ```text
//! l_i, l_i -> l_{i+1}, f_{i+1}
//! f_i, f_j -> f_i, f_i           for j < i
//! ```
//!
//! Level-`i` leaders pair up and carry like a binary counter, so the
//! surviving leaders sit exactly at the set bits of `n`'s binary expansion
//! and the maximum level ever created is `⌊log2 n⌋` — reached with
//! probability 1 in `O(n)` expected time (the last two leaders of a level
//! need `Θ(n)` time to find each other).
//!
//! Implemented as a [`DeterministicCountProtocol`] so the `O(n)`-time
//! experiments run at `n = 10^6` and beyond: the state space is only
//! `O(log n)` values, and the long null-dominated tail (the last two
//! leaders of a level searching for each other) is exactly what the
//! batched engine's Gillespie-style null skipping accelerates.

use pp_engine::batch::DeterministicCountProtocol;
use pp_engine::Simulation;

/// Backup state: leader or follower at a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackupState {
    /// `l_level`: an unmerged leader of its level.
    Leader(u32),
    /// `f_level`: a follower carrying the level it last heard.
    Follower(u32),
}

impl BackupState {
    /// The subscript (the value the agent reports).
    pub fn level(self) -> u32 {
        match self {
            BackupState::Leader(i) | BackupState::Follower(i) => i,
        }
    }
}

/// The exact backup protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackup;

impl DeterministicCountProtocol for ExactBackup {
    type State = BackupState;

    fn transition_det(&self, rec: BackupState, sen: BackupState) -> (BackupState, BackupState) {
        use BackupState::*;
        match (rec, sen) {
            (Leader(i), Leader(j)) if i == j => (Leader(i + 1), Follower(i + 1)),
            (Follower(i), Follower(j)) if i != j => {
                let m = i.max(j);
                (Follower(m), Follower(m))
            }
            other => other,
        }
    }
}

/// Outcome of a backup run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackupOutcome {
    /// The maximum level reached (must equal `⌊log2 n⌋` at stabilization).
    pub max_level: u32,
    /// Parallel time until the level structure was silent (no two leaders
    /// share a level).
    pub silent_time: f64,
    /// The multiset of surviving leader levels — the set bits of `n`.
    pub leader_levels: Vec<u32>,
}

/// Runs the backup to silence (no same-level leader pair remains) on the
/// count engines — batched with null skipping at large `n`.
pub fn run_backup(n: u64, seed: u64) -> BackupOutcome {
    let (out, sim) = Simulation::count_builder(ExactBackup)
        .size(n)
        .uniform(BackupState::Leader(0))
        .seed(seed)
        .check_every((n / 4).max(1))
        .until(|view| {
            // Silent when every leader level has count ≤ 1.
            view.iter().all(|(s, k)| match s {
                BackupState::Leader(_) => *k <= 1,
                BackupState::Follower(_) => true,
            })
        })
        .run();
    debug_assert!(out.converged);
    let final_view = sim.view();
    let mut leader_levels: Vec<u32> = final_view
        .iter()
        .filter_map(|(s, k)| match s {
            BackupState::Leader(i) if *k > 0 => Some(*i),
            _ => None,
        })
        .collect();
    leader_levels.sort_unstable();
    let max_level = final_view.iter().map(|(s, _)| s.level()).max().unwrap_or(0);
    BackupOutcome {
        max_level,
        silent_time: out.time,
        leader_levels,
    }
}

/// The value the backup computes: `⌊log2 n⌋`.
pub fn expected_kex(n: u64) -> u32 {
    assert!(n >= 1);
    63 - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::batch::ConfigSim;
    use pp_engine::count_sim::CountConfiguration;

    #[test]
    fn expected_kex_is_floor_log2() {
        assert_eq!(expected_kex(1), 0);
        assert_eq!(expected_kex(2), 1);
        assert_eq!(expected_kex(3), 1);
        assert_eq!(expected_kex(4), 2);
        assert_eq!(expected_kex(1023), 9);
        assert_eq!(expected_kex(1024), 10);
    }

    #[test]
    fn backup_computes_floor_log2_exactly() {
        for n in [64u64, 100, 255, 256, 1000] {
            let out = run_backup(n, n);
            assert_eq!(
                out.max_level,
                expected_kex(n),
                "n={n}: got {}",
                out.max_level
            );
        }
    }

    #[test]
    fn surviving_leaders_are_binary_expansion() {
        // n = 100 = 0b1100100: surviving leader levels must sum 2^i = 100.
        let out = run_backup(100, 7);
        let total: u64 = out.leader_levels.iter().map(|&i| 1u64 << i).sum();
        assert_eq!(total, 100, "leader levels {:?}", out.leader_levels);
    }

    #[test]
    fn leaders_at_distinct_levels_never_interact() {
        let p = ExactBackup;
        let (a, b) = p.transition_det(BackupState::Leader(2), BackupState::Leader(5));
        assert_eq!(a, BackupState::Leader(2));
        assert_eq!(b, BackupState::Leader(5));
    }

    #[test]
    fn stabilization_time_grows_linearly() {
        // O(n) time: mean silent time at n=2000 should be several times the
        // n=250 one (≈ 8x for linear scaling; accept > 3x to be robust).
        let trials = 6;
        let t_small: f64 = (0..trials)
            .map(|s| run_backup(250, 100 + s).silent_time)
            .sum::<f64>()
            / trials as f64;
        let t_large: f64 = (0..trials)
            .map(|s| run_backup(2000, 200 + s).silent_time)
            .sum::<f64>()
            / trials as f64;
        assert!(
            t_large / t_small > 3.0,
            "expected linear growth, got {t_small} -> {t_large}"
        );
    }

    #[test]
    fn population_is_conserved_through_merges() {
        let config = CountConfiguration::uniform(BackupState::Leader(0), 500);
        let mut sim = ConfigSim::new(ExactBackup, config, 3);
        sim.steps(10_000);
        assert_eq!(sim.config_view().population_size(), 500);
    }
}
