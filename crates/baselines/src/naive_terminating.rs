//! Naive terminating protocols — the demonstrators Theorem 4.1 dooms.
//!
//! A uniform protocol starting from a dense configuration cannot delay a
//! termination signal beyond `O(1)` time (Theorem 4.1). These protocols try
//! anyway, in the two natural ways, and the termination experiments show
//! their signals fire at essentially the same parallel time for every `n`:
//!
//! * [`FixedCounter`] — each agent counts its own interactions to a fixed
//!   constant `c`; the *first* agent to reach `c` raises the signal. The
//!   minimum of `n` i.i.d. negative-binomial times concentrates at a
//!   constant (≈ `c/2` time with a left tail), so the signal time is `O(1)`
//!   in `n` — before any `ω(1)`-time task could have finished.
//! * [`GeometricTimer`] — each agent samples a geometric target first and
//!   counts to it: uniform (no constant depends on `n`), but the minimum
//!   sampled target is 1 w.h.p., so the signal fires in `O(1)` time too.
//!   This is exactly the failure mode that makes the main protocol
//!   non-terminating: *some* agent's local randomness always looks
//!   converged immediately.
//!
//! Both live on the unified count representation so the experiments scale
//! to `n = 10^6`: [`FixedCounter`] as a [`DeterministicCountProtocol`], and
//! [`GeometricTimer`] as a randomized [`CountProtocol`] whose capped
//! geometric sampling is exposed as an explicit finite outcome law
//! ([`CountProtocol::outcomes`]) — the batched engine splits whole batches
//! of fresh-agent interactions over it with single multinomial draws.

use pp_engine::batch::DeterministicCountProtocol;
use pp_engine::count_sim::{CountProtocol, Outcomes};
use pp_engine::rng::SimRng;
use pp_engine::{count_of, Simulation};

/// State of the fixed-threshold counter: counting or terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixedState {
    /// Counting interactions (value so far).
    Counting(u32),
    /// Signal raised (spreads by epidemic).
    Terminated,
}

/// The fixed-threshold terminating counter.
#[derive(Debug, Clone, Copy)]
pub struct FixedCounter {
    /// The hardwired count each agent waits for.
    pub threshold: u32,
}

impl DeterministicCountProtocol for FixedCounter {
    type State = FixedState;

    fn transition_det(&self, rec: FixedState, sen: FixedState) -> (FixedState, FixedState) {
        use FixedState::*;
        if rec == Terminated || sen == Terminated {
            return (Terminated, Terminated);
        }
        let bump = |s: FixedState| match s {
            Counting(k) if k + 1 >= self.threshold => Terminated,
            Counting(k) => Counting(k + 1),
            Terminated => Terminated,
        };
        (bump(rec), bump(sen))
    }
}

/// State of the geometric-target timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GeoState {
    /// Not yet sampled a target.
    Fresh,
    /// Counting toward `target` with `count` so far.
    Counting {
        /// Sampled geometric target (capped for a bounded state space).
        target: u16,
        /// Interactions counted so far.
        count: u16,
    },
    /// Signal raised.
    Terminated,
}

/// The geometric-target terminating timer: uniform, still doomed.
#[derive(Debug, Clone, Copy)]
pub struct GeometricTimer {
    /// Multiplier applied to the sampled geometric (larger targets delay
    /// the *typical* agent but not the population minimum).
    pub scale: u16,
}

impl Default for GeometricTimer {
    fn default() -> Self {
        Self { scale: 10 }
    }
}

impl GeometricTimer {
    /// The capped-geometric target distribution an agent samples on its
    /// first interaction: `target = min(G, 32)·scale` with `G ~ geometric(½)`,
    /// so `P(k·scale) = 2^{-k}` for `k < 32` and the cap absorbs the tail.
    fn fresh_outcomes(&self) -> Vec<(GeoState, f64)> {
        (1u32..=32)
            .map(|k| {
                let p = if k < 32 {
                    0.5f64.powi(k as i32)
                } else {
                    0.5f64.powi(31)
                };
                (
                    GeoState::Counting {
                        target: k as u16 * self.scale,
                        count: 1,
                    },
                    p,
                )
            })
            .collect()
    }

    /// The deterministic bump of a non-`Fresh`, non-terminated state.
    fn bump_det(s: GeoState) -> GeoState {
        match s {
            GeoState::Counting { target, count } => {
                if count + 1 >= target {
                    GeoState::Terminated
                } else {
                    GeoState::Counting {
                        target,
                        count: count + 1,
                    }
                }
            }
            other => other,
        }
    }
}

impl CountProtocol for GeometricTimer {
    type State = GeoState;

    fn outcomes(&self, rec: GeoState, sen: GeoState) -> Option<Outcomes<GeoState>> {
        use GeoState::*;
        if rec == Terminated || sen == Terminated {
            return Some(Outcomes::Deterministic(Terminated, Terminated));
        }
        match (rec, sen) {
            // Both sampling at once: a 32×32 product law — leave it to the
            // per-interaction fallback rather than enumerate 1024 outcomes.
            (Fresh, Fresh) => None,
            (Fresh, s) => {
                let bumped = Self::bump_det(s);
                Some(Outcomes::Random(
                    self.fresh_outcomes()
                        .into_iter()
                        .map(|(r, p)| (r, bumped, p))
                        .collect(),
                ))
            }
            (r, Fresh) => {
                let bumped = Self::bump_det(r);
                Some(Outcomes::Random(
                    self.fresh_outcomes()
                        .into_iter()
                        .map(|(s, p)| (bumped, s, p))
                        .collect(),
                ))
            }
            (r, s) => Some(Outcomes::Deterministic(
                Self::bump_det(r),
                Self::bump_det(s),
            )),
        }
    }

    fn transition(&self, rec: GeoState, sen: GeoState, rng: &mut SimRng) -> (GeoState, GeoState) {
        use GeoState::*;
        if rec == Terminated || sen == Terminated {
            return (Terminated, Terminated);
        }
        let mut bump = |s: GeoState| match s {
            Fresh => {
                let g = pp_engine::rng::geometric_half(rng).min(32) as u16;
                Counting {
                    target: g * self.scale,
                    count: 1,
                }
            }
            Counting { target, count } => {
                if count + 1 >= target {
                    Terminated
                } else {
                    Counting {
                        target,
                        count: count + 1,
                    }
                }
            }
            Terminated => Terminated,
        };
        (bump(rec), bump(sen))
    }
}

/// Time at which the first termination signal appears, for the fixed
/// counter, on a population of size `n`.
pub fn fixed_signal_time(n: u64, threshold: u32, seed: u64) -> f64 {
    let (out, _) = Simulation::count_builder(FixedCounter { threshold })
        .size(n)
        .uniform(FixedState::Counting(0))
        .seed(seed)
        .check_every((n / 100).max(1))
        .until(|view| count_of(view, &FixedState::Terminated) > 0)
        .run();
    debug_assert!(out.converged);
    out.time
}

/// Time at which the first termination signal appears, for the geometric
/// timer.
pub fn geometric_signal_time(n: u64, scale: u16, seed: u64) -> f64 {
    let (out, _) = Simulation::count_builder(GeometricTimer { scale })
        .size(n)
        .uniform(GeoState::Fresh)
        .seed(seed)
        .check_every((n / 100).max(1))
        .until(|view| count_of(view, &GeoState::Terminated) > 0)
        .run();
    debug_assert!(out.converged);
    out.time
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::batch::ConfigSim;
    use pp_engine::count_sim::CountConfiguration;

    use pp_analysis::stats::Summary;

    #[test]
    fn fixed_signal_time_is_constant_in_n() {
        // Theorem 4.1's prediction: same threshold, wildly different n,
        // essentially the same signal time.
        let threshold = 40;
        let times: Vec<f64> = [500u64, 5_000, 50_000]
            .iter()
            .enumerate()
            .map(|(i, &n)| fixed_signal_time(n, threshold, 10 + i as u64))
            .collect();
        let s = Summary::of(&times);
        assert!(
            s.max / s.min < 2.0,
            "signal times {times:?} vary too much with n"
        );
        // And they sit near threshold/2 (each agent gets ~2 interactions per
        // unit time; the *minimum* over agents is below the mean).
        assert!(s.max < threshold as f64, "{times:?}");
    }

    #[test]
    fn geometric_signal_fires_almost_immediately() {
        // Min of n geometric targets is 1·scale w.h.p.: the signal fires
        // within a few multiples of scale/2 time units, independent of n.
        for n in [1_000u64, 100_000] {
            let t = geometric_signal_time(n, 10, n);
            assert!(t < 20.0, "n={n}: signal at {t}, expected O(1)");
        }
    }

    #[test]
    fn termination_spreads_after_signal() {
        let config = CountConfiguration::uniform(FixedState::Counting(0), 1000);
        let mut sim = ConfigSim::new(FixedCounter { threshold: 20 }, config, 3);
        let out = sim.run_until(|c| c.count(&FixedState::Terminated) == 1000, 100, f64::MAX);
        assert!(out.converged);
    }

    #[test]
    fn terminated_pair_is_absorbing() {
        let p = FixedCounter { threshold: 5 };
        let (a, b) = p.transition_det(FixedState::Terminated, FixedState::Counting(0));
        assert_eq!(a, FixedState::Terminated);
        assert_eq!(b, FixedState::Terminated);
    }

    #[test]
    fn geometric_timer_state_space_is_bounded() {
        // Targets cap at 32·scale, so the state space stays small even on
        // long runs (needed for CountSim efficiency).
        let config = CountConfiguration::uniform(GeoState::Fresh, 10_000);
        let mut sim = ConfigSim::new(GeometricTimer { scale: 10 }, config, 4);
        sim.run_for_time(3.0);
        assert!(
            sim.config_view().support_size() < 400,
            "support {} too large",
            sim.config_view().support_size()
        );
    }
}
