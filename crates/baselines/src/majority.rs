//! Cancellation/doubling majority — the representative *nonuniform*
//! downstream protocol.
//!
//! The polylog-time majority protocols the paper cites (\[2, 6, 17, 15, 3\])
//! run `Θ(log n)` synchronized phases and therefore need `⌊log n⌋`
//! pre-loaded into every agent. This module implements the classic
//! cancellation/doubling scheme in two forms:
//!
//! * [`MajorityDownstream`] — as a [`Downstream`] client of the paper's
//!   composition framework: the phase pacing comes from the uniform
//!   leaderless phase clock, so the composed protocol is **uniform**.
//! * [`NonuniformMajority`] — the literature's version with the true
//!   `⌊log n⌋` hardwired, used as the reference the uniformized run must
//!   match.
//!
//! Scheme: agents hold an opinion (0/1) and a strong/weak flag; all start
//! strong. Even stages *cancel* (two strong agents with opposite opinions
//! both go weak — preserving the strong-count difference); odd stages
//! *double* (a strong agent recruits a weak partner to its opinion —
//! roughly doubling both strong counts, hence the difference). After
//! `Θ(log n)` stage pairs the minority's strong agents are extinct w.h.p.
//! and the surviving strong opinion spreads to every agent's display.

use pp_core::composition::Downstream;
use pp_engine::batch::DeterministicCountProtocol;
use pp_engine::count_sim::{CountConfiguration, CountSeededInit};
use pp_engine::rng::SimRng;
use pp_engine::{Protocol, Simulation};
use rand::Rng;

/// Downstream per-agent majority state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MajorityState {
    /// Current opinion (0 or 1).
    pub opinion: u8,
    /// Strong token (participates in cancel/double).
    pub strong: bool,
    /// Displayed output opinion (follows strong agents by epidemic).
    pub display: u8,
}

/// One cancellation/doubling step, shared by both variants. `stage` parity
/// selects the rule; both agents must be in the same stage.
fn majority_step(rec: &mut MajorityState, sen: &mut MajorityState, stage: u64) {
    if stage.is_multiple_of(2) {
        // Cancellation.
        if rec.strong && sen.strong && rec.opinion != sen.opinion {
            rec.strong = false;
            sen.strong = false;
        }
    } else {
        // Doubling.
        if rec.strong && !sen.strong {
            sen.strong = true;
            sen.opinion = rec.opinion;
        } else if sen.strong && !rec.strong {
            rec.strong = true;
            rec.opinion = sen.opinion;
        }
    }
    // Display epidemic: weak agents show the opinion of strong agents.
    if rec.strong {
        rec.display = rec.opinion;
        sen.display = rec.opinion;
    }
    if sen.strong {
        sen.display = sen.opinion;
        rec.display = sen.opinion;
    }
}

/// The uniformizable majority protocol (a [`Downstream`] implementation).
#[derive(Debug, Clone, Copy)]
pub struct MajorityDownstream {
    /// Stages per unit of estimate (stage count = `stage_factor · s`;
    /// default 4: `≈ 2 log n` cancel/double pairs).
    pub stage_factor: u64,
    /// Interactions counted per stage (threshold = `clock_factor · s`;
    /// default 95, as in the main protocol).
    pub clock_factor: u64,
}

impl Default for MajorityDownstream {
    fn default() -> Self {
        Self {
            stage_factor: 4,
            clock_factor: 95,
        }
    }
}

impl Downstream for MajorityDownstream {
    type State = MajorityState;

    fn num_stages(&self, s: u64) -> u64 {
        self.stage_factor * s
    }

    fn stage_threshold(&self, s: u64) -> u64 {
        self.clock_factor * s
    }

    fn fresh(&self, _s: u64, agent_input: u64, _rng: &mut SimRng) -> MajorityState {
        let opinion = (agent_input & 1) as u8;
        MajorityState {
            opinion,
            strong: true,
            display: opinion,
        }
    }

    fn interact(
        &self,
        rec: &mut MajorityState,
        sen: &mut MajorityState,
        rec_stage: u64,
        sen_stage: u64,
        _s: u64,
        _rng: &mut SimRng,
    ) {
        if rec_stage == sen_stage {
            majority_step(rec, sen, rec_stage);
        }
    }

    fn output(&self, state: &MajorityState) -> Option<u64> {
        Some(state.display as u64)
    }
}

/// The nonuniform reference: identical dynamics, but the stage clock uses a
/// hardwired `⌊log n⌋` — the initialization the paper's Figure 1 depicts.
#[derive(Debug, Clone, Copy)]
pub struct NonuniformMajority {
    /// The hardwired `⌊log2 n⌋` (this is what makes it nonuniform).
    pub log_n: u64,
    /// Stage multiplier (same meaning as the uniform variant's).
    pub stage_factor: u64,
    /// Clock multiplier.
    pub clock_factor: u64,
}

impl NonuniformMajority {
    /// The standard configuration for population size `n`.
    pub fn for_population(n: usize) -> Self {
        Self {
            log_n: (n as f64).log2().floor() as u64,
            stage_factor: 4,
            clock_factor: 95,
        }
    }
}

/// Per-agent state of the nonuniform variant: majority state plus its own
/// stage clock fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonuniformState {
    /// The majority payload.
    pub inner: MajorityState,
    /// Interaction count within the current stage.
    pub count: u64,
    /// Current stage.
    pub stage: u64,
}

impl NonuniformMajority {
    /// The initial state of an agent holding `opinion`.
    pub fn input_state(opinion: u8) -> NonuniformState {
        NonuniformState {
            inner: MajorityState {
                opinion,
                strong: true,
                display: opinion,
            },
            count: 0,
            stage: 0,
        }
    }

    /// One (deterministic) interaction, shared by the agent-level and
    /// count-level representations.
    fn step(&self, rec: &mut NonuniformState, sen: &mut NonuniformState) {
        let k = self.stage_factor * self.log_n;
        let threshold = self.clock_factor * self.log_n.max(1);
        for agent in [&mut *rec, &mut *sen] {
            if agent.stage < k {
                agent.count += 1;
                if agent.count >= threshold {
                    agent.stage += 1;
                    agent.count = 0;
                }
            }
        }
        // Stage epidemic.
        if rec.stage < sen.stage {
            rec.stage = sen.stage;
            rec.count = 0;
        } else if sen.stage < rec.stage {
            sen.stage = rec.stage;
            sen.count = 0;
        }
        if rec.stage == sen.stage {
            majority_step(&mut rec.inner, &mut sen.inner, rec.stage);
        }
    }
}

impl Protocol for NonuniformMajority {
    type State = NonuniformState;

    fn initial_state(&self) -> NonuniformState {
        Self::input_state(0)
    }

    fn interact(&self, rec: &mut NonuniformState, sen: &mut NonuniformState, _rng: &mut SimRng) {
        self.step(rec, sen);
    }
}

impl DeterministicCountProtocol for NonuniformMajority {
    type State = NonuniformState;

    fn transition_det(
        &self,
        mut rec: NonuniformState,
        mut sen: NonuniformState,
    ) -> (NonuniformState, NonuniformState) {
        self.step(&mut rec, &mut sen);
        (rec, sen)
    }

    fn prefers_batching(&self) -> bool {
        // Every interaction advances both agents' per-stage interaction
        // counters, so the occupied state space is Theta(clock threshold)
        // — too wide for O(k^2)-per-batch bulk application to pay off.
        false
    }
}

/// The nonuniform majority together with its input split: `ones` of the `n`
/// agents start with opinion 1. This is the [`CountSeededInit`] analogue of
/// planting inputs agent by agent, so majority splits run on the count
/// engines directly.
#[derive(Debug, Clone, Copy)]
pub struct SeededNonuniformMajority {
    /// The stage-clocked majority dynamics.
    pub protocol: NonuniformMajority,
    /// How many agents start with opinion 1.
    pub ones: u64,
}

impl DeterministicCountProtocol for SeededNonuniformMajority {
    type State = NonuniformState;

    fn transition_det(
        &self,
        rec: NonuniformState,
        sen: NonuniformState,
    ) -> (NonuniformState, NonuniformState) {
        self.protocol.transition_det(rec, sen)
    }

    fn prefers_batching(&self) -> bool {
        DeterministicCountProtocol::prefers_batching(&self.protocol)
    }
}

impl CountSeededInit for SeededNonuniformMajority {
    fn initial_config(&self, n: u64) -> CountConfiguration<NonuniformState> {
        assert!(
            self.ones <= n,
            "cannot seed {} ones into {n} agents",
            self.ones
        );
        CountConfiguration::from_pairs(
            [
                (NonuniformMajority::input_state(1), self.ones),
                (NonuniformMajority::input_state(0), n - self.ones),
            ]
            .into_iter()
            .filter(|&(_, c)| c > 0),
        )
    }
}

/// Result of a majority run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MajorityOutcome {
    /// The common displayed opinion (`None` if agents still disagree).
    pub winner: Option<u8>,
    /// Parallel time at convergence (all stages done, displays agree).
    pub time: f64,
    /// Whether the run converged within the budget.
    pub converged: bool,
}

/// Runs the **uniformized** majority via the paper's composition scheme:
/// `ones` of the `n` agents start with opinion 1.
pub fn run_uniform_majority(n: usize, ones: usize, seed: u64, max_time: f64) -> MajorityOutcome {
    assert!(ones <= n);
    let mut sim =
        pp_core::composition::composed_population(MajorityDownstream::default(), n, seed, |i| {
            u64::from(i < ones)
        });
    let out = sim.run_until(
        |view| {
            let k = |c: &pp_core::composition::ComposedState<MajorityState>| {
                MajorityDownstream::default().num_stages(c.estimate)
            };
            view.iter().all(|(c, _)| c.stage >= k(c))
                && view
                    .windows(2)
                    .all(|w| w[0].0.inner.display == w[1].0.inner.display)
        },
        max_time,
    );
    let winner = if out.converged {
        sim.view().first().map(|(c, _)| c.inner.display)
    } else {
        None
    };
    MajorityOutcome {
        winner,
        time: out.time,
        converged: out.converged,
    }
}

/// Runs the **nonuniform** reference with hardwired `⌊log n⌋` on the
/// unified count representation (the count engines with a seeded input
/// split).
pub fn run_nonuniform_majority(n: usize, ones: usize, seed: u64, max_time: f64) -> MajorityOutcome {
    assert!(ones <= n);
    let protocol = NonuniformMajority::for_population(n);
    let k = protocol.stage_factor * protocol.log_n;
    let seeded = SeededNonuniformMajority {
        protocol,
        ones: ones as u64,
    };
    let (out, sim) = Simulation::count_builder(seeded)
        .size(n as u64)
        .init_seeded()
        .seed(seed)
        .max_time(max_time)
        .until(move |view: &[(NonuniformState, u64)]| {
            let mut display = None;
            view.iter().all(|(s, _)| {
                s.stage >= k && *display.get_or_insert(s.inner.display) == s.inner.display
            })
        })
        .run();
    let winner = if out.converged {
        sim.view().first().map(|(s, _)| s.inner.display)
    } else {
        None
    };
    MajorityOutcome {
        winner,
        time: out.time,
        converged: out.converged,
    }
}

/// Runs the nonuniform reference on the per-agent simulator — retained for
/// the statistical-equivalence suite, which holds the count-based
/// [`run_nonuniform_majority`] to the same distribution.
pub fn run_nonuniform_majority_agentwise(
    n: usize,
    ones: usize,
    seed: u64,
    max_time: f64,
) -> MajorityOutcome {
    assert!(ones <= n);
    let protocol = NonuniformMajority::for_population(n);
    let k = protocol.stage_factor * protocol.log_n;
    let (out, sim) = Simulation::builder(protocol)
        .size(n as u64)
        .seed(seed)
        .init_with(move |i, _| NonuniformMajority::input_state(u8::from(i < ones)))
        .max_time(max_time)
        .until(move |view: &[(NonuniformState, u64)]| {
            view.iter().all(|(c, _)| c.stage >= k)
                && view
                    .windows(2)
                    .all(|w| w[0].0.inner.display == w[1].0.inner.display)
        })
        .run();
    let winner = if out.converged {
        sim.view().first().map(|(c, _)| c.inner.display)
    } else {
        None
    };
    MajorityOutcome {
        winner,
        time: out.time,
        converged: out.converged,
    }
}

/// Quick sanity RNG helper for doc examples.
pub fn _rng_demo(rng: &mut SimRng) -> bool {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_preserves_difference() {
        let mut a = MajorityState {
            opinion: 0,
            strong: true,
            display: 0,
        };
        let mut b = MajorityState {
            opinion: 1,
            strong: true,
            display: 1,
        };
        majority_step(&mut a, &mut b, 0);
        assert!(!a.strong && !b.strong, "opposite strong pair cancels");
        let mut c = MajorityState {
            opinion: 1,
            strong: true,
            display: 1,
        };
        let mut d = MajorityState {
            opinion: 1,
            strong: true,
            display: 1,
        };
        majority_step(&mut c, &mut d, 0);
        assert!(c.strong && d.strong, "same-opinion pair survives");
    }

    #[test]
    fn doubling_recruits_weak() {
        let mut strong = MajorityState {
            opinion: 1,
            strong: true,
            display: 1,
        };
        let mut weak = MajorityState {
            opinion: 0,
            strong: false,
            display: 0,
        };
        majority_step(&mut strong, &mut weak, 1);
        assert!(weak.strong);
        assert_eq!(weak.opinion, 1);
    }

    #[test]
    fn nonuniform_majority_correct_with_gap() {
        let n = 300;
        let out = run_nonuniform_majority(n, 190, 5, 1e6);
        assert!(out.converged, "nonuniform run did not converge");
        assert_eq!(out.winner, Some(1), "majority is 1 (190 of 300)");
        let out0 = run_nonuniform_majority(n, 110, 6, 1e6);
        assert!(out0.converged);
        assert_eq!(out0.winner, Some(0), "majority is 0 (110 of 300)");
    }

    #[test]
    fn uniformized_majority_matches_nonuniform() {
        let n = 300;
        let uni = run_uniform_majority(n, 200, 7, 3e6);
        assert!(uni.converged, "uniformized run did not converge");
        assert_eq!(uni.winner, Some(1));
        let uni0 = run_uniform_majority(n, 100, 8, 3e6);
        assert!(uni0.converged);
        assert_eq!(uni0.winner, Some(0));
    }

    #[test]
    fn uniform_variant_never_reads_n() {
        // Structural check: MajorityDownstream's parameters depend only on
        // the estimate s that arrives at run time.
        let d = MajorityDownstream::default();
        assert_eq!(d.num_stages(10), 40);
        assert_eq!(d.stage_threshold(10), 950);
    }
}
