//! # pp-baselines — baseline and downstream population protocols
//!
//! *Layer 1 (protocols) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! The protocols the paper compares against, builds on, or motivates:
//!
//! * [`alistarh`] — the Alistarh–Aspnes–Eisenstat–Gelashvili–Rivest
//!   max-geometric estimator \[2\]: `O(log n)` time, constant
//!   *multiplicative* error on `log n` (`log n − log ln n ≤ k ≤ 2 log n`
//!   w.h.p. in the random-bit model, Corollary A.2). The first stage of the
//!   paper's protocol, and the baseline its `O(1)`-additive result improves
//!   on.
//! * [`exact_backup`] — the slow exact `l_i/f_i` binary-counter protocol of
//!   §3.3 as a standalone count-based protocol (scales to millions of
//!   agents): computes `⌊log2 n⌋` with probability 1 in `O(n)` time.
//! * [`exact_leader`] — Michail-style \[32\] exact population counting with
//!   an initial leader: the leader marks agents one meeting at a time and
//!   terminates after a long run of already-marked encounters; exact count
//!   w.h.p., `O(n log n)` time. The terminating baseline that needs a
//!   leader — exactly what Theorem 4.1 says is unavoidable.
//! * [`majority`] — cancellation/doubling majority: the representative
//!   *nonuniform* `O(log n)`-stage protocol that consumes a `⌊log n⌋`
//!   estimate. Provided both as a [`pp_core::composition::Downstream`]
//!   implementation (uniformized by the paper's composition scheme) and as
//!   a nonuniform reference with the true `log n` hardwired.
//! * [`leader_election`] — coin-tournament leader election, the second
//!   downstream client: contenders flip a coin per stage and drop out on
//!   seeing heads when they flipped tails; `Θ(log n)` stages whittle the
//!   contenders to one.
//! * [`naive_terminating`] — uniform *dense* protocols that try to
//!   terminate by interaction counting. Theorem 4.1 dooms them: their
//!   signal fires at `O(1)` time regardless of `n`, and the termination
//!   experiments use them as the demonstrator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alistarh;
pub mod exact_backup;
pub mod exact_leader;
pub mod intro_functions;
pub mod leader_election;
pub mod majority;
pub mod naive_terminating;
