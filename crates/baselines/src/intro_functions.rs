//! The paper's opening example (§1): function computation speed.
//!
//! > "the transition `x, q -> y, y` (starting with at least as many `q` as
//! > the input state `x`) computes `f(x) = 2x` in expected time `O(log n)`,
//! > whereas `x, x -> y, q` computes `f(x) = ⌊x/2⌋` exponentially slower:
//! > expected time `Θ(n)`."
//!
//! Both protocols use the *distributed output convention*: the answer is
//! the final count of `y` agents. Doubling is an epidemic-like branching
//! process (every `x` or `y` meeting a blank `q` converts it — here,
//! faithful to the rule, each `x` converts itself and one `q` into two
//! `y`s, and `y`s take over `q`s only through... no: the rule is exactly
//! `x, q -> y, y`, consuming one `x` and one `q` per firing, plus the
//! produced `y`s do nothing further — so the *last* `x` must find a `q`,
//! which is fast while `q`s are plentiful). Halving's last two `x`s must
//! find *each other*: a `Θ(n)` wait.
//!
//! [`double_time`] and [`halve_time`] measure the completion times; the
//! `table_intro_functions` harness regenerates the `O(log n)` vs `Θ(n)`
//! contrast.

use pp_engine::batch::DeterministicCountProtocol;
use pp_engine::{count_of, Simulation};

/// States for the intro protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FnState {
    /// Input token.
    X,
    /// Blank / fuel agent.
    Q,
    /// Output token.
    Y,
}

/// `x, q -> y, y`: computes `f(x) = 2x` (output = count of `y`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Doubling;

impl DeterministicCountProtocol for Doubling {
    type State = FnState;

    fn transition_det(&self, rec: FnState, sen: FnState) -> (FnState, FnState) {
        use FnState::*;
        match (rec, sen) {
            (X, Q) | (Q, X) => (Y, Y),
            other => other,
        }
    }
}

/// `x, x -> y, q`: computes `f(x) = ⌊x/2⌋` (output = count of `y`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Halving;

impl DeterministicCountProtocol for Halving {
    type State = FnState;

    fn transition_det(&self, rec: FnState, sen: FnState) -> (FnState, FnState) {
        use FnState::*;
        match (rec, sen) {
            (X, X) => (Y, Q),
            other => other,
        }
    }
}

/// Runs doubling with input `x` in a population of `n` (needs `n ≥ 2x`).
/// Returns `(output, completion_time)`; correct output is `2x`.
pub fn double_time(n: u64, x: u64, seed: u64) -> (u64, f64) {
    assert!(n >= 2 * x, "doubling needs at least as many q as x");
    let (out, sim) = Simulation::count_builder(Doubling)
        .config([(FnState::X, x), (FnState::Q, n - x)])
        .seed(seed)
        .check_every((n / 20).max(1))
        .until(|view| count_of(view, &FnState::X) == 0)
        .run();
    debug_assert!(out.converged);
    (sim.count(&FnState::Y), out.time)
}

/// Runs halving with input `x` in a population of `n`. Returns
/// `(output, completion_time)`; correct output is `⌊x/2⌋` (one `x` may
/// remain when `x` is odd).
pub fn halve_time(n: u64, x: u64, seed: u64) -> (u64, f64) {
    assert!(n >= x);
    let config = if n == x {
        vec![(FnState::X, x)]
    } else {
        vec![(FnState::X, x), (FnState::Q, n - x)]
    };
    let (out, sim) = Simulation::count_builder(Halving)
        .config(config)
        .seed(seed)
        .check_every((n / 20).max(1))
        .until(|view| count_of(view, &FnState::X) <= 1)
        .run();
    debug_assert!(out.converged);
    (sim.count(&FnState::Y), out.time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_is_exact() {
        for (n, x) in [(100u64, 30u64), (1000, 250), (1000, 500)] {
            let (out, _) = double_time(n, x, n ^ x);
            assert_eq!(out, 2 * x, "n={n}, x={x}");
        }
    }

    #[test]
    fn halving_is_exact() {
        for (n, x) in [(100u64, 30u64), (1000, 251), (500, 500)] {
            let (out, _) = halve_time(n, x, n ^ x);
            assert_eq!(out, x / 2, "n={n}, x={x}");
        }
    }

    #[test]
    fn doubling_is_logarithmic_halving_is_linear() {
        // The paper's exponential separation: at n = 4000 vs 500, doubling
        // time grows ~log (factor < 2.5) while halving grows ~linearly
        // (factor > 4).
        // Doubling needs q to stay plentiful (x ≤ n/4 keeps q ≥ n/2
        // throughout, giving exponential decay of x); with x = q = n/2 the
        // two deplete together and the last pair takes Θ(n) to meet.
        let trials = 6u64;
        let avg = |f: &dyn Fn(u64) -> f64, n: u64| -> f64 {
            (0..trials).map(|s| f(n + s)).sum::<f64>() / trials as f64
        };
        let d500 = avg(&|s| double_time(500, 125, s).1, 500);
        let d4000 = avg(&|s| double_time(4000, 1000, s).1, 4000);
        let h500 = avg(&|s| halve_time(500, 250, s).1, 500);
        let h4000 = avg(&|s| halve_time(4000, 2000, s).1, 4000);
        assert!(
            d4000 / d500 < 3.0,
            "doubling not logarithmic: {d500} -> {d4000}"
        );
        assert!(h4000 / h500 > 4.0, "halving not linear: {h500} -> {h4000}");
        assert!(
            h4000 > 10.0 * d4000,
            "separation missing: halve {h4000} vs double {d4000}"
        );
    }

    #[test]
    #[should_panic(expected = "at least as many q")]
    fn doubling_requires_fuel() {
        double_time(10, 6, 0);
    }
}
