//! Exact population counting with an initial leader (Michail \[32\]-style).
//!
//! The leader marks unmarked agents one meeting at a time, keeping an exact
//! count of the marks. To *terminate* — know w.h.p. that everyone is marked —
//! the leader tracks its run of consecutive already-marked encounters: once
//! the run exceeds `c · count · ln(count + 2)`, an unmarked agent would have
//! been met w.h.p. if one existed (coupon-collector), so the leader declares
//! the count final.
//!
//! This protocol is **uniform** (no `n` anywhere) yet **terminating** —
//! possible only because the initial configuration has a leader and is
//! therefore not dense. It is the positive complement of Theorem 4.1, and
//! runs in `O(n log n)` parallel time with `O(n)` leader states and 2
//! non-leader states, matching the paper's description.

use pp_engine::rng::SimRng;
use pp_engine::{Protocol, Simulation};

/// Per-agent state for leader-driven exact counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CountState {
    /// Not yet counted by the leader.
    Unmarked,
    /// Counted.
    Marked,
    /// The leader: current count, current run of marked encounters, and the
    /// terminated flag with final count.
    Leader {
        /// Agents counted so far (including the leader itself).
        count: u64,
        /// Consecutive already-marked meetings since the last fresh mark.
        run: u64,
        /// Set when the leader has declared the count final.
        done: bool,
    },
}

/// The counting protocol with its confidence multiplier `c`.
#[derive(Debug, Clone, Copy)]
pub struct ExactLeaderCount {
    /// Run-length multiplier (larger = more confidence, more time).
    pub confidence: f64,
}

impl Default for ExactLeaderCount {
    fn default() -> Self {
        Self { confidence: 8.0 }
    }
}

impl ExactLeaderCount {
    fn run_threshold(&self, count: u64) -> u64 {
        (self.confidence * count as f64 * ((count + 2) as f64).ln()).ceil() as u64
    }
}

impl Protocol for ExactLeaderCount {
    type State = CountState;

    fn initial_state(&self) -> CountState {
        CountState::Unmarked
    }

    fn interact(&self, rec: &mut CountState, sen: &mut CountState, _rng: &mut SimRng) {
        use CountState::*;
        // Identify a leader in the pair, if any.
        let (leader, other) = match (&mut *rec, &mut *sen) {
            (Leader { .. }, _) => (rec, sen),
            (_, Leader { .. }) => (sen, rec),
            _ => return,
        };
        if let Leader { count, run, done } = leader {
            if *done {
                return;
            }
            match other {
                Unmarked => {
                    *other = Marked;
                    *count += 1;
                    *run = 0;
                }
                Marked => {
                    *run += 1;
                    if *run >= self.run_threshold(*count) {
                        *done = true;
                    }
                }
                Leader { .. } => unreachable!("single leader by construction"),
            }
        }
    }
}

/// Outcome of a counting run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CountOutcome {
    /// The leader's final count (exact when correct).
    pub count: u64,
    /// Parallel time at termination.
    pub time: f64,
    /// Whether the leader terminated within the budget.
    pub terminated: bool,
}

/// Runs exact counting on `n` agents (agent 0 is the leader).
pub fn run_exact_count(n: usize, seed: u64, max_time: f64) -> CountOutcome {
    let (out, sim) = Simulation::builder(ExactLeaderCount::default())
        .size(n as u64)
        .seed(seed)
        .init_planted([(
            CountState::Leader {
                count: 1,
                run: 0,
                done: false,
            },
            1,
        )])
        .max_time(max_time)
        .until(|view: &[(CountState, u64)]| {
            view.iter()
                .any(|(s, _)| matches!(s, CountState::Leader { done: true, .. }))
        })
        .run();
    let count = sim
        .view()
        .iter()
        .find_map(|(s, _)| match s {
            CountState::Leader { count, .. } => Some(*count),
            _ => None,
        })
        .unwrap_or(0);
    CountOutcome {
        count,
        time: out.time,
        terminated: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::AgentSim;

    #[test]
    fn counts_exactly_for_several_sizes() {
        for n in [50usize, 128, 300] {
            let out = run_exact_count(n, n as u64, 1e7);
            assert!(out.terminated, "n={n} never terminated");
            assert_eq!(out.count, n as u64, "n={n} counted {}", out.count);
        }
    }

    #[test]
    fn repeated_trials_rarely_undercount() {
        let n = 100;
        let trials = 10;
        let exact = (0..trials)
            .filter(|&s| run_exact_count(n, 1000 + s, 1e7).count == n as u64)
            .count() as u64;
        assert!(exact >= trials - 1, "only {exact}/{trials} exact");
    }

    #[test]
    fn time_superlinear_in_n() {
        // O(n log n): time at n=400 should be well over 4x time at n=100.
        let t100: f64 = (0..4)
            .map(|s| run_exact_count(100, 70 + s, 1e7).time)
            .sum::<f64>()
            / 4.0;
        let t400: f64 = (0..4)
            .map(|s| run_exact_count(400, 80 + s, 1e7).time)
            .sum::<f64>()
            / 4.0;
        assert!(t400 > 3.0 * t100, "t400 {t400} vs t100 {t100}");
    }

    #[test]
    fn done_leader_freezes() {
        let p = ExactLeaderCount::default();
        let mut leader = CountState::Leader {
            count: 5,
            run: 0,
            done: true,
        };
        let mut other = CountState::Unmarked;
        let mut rng = pp_engine::rng::rng_from_seed(0);
        p.interact(&mut leader, &mut other, &mut rng);
        assert_eq!(other, CountState::Unmarked, "done leader must not mark");
    }

    #[test]
    fn without_leader_nothing_happens() {
        let mut sim = AgentSim::new(ExactLeaderCount::default(), 50, 1);
        sim.run_for_time(100.0);
        assert!(sim
            .states()
            .iter()
            .all(|s| matches!(s, CountState::Unmarked)));
    }
}
