//! The max-geometric weak estimator of Alistarh et al. \[2\].
//!
//! Every agent samples one geometric(1/2) random variable and the population
//! propagates the maximum by epidemic. The settled maximum `k` satisfies
//! `log n − log ln n ≤ k ≤ 2 log n` w.h.p. (Corollary A.2 in the paper's
//! random-bit model; the original \[2\] analysis with synthetic coins gives
//! the weaker `½ log n ≤ k ≤ 9 log n`). Converges in `O(log n)` time.
//!
//! This is the paper's *baseline*: constant multiplicative error versus the
//! main protocol's constant additive error — and also its first stage
//! (`logSize2`).
//!
//! Implemented as a [`CountProtocol`] over the unified count representation:
//! the occupied state space is only `O(log n)` values, so the protocol runs
//! on the count engines at millions of agents. It is *randomized* (the first
//! interaction of each agent draws a geometric), yet still batches: once
//! both participants have sampled, the pair's outcome is the deterministic
//! max-merge, which the batched engine bulk-applies; only the short sampling
//! prefix (unbounded geometric support) falls back to per-interaction
//! sampling. This is the repository's showcase that randomized paper
//! protocols now reach batched speed — see `bench_batch`.

use pp_engine::count_sim::{CountConfiguration, CountProtocol, Outcomes};
use pp_engine::rng::{geometric_half, SimRng};
use pp_engine::Simulation;

/// Per-agent state: the sampled/adopted maximum (0 = not yet sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WeakState {
    /// Current estimate: own sample merged with every partner's.
    pub value: u64,
    /// Whether this agent has sampled yet (sampling happens on the agent's
    /// first interaction, keeping the initial state deterministic).
    pub sampled: bool,
}

impl WeakState {
    /// The common initial state: unsampled, value 0.
    pub fn initial() -> Self {
        Self {
            value: 0,
            sampled: false,
        }
    }
}

/// The weak (multiplicative-error) estimator protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeakEstimator;

impl WeakEstimator {
    /// Agreement: a single occupied state, and it has sampled. The shared
    /// convergence predicate for [`weak_estimate`], the equivalence tests,
    /// and the `bench_batch` completion workload.
    pub fn agreed(c: &CountConfiguration<WeakState>) -> bool {
        c.support_size() == 1 && c.iter().all(|(s, _)| s.sampled)
    }

    /// [`WeakEstimator::agreed`] over a decoded `(state, count)` view —
    /// the [`Simulation`] observation surface.
    pub fn agreed_view(view: &[(WeakState, u64)]) -> bool {
        view.len() == 1 && view.iter().all(|(s, _)| s.sampled)
    }
}

impl CountProtocol for WeakEstimator {
    type State = WeakState;

    fn transition(
        &self,
        mut rec: WeakState,
        mut sen: WeakState,
        rng: &mut SimRng,
    ) -> (WeakState, WeakState) {
        for agent in [&mut rec, &mut sen] {
            if !agent.sampled {
                agent.sampled = true;
                agent.value = agent.value.max(geometric_half(rng));
            }
        }
        let m = rec.value.max(sen.value);
        rec.value = m;
        sen.value = m;
        (rec, sen)
    }

    fn outcomes(&self, rec: WeakState, sen: WeakState) -> Option<Outcomes<WeakState>> {
        if rec.sampled && sen.sampled {
            // Both sampled: the pair is a deterministic max-merge.
            let merged = WeakState {
                value: rec.value.max(sen.value),
                sampled: true,
            };
            Some(Outcomes::Deterministic(merged, merged))
        } else {
            // Geometric sampling has unbounded support — not enumerable.
            None
        }
    }

    fn prefers_batching(&self) -> bool {
        // Occupied support is O(log n) values; only the sampling prefix is
        // unenumerable, so batching wins at scale.
        true
    }
}

/// Outcome of one weak-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeakOutcome {
    /// The settled maximum `k`.
    pub estimate: u64,
    /// Parallel time until all agents agreed on the final maximum.
    pub time: f64,
}

/// Runs the weak estimator to agreement on the count engines (batched at
/// large populations).
///
/// ```
/// use pp_baselines::alistarh::weak_estimate;
///
/// let out = weak_estimate(200, 7);
/// // The settled max of geometrics is a constant-factor estimate of log n.
/// assert!(out.estimate >= 1);
/// assert!((out.estimate as f64) <= 3.0 * 200f64.log2());
/// ```
pub fn weak_estimate(n: usize, seed: u64) -> WeakOutcome {
    let n = n as u64;
    let (out, sim) = Simulation::count_builder(WeakEstimator)
        .size(n)
        .uniform(WeakState::initial())
        .seed(seed)
        .check_every(n.max(2))
        .until(WeakEstimator::agreed_view)
        .run();
    debug_assert!(out.converged);
    let estimate = sim.view().iter().map(|(s, _)| s.value).max().unwrap_or(0);
    WeakOutcome {
        estimate,
        time: out.time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::batch::ConfigSim;

    use pp_engine::batch::BatchedCountSim;
    use pp_engine::count_sim::CountSim;
    use pp_engine::rng::derive_seed;

    #[test]
    fn estimate_in_multiplicative_band() {
        for n in [100usize, 1000, 5000] {
            let logn = (n as f64).log2();
            let lo = logn - (n as f64).ln().log2() - 1.0;
            let hi = 2.0 * logn + 2.0;
            let mut in_band = 0;
            let trials = 10;
            for seed in 0..trials {
                let out = weak_estimate(n, seed);
                let k = out.estimate as f64;
                if k >= lo && k <= hi {
                    in_band += 1;
                }
            }
            assert!(
                in_band >= trials - 1,
                "n={n}: only {in_band}/{trials} in [{lo:.1}, {hi:.1}]"
            );
        }
    }

    #[test]
    fn converges_in_logarithmic_time() {
        // O(log n) time: ratio of times between n=4000 and n=100 should be
        // about ln(4000)/ln(100) ≈ 1.8, certainly below 4.
        let t100: f64 = (0..8).map(|s| weak_estimate(100, 50 + s).time).sum::<f64>() / 8.0;
        let t4000: f64 = (0..8)
            .map(|s| weak_estimate(4000, 60 + s).time)
            .sum::<f64>()
            / 8.0;
        assert!(t4000 / t100 < 4.0, "t4000 {t4000} vs t100 {t100}");
    }

    #[test]
    fn multiplicative_vs_additive_error_grows() {
        // The point of the paper: the weak estimator's error grows with n
        // (multiplicative), so its |k − log n| deviation at large n is
        // typically larger than the main protocol's constant band. Just
        // check the estimate is an integer ≥ 1 and the protocol is
        // deterministic per seed.
        let a = weak_estimate(500, 9);
        let b = weak_estimate(500, 9);
        assert_eq!(a.estimate, b.estimate);
        assert!(a.estimate >= 1);
    }

    #[test]
    fn batched_and_sequential_estimates_agree_statistically() {
        // The mixed sampled/deterministic law structure must not bias the
        // estimate: compare the batched and sequential estimate means.
        let n = 30_000u64;
        let trials = 40;
        let mean = |batched: bool, stream: u64| -> f64 {
            (0..trials)
                .map(|t| {
                    let config = CountConfiguration::uniform(WeakState::initial(), n);
                    let seed = derive_seed(stream, t);
                    let pred = WeakEstimator::agreed;
                    if batched {
                        let mut sim = BatchedCountSim::new(WeakEstimator, config, seed);
                        let out = sim.run_until(pred, n, f64::MAX);
                        assert!(out.converged);
                        sim.config_view()
                            .iter()
                            .map(|(s, _)| s.value)
                            .max()
                            .unwrap() as f64
                    } else {
                        let mut sim = CountSim::new(WeakEstimator, config, seed);
                        let out = sim.run_until(pred, n, f64::MAX);
                        assert!(out.converged);
                        sim.config().iter().map(|(s, _)| s.value).max().unwrap() as f64
                    }
                })
                .sum::<f64>()
                / trials as f64
        };
        let m_seq = mean(false, 0x11);
        let m_bat = mean(true, 0x12);
        // Max-of-geometrics has σ ≈ 1.9; means over 40 trials within ~1.2.
        assert!(
            (m_seq - m_bat).abs() < 1.2,
            "estimate means diverge: sequential {m_seq} vs batched {m_bat}"
        );
    }

    #[test]
    fn facade_batches_at_scale() {
        let config = CountConfiguration::uniform(WeakState::initial(), 100_000);
        let sim = ConfigSim::new(WeakEstimator, config, 1);
        assert!(sim.is_batched(), "weak estimator should batch at n = 10^5");
    }
}
