//! The max-geometric weak estimator of Alistarh et al. \[2\].
//!
//! Every agent samples one geometric(1/2) random variable and the population
//! propagates the maximum by epidemic. The settled maximum `k` satisfies
//! `log n − log ln n ≤ k ≤ 2 log n` w.h.p. (Corollary A.2 in the paper's
//! random-bit model; the original \[2\] analysis with synthetic coins gives
//! the weaker `½ log n ≤ k ≤ 9 log n`). Converges in `O(log n)` time.
//!
//! This is the paper's *baseline*: constant multiplicative error versus the
//! main protocol's constant additive error — and also its first stage
//! (`logSize2`).

use pp_engine::rng::{geometric_half, SimRng};
use pp_engine::{AgentSim, Protocol};

/// Per-agent state: the sampled/adopted maximum (0 = not yet sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakState {
    /// Current estimate: own sample merged with every partner's.
    pub value: u64,
    /// Whether this agent has sampled yet (sampling happens on the agent's
    /// first interaction, keeping `initial_state` deterministic).
    pub sampled: bool,
}

/// The weak (multiplicative-error) estimator protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeakEstimator;

impl Protocol for WeakEstimator {
    type State = WeakState;

    fn initial_state(&self) -> WeakState {
        WeakState {
            value: 0,
            sampled: false,
        }
    }

    fn interact(&self, rec: &mut WeakState, sen: &mut WeakState, rng: &mut SimRng) {
        for agent in [&mut *rec, &mut *sen] {
            if !agent.sampled {
                agent.sampled = true;
                agent.value = agent.value.max(geometric_half(rng));
            }
        }
        let m = rec.value.max(sen.value);
        rec.value = m;
        sen.value = m;
    }
}

/// Outcome of one weak-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeakOutcome {
    /// The settled maximum `k`.
    pub estimate: u64,
    /// Parallel time until all agents agreed on the final maximum.
    pub time: f64,
}

/// Runs the weak estimator to agreement.
///
/// ```
/// use pp_baselines::alistarh::weak_estimate;
///
/// let out = weak_estimate(200, 7);
/// // The settled max of geometrics is a constant-factor estimate of log n.
/// assert!(out.estimate >= 1);
/// assert!((out.estimate as f64) <= 3.0 * 200f64.log2());
/// ```
pub fn weak_estimate(n: usize, seed: u64) -> WeakOutcome {
    let mut sim = AgentSim::new(WeakEstimator, n, seed);
    let out = sim.run_until_converged(
        |states| {
            states.iter().all(|s| s.sampled) && states.windows(2).all(|w| w[0].value == w[1].value)
        },
        f64::MAX,
    );
    debug_assert!(out.converged);
    WeakOutcome {
        estimate: sim.states()[0].value,
        time: out.time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_in_multiplicative_band() {
        for n in [100usize, 1000, 5000] {
            let logn = (n as f64).log2();
            let lo = logn - (n as f64).ln().log2() - 1.0;
            let hi = 2.0 * logn + 2.0;
            let mut in_band = 0;
            let trials = 10;
            for seed in 0..trials {
                let out = weak_estimate(n, seed);
                let k = out.estimate as f64;
                if k >= lo && k <= hi {
                    in_band += 1;
                }
            }
            assert!(
                in_band >= trials - 1,
                "n={n}: only {in_band}/{trials} in [{lo:.1}, {hi:.1}]"
            );
        }
    }

    #[test]
    fn converges_in_logarithmic_time() {
        // O(log n) time: ratio of times between n=4000 and n=100 should be
        // about ln(4000)/ln(100) ≈ 1.8, certainly below 4.
        let t100: f64 = (0..8).map(|s| weak_estimate(100, 50 + s).time).sum::<f64>() / 8.0;
        let t4000: f64 = (0..8)
            .map(|s| weak_estimate(4000, 60 + s).time)
            .sum::<f64>()
            / 8.0;
        assert!(t4000 / t100 < 4.0, "t4000 {t4000} vs t100 {t100}");
    }

    #[test]
    fn multiplicative_vs_additive_error_grows() {
        // The point of the paper: the weak estimator's error grows with n
        // (multiplicative), so its |k − log n| deviation at large n is
        // typically larger than the main protocol's constant band. Just
        // check the estimate is an integer ≥ 1 and the protocol is
        // deterministic per seed.
        let a = weak_estimate(500, 9);
        let b = weak_estimate(500, 9);
        assert_eq!(a.estimate, b.estimate);
        assert!(a.estimate >= 1);
    }
}
