//! Witness extraction for the Theorem 4.1 proof.
//!
//! The proof of Theorem 4.1 starts from a single *witnessing execution*: a
//! finite run `E` from a dense configuration `~c₀` that reaches a terminated
//! configuration. Two numbers are read off the witness — its length `m`
//! (the proof takes the total interaction count; the set of *distinct*
//! transition types used is what the closure actually needs) and the
//! minimum rate constant `ρ` of any transition in `E`. The terminated
//! state is then `m`-`ρ`-producible from `~c₀`, and Lemma 4.2 does the
//! rest.
//!
//! This module runs a protocol, records the witnessing execution, and
//! checks the certificate: the producibility closure from `~c₀`'s states
//! with the extracted `(m, ρ)` must contain the terminated state.

use pp_engine::count_sim::{CountConfiguration, CountSim};

use crate::producible::producible_closure;
use crate::relation::TransitionRelation;

/// A recorded witnessing execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness<S> {
    /// Distinct non-null transitions used, in first-use order, as
    /// `(rec, sen, rec', sen')`.
    pub transition_types: Vec<(S, S, S, S)>,
    /// Total interactions executed (the proof's `|E|`).
    pub length: u64,
    /// Parallel time of the terminating interaction.
    pub time: f64,
    /// Minimum rate constant among the used transitions (the proof's ρ).
    pub min_rate: f64,
}

impl<S> Witness<S> {
    /// The closure depth needed: the number of distinct transition types
    /// (each type enters the closure one level after its inputs).
    pub fn closure_depth(&self) -> usize {
        self.transition_types.len()
    }
}

/// Runs `relation` from `config` until `is_terminated` holds for some
/// agent, recording the witness. Returns `None` if the budget ends first.
pub fn extract_witness<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    config: CountConfiguration<S>,
    is_terminated: impl Fn(&S) -> bool,
    max_time: f64,
    seed: u64,
) -> Option<Witness<S>> {
    let n = config.population_size();
    let mut sim = CountSim::new(relation.clone(), config, seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut types = Vec::new();
    let max_interactions = (max_time * n as f64) as u64;
    for _ in 0..max_interactions {
        let (a, b, c, d) = sim.step_observed();
        if (a, b) != (c, d) && seen.insert((a, b, c, d)) {
            types.push((a, b, c, d));
        }
        if is_terminated(&c) || is_terminated(&d) {
            // Minimum rate over the used transitions, looked up from the
            // relation (null/no-change steps don't count).
            let min_rate = types
                .iter()
                .map(|&(a, b, c, d)| {
                    relation
                        .outcomes(a, b)
                        .iter()
                        .find(|&&(oc, od, _)| (oc, od) == (c, d))
                        .map(|&(_, _, r)| r)
                        .unwrap_or(1.0)
                })
                .fold(1.0, f64::min);
            return Some(Witness {
                transition_types: types,
                length: sim.interactions(),
                time: sim.time(),
                min_rate,
            });
        }
    }
    None
}

/// Checks the proof's certificate: with the witness's `(depth, ρ)`, the
/// producibility closure from the initial states contains a terminated
/// state.
pub fn witness_certifies<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    initial_states: impl IntoIterator<Item = S>,
    witness: &Witness<S>,
    is_terminated: impl Fn(&S) -> bool,
) -> bool {
    let closure = producible_closure(
        relation,
        initial_states,
        witness.min_rate,
        Some(witness.closure_depth()),
    );
    closure.final_set().iter().any(is_terminated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{counter_dense_config, counter_protocol, COUNTER_T, COUNTER_X};

    #[test]
    fn witness_found_for_counter() {
        let rel = counter_protocol(6);
        let w = extract_witness(
            &rel,
            counter_dense_config(10_000),
            |&s| s == COUNTER_T,
            1e4,
            1,
        )
        .expect("counter terminates");
        // At least the 6 increment types must appear before t does.
        assert!(w.closure_depth() >= 6, "only {} types", w.closure_depth());
        assert_eq!(w.min_rate, 1.0);
        assert!(w.time < 100.0, "witness time {} not O(1)", w.time);
    }

    #[test]
    fn witness_certificate_validates() {
        let rel = counter_protocol(5);
        let w = extract_witness(
            &rel,
            counter_dense_config(5_000),
            |&s| s == COUNTER_T,
            1e4,
            2,
        )
        .unwrap();
        assert!(witness_certifies(&rel, [0u16, COUNTER_X], &w, |&s| s == COUNTER_T));
    }

    #[test]
    fn certificate_fails_with_truncated_depth() {
        let rel = counter_protocol(5);
        let w = Witness {
            transition_types: vec![(0u16, COUNTER_X, 1u16, COUNTER_X)],
            length: 1,
            time: 0.1,
            min_rate: 1.0,
        };
        // Depth 1 cannot reach t (needs 5 increments).
        assert!(!witness_certifies(&rel, [0u16, COUNTER_X], &w, |&s| s == COUNTER_T));
    }

    #[test]
    fn no_witness_without_fuel() {
        let rel = counter_protocol(4);
        let config = CountConfiguration::uniform(0u16, 1_000);
        assert!(extract_witness(&rel, config, |&s| s == COUNTER_T, 20.0, 3).is_none());
    }

    #[test]
    fn witness_respects_randomized_rates() {
        use crate::relation::Transition;
        // 0,0 --0.25--> 1,1 ; 1,1 --1.0--> 2,2 (2 = "terminated").
        let rel = TransitionRelation::new([
            Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.25),
            Transition::new(1u8, 1u8, 2u8, 2u8),
        ]);
        let config = CountConfiguration::uniform(0u8, 1_000);
        let w = extract_witness(&rel, config, |&s| s == 2, 1e4, 4).expect("terminates");
        assert_eq!(w.min_rate, 0.25);
        assert!(witness_certifies(&rel, [0u8], &w, |&s| s == 2));
    }
}
