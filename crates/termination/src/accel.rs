//! Null-skipping accelerated simulation for transition relations.
//!
//! Many protocols spend most of their interactions on *null* pairs — input
//! pairs with no listed transition, which provably change nothing. The
//! plain simulator still burns a step on each; this simulator skips them
//! **exactly**: it computes the probability `p` that a uniformly random
//! ordered pair is *potentially active* (has at least one listed
//! transition), advances the interaction counter by a
//! `Geometric(p)`-distributed skip, and then samples an active pair
//! weighted by its count product. The resulting trajectory has exactly the
//! same distribution as [`pp_engine::count_sim::CountSim`]'s — null steps
//! are i.i.d. padding — while the cost per *state change* drops from
//! `Θ(1/p)` to `O(#listed input pairs)`.
//!
//! The payoff is endgame-dominated dynamics: the §3.3 exact backup's last
//! two same-level leaders take `Θ(n)` parallel time (`Θ(n²)` interactions)
//! to meet; the accelerated simulator jumps straight to the meeting.

use pp_engine::count_sim::CountConfiguration;
use pp_engine::rng::{rng_from_seed, SimRng};
use rand::Rng;

use crate::relation::TransitionRelation;

/// Accelerated simulator over a [`TransitionRelation`].
pub struct AcceleratedSim<S: Copy + Ord + std::hash::Hash> {
    relation: TransitionRelation<S>,
    config: CountConfiguration<S>,
    rng: SimRng,
    interactions: u64,
    n: u64,
}

impl<S: Copy + Ord + std::hash::Hash + std::fmt::Debug> AcceleratedSim<S> {
    /// Creates the simulator.
    pub fn new(relation: TransitionRelation<S>, config: CountConfiguration<S>, seed: u64) -> Self {
        let n = config.population_size();
        assert!(n >= 2);
        Self {
            relation,
            config,
            rng: rng_from_seed(seed),
            interactions: 0,
            n,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &CountConfiguration<S> {
        &self.config
    }

    /// Parallel time elapsed (including skipped null interactions).
    pub fn time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Interactions elapsed (including skipped nulls).
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The number of ordered pairs with a listed transition, given current
    /// counts.
    fn active_pairs(&self) -> u128 {
        let mut total: u128 = 0;
        for (a, b) in self.relation.input_pairs() {
            let ca = self.config.count(&a) as u128;
            if ca == 0 {
                continue;
            }
            let cb = if a == b {
                ca.saturating_sub(1)
            } else {
                self.config.count(&b) as u128
            };
            total += ca * cb;
        }
        total
    }

    /// Advances to (and executes) the next potentially-active interaction.
    /// Returns `false` if no active pair exists (the configuration is
    /// silent) — callers should stop.
    pub fn step_active(&mut self) -> bool {
        let active = self.active_pairs();
        if active == 0 {
            return false;
        }
        let total = self.n as u128 * (self.n as u128 - 1);
        let p = active as f64 / total as f64;
        // Geometric skip: number of draws up to and including the first
        // active one.
        let skip = if p >= 1.0 {
            1
        } else {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
        };
        self.interactions += skip;
        // Choose the active ordered pair, weighted by count products.
        let mut target = (self.rng.gen::<f64>() * active as f64) as u128;
        let mut chosen = None;
        for (a, b) in self.relation.input_pairs() {
            let ca = self.config.count(&a) as u128;
            if ca == 0 {
                continue;
            }
            let cb = if a == b {
                ca.saturating_sub(1)
            } else {
                self.config.count(&b) as u128
            };
            let w = ca * cb;
            if target < w {
                chosen = Some((a, b));
                break;
            }
            target -= w;
        }
        let (a, b) = chosen.expect("weights sum to `active`");
        // Apply one listed outcome (or identity leftover).
        let outs = self.relation.outcomes(a, b).to_vec();
        let mut u: f64 = self.rng.gen();
        let mut result = (a, b);
        for (c, d, rate) in outs {
            if u < rate {
                result = (c, d);
                break;
            }
            u -= rate;
        }
        if result != (a, b) {
            self.config.remove(a, 1);
            self.config.remove(b, 1);
            self.config.add(result.0, 1);
            self.config.add(result.1, 1);
        }
        true
    }

    /// Runs until `predicate` holds or no active pair remains or `max_time`
    /// elapses. Returns whether the predicate held.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&CountConfiguration<S>) -> bool,
        max_time: f64,
    ) -> bool {
        loop {
            if predicate(&self.config) {
                return true;
            }
            if self.time() >= max_time {
                return false;
            }
            if !self.step_active() {
                return false;
            }
        }
    }
}

impl<S: Copy + Ord + std::hash::Hash + std::fmt::Debug> TransitionRelation<S> {
    /// Distinct input pairs with listed transitions (used by the
    /// accelerated simulator's active-pair weighting).
    pub fn input_pairs(&self) -> Vec<(S, S)> {
        let mut pairs: Vec<(S, S)> = self.transitions().iter().map(|t| (t.a, t.b)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Transition;
    use pp_engine::count_sim::CountSim;

    fn epidemic_relation() -> TransitionRelation<u8> {
        // One-way epidemic: susceptible receiver + infected sender.
        TransitionRelation::new([Transition::new(0u8, 1u8, 1u8, 1u8)])
    }

    #[test]
    fn accelerated_epidemic_matches_plain_distribution() {
        // Compare completion-time means between the accelerated and plain
        // simulators — they realize the same process.
        let n = 2_000u64;
        let trials = 15;
        let mean_plain: f64 = (0..trials)
            .map(|s| {
                let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
                let mut sim = CountSim::new(epidemic_relation(), config, 100 + s);
                let out = sim.run_until(|c| c.count(&1) == n, 100, f64::MAX);
                out.time
            })
            .sum::<f64>()
            / trials as f64;
        let mean_accel: f64 = (0..trials)
            .map(|s| {
                let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
                let mut sim = AcceleratedSim::new(epidemic_relation(), config, 200 + s);
                assert!(sim.run_until(|c| c.count(&1) == n, f64::MAX));
                sim.time()
            })
            .sum::<f64>()
            / trials as f64;
        let ratio = mean_accel / mean_plain;
        assert!(
            (0.8..1.25).contains(&ratio),
            "accelerated {mean_accel} vs plain {mean_plain}"
        );
    }

    #[test]
    fn silent_configuration_stops() {
        let config = CountConfiguration::uniform(1u8, 100);
        let mut sim = AcceleratedSim::new(epidemic_relation(), config, 1);
        // All infected: the (0,1) pair has weight 0 → silent.
        assert!(!sim.step_active());
        assert!(!sim.run_until(|c| c.count(&0) > 0, 1e6));
    }

    #[test]
    fn backup_endgame_is_jumped() {
        // The l/f backup's *leader* dynamics at n = 10^6 need Θ(n) parallel
        // time (the last two same-level leaders must meet); the accelerated
        // simulator reaches leader-silence in ≈ n state changes instead of
        // Θ(n²) interactions. Followers are kept inert here — their level
        // epidemic is not what the accelerator demonstrates, and including
        // it would add Θ(n·levels) more active steps.
        use crate::relation::Transition;
        // Encode: leaders = level, followers = 1000 + level (inert).
        let mut ts = Vec::new();
        for i in 0..40u32 {
            ts.push(Transition::new(i, i, i + 1, 1000 + i + 1));
        }
        let rel = TransitionRelation::new(ts);
        let n = 1_000_000u64;
        let config = CountConfiguration::uniform(0u32, n);
        let mut sim = AcceleratedSim::new(rel, config, 7);
        let silent = |c: &CountConfiguration<u32>| c.iter().all(|(&s, &k)| s >= 1000 || k <= 1);
        assert!(sim.run_until(silent, f64::MAX));
        // kex = floor(log2 1e6) = 19.
        let max_level = sim
            .config()
            .iter()
            .map(|(&s, _)| if s >= 1000 { s - 1000 } else { s })
            .max()
            .unwrap();
        assert_eq!(max_level, 19);
        // Θ(n) parallel time elapsed "virtually" — verify the skip engine
        // actually accounted for it.
        assert!(
            sim.time() > 1_000.0,
            "time {} too small for Θ(n)",
            sim.time()
        );
        // Surviving leader levels are exactly the set bits of n = 10^6.
        let total: u64 = sim
            .config()
            .iter()
            .filter(|&(&s, &k)| s < 1000 && k > 0)
            .map(|(&s, &k)| k * (1u64 << s))
            .sum();
        assert_eq!(total, n);
    }

    #[test]
    fn randomized_rates_respected() {
        // 0,0 --0.5--> 1,1: the half-rate shows up as ~2x the meetings.
        let rel = TransitionRelation::new([Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.5)]);
        let n = 10_000u64;
        let config = CountConfiguration::uniform(0u8, n);
        let mut sim = AcceleratedSim::new(rel, config, 3);
        // Run until half converted.
        assert!(sim.run_until(|c| c.count(&1) >= n / 2, f64::MAX));
        assert_eq!(sim.config().population_size(), n);
    }

    #[test]
    fn input_pairs_deduped() {
        let rel = TransitionRelation::new([
            Transition::with_rate(0u8, 1u8, 2u8, 2u8, 0.3),
            Transition::with_rate(0u8, 1u8, 3u8, 3u8, 0.3),
            Transition::new(1u8, 0u8, 0u8, 0u8),
        ]);
        assert_eq!(rel.input_pairs(), vec![(0, 1), (1, 0)]);
    }
}
