//! # pp-termination — the machinery of the impossibility theorem
//!
//! *Layer 1 (protocols) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! Theorem 4.1 of Doty & Eftekhari (PODC 2019): a uniform population
//! protocol whose valid initial configurations include infinitely many
//! *α-dense* ones (every state present occupies ≥ αn agents) cannot delay a
//! termination signal beyond `O(1)` parallel time, with any probability
//! bounded above 0 — no matter how much memory it uses.
//!
//! The proof is constructive enough to execute, and this crate does so:
//!
//! * [`relation`] — the abstract randomized transition relation
//!   `a, b --ρ--> c, d` of §4, executable as a
//!   [`pp_engine::count_sim::CountProtocol`].
//! * [`producible`] — the `Λ^m_ρ` producibility closure: the states
//!   reachable via `m` transition types, each with rate constant ≥ ρ. The
//!   proof's key object: any finite terminating execution from `~c_0`
//!   witnesses that a **terminated state** lies in some `Λ^m_ρ`.
//! * [`density`] — α-dense configuration builders and checks.
//! * [`experiment`] — the empirical side: Lemma 4.2 says that from a large
//!   enough α-dense configuration, *every* state in `Λ^m_ρ` reaches count
//!   ≥ δn within parallel time 1 w.h.p. The experiment runs exactly that
//!   and also measures the first-signal time of "terminating" protocols as
//!   `n` grows — flat curves are the theorem made visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod density;
pub mod experiment;
pub mod producible;
pub mod relation;
pub mod witness;

pub use producible::{producible_closure, ClosureResult};
pub use relation::{Transition, TransitionRelation};
