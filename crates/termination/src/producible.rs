//! The `Λ^m_ρ` producibility closure (§4).
//!
//! For a state set `Γ` and threshold `ρ`, `PROD_ρ(Γ)` is the set of states
//! producible by a *single* transition with rate ≥ ρ whose inputs both lie
//! in `Γ`. Iterating `Λ^i_ρ = Λ^{i-1}_ρ ∪ PROD_ρ(Λ^{i-1}_ρ)` from the
//! states present in an initial configuration gives the states
//! *m-ρ-producible* from it.
//!
//! The proof of Theorem 4.1 uses the closure like this: a terminating
//! execution from a dense configuration `~c_0` has finite length `m` and
//! minimum rate `ρ`, so the terminated state is in `Λ^m_ρ`; Lemma 4.2 then
//! forces that state to appear in bulk, in constant time, from every larger
//! dense configuration `~c_ℓ ≥ ~c_0` — producing the termination signal at
//! time `O(1)`.

use std::collections::BTreeSet;

use crate::relation::TransitionRelation;

/// Result of a producibility closure computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureResult<S: Copy + Ord + std::hash::Hash> {
    /// `levels[i]` is `Λ^i_ρ` (so `levels[0]` is the initial state set).
    pub levels: Vec<BTreeSet<S>>,
}

impl<S: Copy + Ord + std::hash::Hash> ClosureResult<S> {
    /// The final set `Λ^m_ρ`.
    pub fn final_set(&self) -> &BTreeSet<S> {
        self.levels.last().expect("closure has at least level 0")
    }

    /// Number of iterations actually performed (may be fewer than requested
    /// if a fixpoint was reached).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// The first level at which `state` appears, if any — the `m` needed to
    /// produce it.
    pub fn level_of(&self, state: &S) -> Option<usize> {
        self.levels.iter().position(|l| l.contains(state))
    }

    /// Whether the closure reached a fixpoint (no growth in the last step).
    pub fn is_fixpoint(&self) -> bool {
        match self.levels.len() {
            0 | 1 => false,
            k => self.levels[k - 1] == self.levels[k - 2],
        }
    }
}

/// Computes `Λ^m_ρ` from `initial` under `relation`, stopping early at a
/// fixpoint. `max_depth = None` iterates to the fixpoint (guaranteed to
/// exist for finite relations).
///
/// ```
/// use pp_termination::relation::{Transition, TransitionRelation};
/// use pp_termination::producible::producible_closure;
///
/// // 0,0 -> 1,1 then 1,1 -> 2,2: state 2 needs two transition types.
/// let rel = TransitionRelation::new([
///     Transition::new(0u8, 0, 1, 1),
///     Transition::new(1u8, 1, 2, 2),
/// ]);
/// let closure = producible_closure(&rel, [0u8], 1.0, None);
/// assert_eq!(closure.level_of(&2), Some(2));
/// assert!(closure.is_fixpoint());
/// ```
pub fn producible_closure<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    initial: impl IntoIterator<Item = S>,
    rho: f64,
    max_depth: Option<usize>,
) -> ClosureResult<S> {
    let mut levels = vec![initial.into_iter().collect::<BTreeSet<S>>()];
    let transitions = relation.transitions();
    loop {
        if let Some(m) = max_depth {
            if levels.len() > m {
                break;
            }
        }
        let prev = levels.last().expect("non-empty");
        let mut next = prev.clone();
        for t in &transitions {
            if t.rate >= rho && prev.contains(&t.a) && prev.contains(&t.b) {
                next.insert(t.c);
                next.insert(t.d);
            }
        }
        let grew = &next != prev;
        levels.push(next);
        if !grew {
            break;
        }
    }
    ClosureResult { levels }
}

/// Convenience: whether any state satisfying `is_terminated` is
/// m-ρ-producible from `initial` — the hypothesis under which Theorem 4.1
/// forces constant-time termination.
pub fn termination_is_producible<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    initial: impl IntoIterator<Item = S>,
    rho: f64,
    is_terminated: impl Fn(&S) -> bool,
) -> Option<usize> {
    let closure = producible_closure(relation, initial, rho, None);
    closure
        .final_set()
        .iter()
        .filter(|s| is_terminated(s))
        .filter_map(|s| closure.level_of(s))
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Transition;

    /// The paper's Figure 1 counter protocol: c_i, x -> c_{i+1}, x up to a
    /// terminal t after 6 increments.
    fn counter_relation() -> TransitionRelation<u8> {
        const X: u8 = 100;
        const T: u8 = 200;
        let mut ts = Vec::new();
        for i in 0..5u8 {
            ts.push(Transition::new(i, X, i + 1, X));
        }
        ts.push(Transition::new(5, X, T, X));
        // Termination epidemic.
        ts.push(Transition::new(X, T, T, T));
        ts.push(Transition::new(0, T, T, T));
        TransitionRelation::new(ts)
    }

    #[test]
    fn counter_closure_reaches_termination() {
        let rel = counter_relation();
        let closure = producible_closure(&rel, [0u8, 100u8], 1.0, None);
        assert!(closure.final_set().contains(&200), "t must be producible");
        // c1 at level 1, c2 at 2, ..., t at level 6.
        assert_eq!(closure.level_of(&1), Some(1));
        assert_eq!(closure.level_of(&5), Some(5));
        assert_eq!(closure.level_of(&200), Some(6));
        assert!(closure.is_fixpoint());
    }

    #[test]
    fn depth_limit_truncates() {
        let rel = counter_relation();
        let closure = producible_closure(&rel, [0u8, 100u8], 1.0, Some(3));
        assert!(closure.final_set().contains(&3));
        assert!(!closure.final_set().contains(&200));
    }

    #[test]
    fn rho_threshold_excludes_rare_transitions() {
        let rel = TransitionRelation::new([
            Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.01),
            Transition::new(1u8, 1u8, 2u8, 2u8),
        ]);
        let with_rare = producible_closure(&rel, [0u8], 0.001, None);
        assert!(with_rare.final_set().contains(&2));
        let without = producible_closure(&rel, [0u8], 0.5, None);
        assert_eq!(without.final_set().iter().count(), 1);
        assert!(!without.final_set().contains(&1));
    }

    #[test]
    fn termination_producibility_helper() {
        let rel = counter_relation();
        let m = termination_is_producible(&rel, [0u8, 100u8], 1.0, |&s| s == 200);
        assert_eq!(m, Some(6));
        // Without x present, the counter can never advance.
        let m2 = termination_is_producible(&rel, [0u8], 1.0, |&s| s == 200);
        assert_eq!(m2, None);
    }

    #[test]
    fn closure_from_empty_is_empty() {
        let rel = counter_relation();
        let closure = producible_closure(&rel, std::iter::empty::<u8>(), 1.0, None);
        assert!(closure.final_set().is_empty());
    }

    #[test]
    fn nonuniform_counter_intuition() {
        // The paper's discussion after Theorem 4.1: in a *nonuniform*
        // protocol for larger n, the transition c5, x -> t, x is replaced by
        // c5, x -> c6, x — the closure then no longer contains t with the
        // same depth, illustrating why the proof needs uniformity.
        const X: u8 = 100;
        const T: u8 = 200;
        let mut ts = Vec::new();
        for i in 0..10u8 {
            ts.push(Transition::new(i, X, i + 1, X));
        }
        ts.push(Transition::new(10, X, T, X));
        let rel = TransitionRelation::new(ts);
        let closure = producible_closure(&rel, [0u8, X], 1.0, Some(6));
        assert!(
            !closure.final_set().contains(&T),
            "larger-n protocol's t is not 6-producible"
        );
    }
}
