//! α-dense configurations (§4).
//!
//! A configuration `~c` is α-dense when every state present has count
//! ≥ α·n. A protocol is *i.o.-dense* when infinitely many of its valid
//! initial configurations are α-dense for some fixed α > 0 — the hypothesis
//! of Theorem 4.1. (An initial leader breaks density: a count-1 state has
//! fraction 1/n → 0.)

use pp_engine::count_sim::CountConfiguration;

/// Builds the α-dense configuration that splits `n` agents evenly over the
/// given states (remainder spread over the first states).
///
/// # Panics
///
/// Panics if `states` is empty or `n < states.len()`.
pub fn even_dense_config<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    states: &[S],
    n: u64,
) -> CountConfiguration<S> {
    assert!(!states.is_empty(), "need at least one state");
    assert!(
        n >= states.len() as u64,
        "population {n} smaller than state count {}",
        states.len()
    );
    let k = states.len() as u64;
    let base = n / k;
    let rem = n % k;
    CountConfiguration::from_pairs(
        states
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, base + u64::from((i as u64) < rem))),
    )
}

/// Builds a dense configuration with explicit fractions (summing to 1, up to
/// rounding; the remainder goes to the first state).
pub fn weighted_dense_config<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    weights: &[(S, f64)],
    n: u64,
) -> CountConfiguration<S> {
    assert!(!weights.is_empty());
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "weights must sum to 1, got {total}"
    );
    let mut counts: Vec<(S, u64)> = weights
        .iter()
        .map(|&(s, w)| (s, (w * n as f64).floor() as u64))
        .collect();
    let assigned: u64 = counts.iter().map(|&(_, c)| c).sum();
    counts[0].1 += n - assigned;
    CountConfiguration::from_pairs(counts)
}

/// The density α of a configuration: the minimum fraction over present
/// states (0 for an empty configuration).
pub fn density<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    config: &CountConfiguration<S>,
) -> f64 {
    let n = config.population_size();
    if n == 0 {
        return 0.0;
    }
    config
        .iter()
        .map(|(_, &k)| k as f64 / n as f64)
        .fold(1.0, f64::min)
}

/// A configuration with a planted leader: one agent in `leader`, the rest
/// evenly over `states`. Its density is `1/n` → not i.o.-dense; the
/// complement case of Theorem 4.1.
pub fn leader_config<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    leader: S,
    states: &[S],
    n: u64,
) -> CountConfiguration<S> {
    assert!(n >= 2);
    let mut config = even_dense_config(states, n - 1);
    config.add(leader, 1);
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_is_dense() {
        let c = even_dense_config(&[0u8, 1, 2], 100);
        assert_eq!(c.population_size(), 100);
        assert_eq!(c.count(&0), 34);
        assert_eq!(c.count(&1), 33);
        assert_eq!(c.count(&2), 33);
        assert!(c.is_dense(0.3));
        assert!((density(&c) - 0.33).abs() < 0.01);
    }

    #[test]
    fn weighted_split_respects_fractions() {
        let c = weighted_dense_config(&[(0u8, 0.25), (1u8, 0.75)], 1000);
        assert_eq!(c.population_size(), 1000);
        assert_eq!(c.count(&0), 250);
        assert_eq!(c.count(&1), 750);
        assert!((density(&c) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_rejected() {
        weighted_dense_config(&[(0u8, 0.5), (1u8, 0.6)], 100);
    }

    #[test]
    fn leader_config_is_not_dense() {
        let c = leader_config(99u8, &[0u8, 1], 1001);
        assert_eq!(c.population_size(), 1001);
        assert_eq!(c.count(&99), 1);
        assert!(density(&c) < 0.001);
        assert!(!c.is_dense(0.01));
    }

    #[test]
    fn density_of_singleton_state() {
        let c = even_dense_config(&[7u8], 50);
        assert_eq!(density(&c), 1.0);
        assert!(c.is_dense(1.0));
    }

    #[test]
    #[should_panic(expected = "smaller than state count")]
    fn too_small_population_rejected() {
        even_dense_config(&[0u8, 1, 2, 3], 3);
    }
}
