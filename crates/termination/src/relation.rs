//! Abstract randomized transition relations (`a, b --ρ--> c, d`).
//!
//! Section 4 models a protocol as a transition relation `Δ ⊆ Λ⁴` with rate
//! constants: when `a` (receiver) and `b` (sender) interact, outcome
//! `(c, d)` occurs with probability `ρ`. Outcome probabilities for a given
//! input pair must sum to at most 1; leftover mass is the identity (no
//! state change), matching the convention that unlisted pairs are null
//! transitions.

use std::collections::BTreeMap;

use pp_engine::count_sim::CountProtocol;
use pp_engine::rng::SimRng;
use rand::Rng;

/// One randomized transition `a, b --rate--> c, d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition<S> {
    /// Receiver's pre-state.
    pub a: S,
    /// Sender's pre-state.
    pub b: S,
    /// Receiver's post-state.
    pub c: S,
    /// Sender's post-state.
    pub d: S,
    /// Rate constant ρ ∈ (0, 1].
    pub rate: f64,
}

impl<S> Transition<S> {
    /// A deterministic transition (`rate = 1`).
    pub fn new(a: S, b: S, c: S, d: S) -> Self {
        Self {
            a,
            b,
            c,
            d,
            rate: 1.0,
        }
    }

    /// A transition with an explicit rate constant.
    pub fn with_rate(a: S, b: S, c: S, d: S, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        Self { a, b, c, d, rate }
    }
}

/// The outcomes of one input pair: `(receiver', sender', rate)` triples.
type Outcomes<S> = Vec<(S, S, f64)>;

/// A finite randomized transition relation, executable as a
/// [`CountProtocol`].
#[derive(Debug, Clone)]
pub struct TransitionRelation<S: Copy + Ord + std::hash::Hash> {
    by_input: BTreeMap<(S, S), Outcomes<S>>,
}

impl<S: Copy + Ord + std::hash::Hash + std::fmt::Debug> TransitionRelation<S> {
    /// Builds a relation from a transition list.
    ///
    /// # Panics
    ///
    /// Panics if the rates of any input pair sum to more than 1 (beyond
    /// floating-point slack).
    pub fn new(transitions: impl IntoIterator<Item = Transition<S>>) -> Self {
        let mut by_input: BTreeMap<(S, S), Outcomes<S>> = BTreeMap::new();
        for t in transitions {
            by_input
                .entry((t.a, t.b))
                .or_default()
                .push((t.c, t.d, t.rate));
        }
        for ((a, b), outs) in &by_input {
            let total: f64 = outs.iter().map(|&(_, _, r)| r).sum();
            assert!(
                total <= 1.0 + 1e-9,
                "rates for input ({a:?}, {b:?}) sum to {total} > 1"
            );
        }
        Self { by_input }
    }

    /// All transitions, flattened back out.
    pub fn transitions(&self) -> Vec<Transition<S>> {
        self.by_input
            .iter()
            .flat_map(|(&(a, b), outs)| {
                outs.iter()
                    .map(move |&(c, d, rate)| Transition { a, b, c, d, rate })
            })
            .collect()
    }

    /// The outcomes listed for input pair `(a, b)` (receiver, sender).
    pub fn outcomes(&self, a: S, b: S) -> &[(S, S, f64)] {
        self.by_input
            .get(&(a, b))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The minimum rate constant across all transitions (the ρ of the
    /// Theorem 4.1 proof, extracted from a witnessing execution).
    pub fn min_rate(&self) -> f64 {
        self.by_input
            .values()
            .flat_map(|outs| outs.iter().map(|&(_, _, r)| r))
            .fold(1.0, f64::min)
    }

    /// All states mentioned anywhere in the relation.
    pub fn states(&self) -> Vec<S> {
        let mut set = std::collections::BTreeSet::new();
        for (&(a, b), outs) in &self.by_input {
            set.insert(a);
            set.insert(b);
            for &(c, d, _) in outs {
                set.insert(c);
                set.insert(d);
            }
        }
        set.into_iter().collect()
    }
}

impl<S: Copy + Ord + std::hash::Hash + std::fmt::Debug> CountProtocol for TransitionRelation<S> {
    type State = S;

    fn transition(&self, rec: S, sen: S, rng: &mut SimRng) -> (S, S) {
        let outs = self.outcomes(rec, sen);
        if outs.is_empty() {
            return (rec, sen);
        }
        let mut u: f64 = rng.gen();
        for &(c, d, rate) in outs {
            if u < rate {
                return (c, d);
            }
            u -= rate;
        }
        (rec, sen) // leftover mass: identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::count_sim::{CountConfiguration, CountSim};
    use pp_engine::rng::rng_from_seed;

    #[test]
    fn deterministic_transition_applies() {
        let rel = TransitionRelation::new([Transition::new(0u8, 1u8, 2u8, 2u8)]);
        let mut rng = rng_from_seed(0);
        assert_eq!(rel.transition(0, 1, &mut rng), (2, 2));
        assert_eq!(rel.transition(1, 0, &mut rng), (1, 0), "unlisted = null");
    }

    #[test]
    fn rates_split_outcomes() {
        let rel = TransitionRelation::new([
            Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.25),
            Transition::with_rate(0u8, 0u8, 2u8, 2u8, 0.25),
        ]);
        let mut rng = rng_from_seed(1);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            let (c, _) = rel.transition(0, 0, &mut rng);
            counts[c as usize] += 1;
        }
        // Expect ~10k, ~10k, ~20k (identity from leftover mass).
        assert!((counts[1] as f64 - 10_000.0).abs() < 700.0, "{counts:?}");
        assert!((counts[2] as f64 - 10_000.0).abs() < 700.0, "{counts:?}");
        assert!((counts[0] as f64 - 20_000.0).abs() < 1000.0, "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn overfull_rates_rejected() {
        TransitionRelation::new([
            Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.7),
            Transition::with_rate(0u8, 0u8, 2u8, 2u8, 0.7),
        ]);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0, 1]")]
    fn zero_rate_rejected() {
        Transition::with_rate(0u8, 0u8, 1u8, 1u8, 0.0);
    }

    #[test]
    fn min_rate_and_states() {
        let rel = TransitionRelation::new([
            Transition::with_rate(0u8, 1u8, 2u8, 3u8, 0.5),
            Transition::new(2u8, 2u8, 4u8, 4u8),
        ]);
        assert_eq!(rel.min_rate(), 0.5);
        assert_eq!(rel.states(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rel.transitions().len(), 2);
    }

    #[test]
    fn epidemic_as_relation() {
        // x, y -> y, y epidemic over {0 susceptible, 1 infected}: encode as
        // (0 rec, 1 sen) -> (1, 1).
        let rel = TransitionRelation::new([Transition::new(0u8, 1u8, 1u8, 1u8)]);
        let config = CountConfiguration::from_pairs([(0u8, 999), (1u8, 1)]);
        let mut sim = CountSim::new(rel, config, 2);
        // One-way epidemic where only (rec=0, sen=1) infects: completes in
        // O(log n) time all the same.
        let out = sim.run_until(|c| c.count(&1) == 1000, 100, 1_000.0);
        assert!(out.converged);
    }
}
