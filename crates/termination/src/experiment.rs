//! Empirical verification of Lemma 4.2 and Theorem 4.1.
//!
//! * [`verify_density_lemma`] runs a transition relation from an α-dense
//!   configuration for a fixed parallel time and reports, for every state in
//!   the producibility closure `Λ^m_ρ`, the fraction of the population
//!   holding it. Lemma 4.2 predicts every fraction is ≥ δ for some constant
//!   δ > 0 *independent of n* once `n` is large enough.
//! * [`signal_time`] measures when the first terminated-state agent appears
//!   — Theorem 4.1 predicts a curve that is flat in `n` for any uniform
//!   protocol started dense.

use pp_engine::count_sim::CountConfiguration;
use pp_engine::Simulation;

use crate::producible::producible_closure;
use crate::relation::TransitionRelation;

/// Per-state observation from a density-lemma run.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDensity<S> {
    /// The state.
    pub state: S,
    /// Its producibility level (`m` such that it first appears in `Λ^m_ρ`).
    pub level: usize,
    /// Its count at the end of the run.
    pub count: u64,
    /// Its fraction of the population.
    pub fraction: f64,
}

/// Result of one density-lemma run.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityReport<S> {
    /// Population size.
    pub n: u64,
    /// Parallel time simulated.
    pub time: f64,
    /// Observations for every state in the closure.
    pub states: Vec<StateDensity<S>>,
}

impl<S> DensityReport<S> {
    /// The minimum fraction over all closure states — Lemma 4.2's δ.
    pub fn min_fraction(&self) -> f64 {
        self.states.iter().map(|s| s.fraction).fold(1.0, f64::min)
    }

    /// Whether every closure state reached at least `delta` density.
    pub fn all_reached(&self, delta: f64) -> bool {
        self.states.iter().all(|s| s.fraction >= delta)
    }
}

/// Runs `relation` from `config` for `time` parallel time and reports the
/// density of every state in `Λ^m_ρ` (`max_depth = None` → fixpoint
/// closure from the states present in `config`).
pub fn verify_density_lemma<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    config: CountConfiguration<S>,
    rho: f64,
    max_depth: Option<usize>,
    time: f64,
    seed: u64,
) -> DensityReport<S> {
    let n = config.population_size();
    let initial: Vec<S> = config.iter().map(|(&s, _)| s).collect();
    let closure = producible_closure(relation, initial, rho, max_depth);
    let mut sim = Simulation::count_builder(relation.clone())
        .initial(config)
        .seed(seed)
        .build();
    sim.run_for_time(time);
    let final_view = sim.view();
    let states = closure
        .final_set()
        .iter()
        .map(|&state| {
            let count = pp_engine::count_of(&final_view, &state);
            StateDensity {
                state,
                level: closure.level_of(&state).expect("state is in closure"),
                count,
                fraction: count as f64 / n as f64,
            }
        })
        .collect();
    DensityReport {
        n,
        time: sim.time(),
        states,
    }
}

/// Measures the parallel time until the first agent satisfies
/// `is_terminated`, running `relation` from `config`.
pub fn signal_time<S: Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    relation: &TransitionRelation<S>,
    config: CountConfiguration<S>,
    is_terminated: impl Fn(&S) -> bool,
    max_time: f64,
    seed: u64,
) -> Option<f64> {
    let n = config.population_size();
    let (out, _) = Simulation::count_builder(relation.clone())
        .initial(config)
        .seed(seed)
        .check_every((n / 100).max(1))
        .max_time(max_time)
        .until(|view| view.iter().any(|(s, k)| *k > 0 && is_terminated(s)))
        .run();
    out.converged.then_some(out.time)
}

/// The paper's Figure-1-style uniform counter protocol with a termination
/// signal, used as the standard demonstrator: agents in `c_i` increment on
/// meeting an `x`; at `c_limit` they emit `t`, which spreads.
///
/// States are encoded as `u16`: `0..=limit` are the counters, `X = 1000` is
/// the fuel state, `T = 2000` the terminated state.
pub fn counter_protocol(limit: u16) -> TransitionRelation<u16> {
    use crate::relation::Transition;
    assert!((1..1000).contains(&limit));
    let mut ts = Vec::new();
    for i in 0..limit.saturating_sub(1) {
        ts.push(Transition::new(i, COUNTER_X, i + 1, COUNTER_X));
    }
    ts.push(Transition::new(limit - 1, COUNTER_X, COUNTER_T, COUNTER_X));
    // Termination epidemic from every state.
    for i in 0..limit {
        ts.push(Transition::new(i, COUNTER_T, COUNTER_T, COUNTER_T));
    }
    ts.push(Transition::new(COUNTER_X, COUNTER_T, COUNTER_T, COUNTER_T));
    TransitionRelation::new(ts)
}

/// The fuel state of [`counter_protocol`].
pub const COUNTER_X: u16 = 1000;
/// The terminated state of [`counter_protocol`].
pub const COUNTER_T: u16 = 2000;

/// The standard dense initial configuration for [`counter_protocol`]:
/// half `c_0`, half `x` (α = 1/2).
pub fn counter_dense_config(n: u64) -> CountConfiguration<u16> {
    crate::density::even_dense_config(&[0u16, COUNTER_X], n)
}

/// One seeded trial of the Figure-1 counter's termination-signal time: the
/// threshold-`limit` counter started dense at population `n`, run until
/// the first `T`-state agent appears. Theorem 4.1 predicts the result is
/// `O(1)` in `n`; this is the sweep-registry form of the measurement the
/// `table_termination_impossibility` harness makes.
pub fn counter_signal_trial(n: u64, limit: u16, seed: u64) -> f64 {
    let relation = counter_protocol(limit);
    signal_time(
        &relation,
        counter_dense_config(n),
        |&s| s == COUNTER_T,
        1e5,
        seed,
    )
    .expect("the dense counter always raises its signal within 10^5 parallel time")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_terminates_fast_regardless_of_n() {
        // Theorem 4.1 in action: the same uniform counter protocol, dense
        // start, n varying by 100x — the signal time barely moves.
        let limit = 8;
        let rel = counter_protocol(limit);
        let trials = 5;
        let mut times = Vec::new();
        for (i, n) in [1_000u64, 10_000, 100_000].into_iter().enumerate() {
            // Mean over a few seeds: the signal time is the minimum of n
            // per-agent counting times, whose single-run value has a long
            // left tail — one trial per size makes the ratio check flaky.
            let mean = (0..trials)
                .map(|t| {
                    signal_time(
                        &rel,
                        counter_dense_config(n),
                        |&s| s == COUNTER_T,
                        1e4,
                        (i * trials + t) as u64,
                    )
                    .expect("counter must terminate")
                })
                .sum::<f64>()
                / trials as f64;
            times.push(mean);
        }
        let spread = times.iter().fold(0.0f64, |a, &b| a.max(b))
            / times.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(spread < 3.0, "signal times {times:?} vary too much");
    }

    #[test]
    fn density_lemma_holds_for_counter() {
        // All m-ρ-producible states (c_0..c_7, x, t) should hold ≥ δn agents
        // by a constant time, for δ independent of n. Use time 4 (the t
        // epidemic needs a moment to take off; Lemma 4.2's statement is for
        // time 1 with its own δ — any constant works for the shape check).
        let rel = counter_protocol(6);
        let mut fractions = Vec::new();
        for (i, n) in [2_000u64, 20_000, 200_000].into_iter().enumerate() {
            let report =
                verify_density_lemma(&rel, counter_dense_config(n), 1.0, None, 4.0, 7 + i as u64);
            assert_eq!(
                report.states.len(),
                8,
                "closure is c_0..c_5, x, t → 8 states"
            );
            fractions.push(report.min_fraction());
        }
        // δ must not collapse as n grows.
        let min = fractions.iter().fold(1.0f64, |a, &b| a.min(b));
        assert!(min > 0.001, "min fraction {fractions:?} collapsed");
        let ratio = fractions[0] / fractions[2];
        assert!(
            (0.2..5.0).contains(&ratio),
            "fractions {fractions:?} scale with n — they must not"
        );
    }

    #[test]
    fn closure_levels_reported() {
        let rel = counter_protocol(4);
        let report = verify_density_lemma(&rel, counter_dense_config(5_000), 1.0, None, 2.0, 3);
        let t_level = report
            .states
            .iter()
            .find(|s| s.state == COUNTER_T)
            .expect("t in closure")
            .level;
        assert_eq!(t_level, 4, "t needs exactly `limit` transition types");
    }

    #[test]
    fn signal_never_fires_without_fuel() {
        // Start without x: counters can never advance, t unreachable.
        let rel = counter_protocol(4);
        let config = CountConfiguration::uniform(0u16, 1000);
        let t = signal_time(&rel, config, |&s| s == COUNTER_T, 50.0, 9);
        assert_eq!(t, None);
    }

    #[test]
    fn bigger_limit_delays_but_stays_constant_in_n() {
        let rel = counter_protocol(30);
        let t_small = signal_time(
            &rel,
            counter_dense_config(2_000),
            |&s| s == COUNTER_T,
            1e4,
            1,
        )
        .unwrap();
        let t_large = signal_time(
            &rel,
            counter_dense_config(50_000),
            |&s| s == COUNTER_T,
            1e4,
            2,
        )
        .unwrap();
        assert!(
            t_large / t_small < 3.0,
            "limit-30 counter: {t_small} -> {t_large}"
        );
    }
}
