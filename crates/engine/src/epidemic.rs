//! One-way epidemics: the paper's basic information-spreading primitive.
//!
//! Transitions of the form `i, j -> j, j` for `i <= j` spread the maximum of
//! an initial value assignment to every agent in `Theta(log n)` parallel time
//! (Lemma A.1: `E[T] = (n-1)/n * H_{n-1}`, with tails
//! `Pr[T > a ln n] < 4 n^{-a/4+1}`). The `Log-Size-Estimation` protocol uses
//! one epidemic per epoch to propagate the epoch's maximum geometric random
//! variable, and Corollary 3.4 extends the bound to epidemics running inside
//! a subpopulation (the role-A agents).
//!
//! This module provides the epidemic as a standalone protocol plus direct
//! measurement helpers used by the `table_epidemic` harness.

use crate::batch::{DeterministicCountProtocol, EngineMode};
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::simulation::{count_of, Simulation};

/// Max-propagation epidemic over `u64` values: both agents adopt the max.
///
/// The symmetric form (`i, j -> max, max`) completes at the same time as the
/// one-way form for the "time until all agents hold the global max" event,
/// and is what `Propagate-Max-G.R.V.` (Subprotocol 5) does.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxEpidemic;

impl Protocol for MaxEpidemic {
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn interact(&self, rec: &mut u64, sen: &mut u64, _rng: &mut SimRng) {
        let m = (*rec).max(*sen);
        *rec = m;
        *sen = m;
    }
}

/// One-way infection epidemic over `{false, true}`: the receiver is infected
/// if the sender is (the canonical `x, y -> y, y` epidemic specialized to two
/// values).
#[derive(Debug, Clone, Copy, Default)]
pub struct InfectionEpidemic;

impl DeterministicCountProtocol for InfectionEpidemic {
    type State = bool;

    fn transition_det(&self, rec: bool, sen: bool) -> (bool, bool) {
        (rec || sen, sen)
    }
}

/// Measures the parallel time for a one-way epidemic started from a single
/// infected agent to reach all `n` agents.
///
/// Returns the completion time. Lemma A.1 gives
/// `E[T] = (n-1)/n * H_{n-1} ~ ln n`. Runs on the batched engine at large
/// `n` (the protocol is deterministic), so `n = 10⁷` completes in
/// milliseconds.
pub fn epidemic_completion_time(n: u64, seed: u64) -> f64 {
    completion_time_impl(n, seed, EngineMode::Auto)
}

fn completion_time_impl(n: u64, seed: u64, mode: EngineMode) -> f64 {
    assert!(n >= 2);
    let (out, _) = Simulation::count_builder(InfectionEpidemic)
        .config([(false, n - 1), (true, 1)])
        .seed(seed)
        .mode(mode)
        .check_every((n / 10).max(1))
        .until(move |view| count_of(view, &true) == n)
        .run();
    debug_assert!(out.converged);
    out.time
}

/// State for a subpopulation epidemic: `(in_subpopulation, infected)`.
///
/// Only interactions where *both* agents are in the subpopulation spread the
/// infection, modelling Corollary 3.4's epidemic among the role-A agents
/// while the role-S agents merely consume scheduler picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubState {
    /// Member of the subpopulation running the epidemic.
    pub member: bool,
    /// Carrying the epidemic value.
    pub infected: bool,
}

/// Epidemic restricted to a marked subpopulation (Corollary 3.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubpopulationEpidemic;

impl DeterministicCountProtocol for SubpopulationEpidemic {
    type State = SubState;

    fn transition_det(&self, rec: SubState, sen: SubState) -> (SubState, SubState) {
        if rec.member && sen.member && sen.infected {
            (
                SubState {
                    member: true,
                    infected: true,
                },
                sen,
            )
        } else {
            (rec, sen)
        }
    }
}

/// Measures completion time of an epidemic confined to a subpopulation of
/// size `a` inside a population of size `n` (Corollary 3.4: the slowdown is
/// the factor `n(n-1)/(a(a-1))` in expectation).
pub fn subpopulation_epidemic_time(n: u64, a: u64, seed: u64) -> f64 {
    subpopulation_time_impl(n, a, seed, EngineMode::Auto)
}

fn subpopulation_time_impl(n: u64, a: u64, seed: u64, mode: EngineMode) -> f64 {
    assert!(a >= 2 && a <= n);
    let member_inf = SubState {
        member: true,
        infected: true,
    };
    let member_sus = SubState {
        member: true,
        infected: false,
    };
    let outsider = SubState {
        member: false,
        infected: false,
    };
    let (out, _) = Simulation::count_builder(SubpopulationEpidemic)
        .config([(member_inf, 1), (member_sus, a - 1), (outsider, n - a)])
        .seed(seed)
        .mode(mode)
        .check_every((n / 10).max(1))
        .until(move |view| count_of(view, &member_inf) == a)
        .run();
    debug_assert!(out.converged);
    out.time
}

/// Assigns each of `n` agents an independent value from `sampler` and
/// measures the parallel time until the max-epidemic delivers the global
/// maximum to every agent. Returns `(max_value, completion_time)`.
///
/// This is exactly the first stage of `Log-Size-Estimation` (generate
/// `logSize2`, propagate the max), measured in isolation.
pub fn max_propagation_time(
    n: usize,
    seed: u64,
    mut sampler: impl FnMut(&mut SimRng) -> u64,
) -> (u64, f64) {
    let mut init_rng = crate::rng::rng_from_seed(crate::rng::derive_seed(seed, 1));
    let values: Vec<u64> = (0..n).map(|_| sampler(&mut init_rng)).collect();
    let max = values.iter().copied().max().unwrap_or(0);
    let (out, _) = Simulation::builder(MaxEpidemic)
        .size(n as u64)
        .seed(seed)
        .init_with(move |i, _| values[i])
        .until(move |view| view.iter().all(|&(v, _)| v == max))
        .run();
    debug_assert!(out.converged);
    (max, out.time)
}

/// Expected epidemic completion time from Lemma A.1:
/// `E[T] = (n-1)/n * H_{n-1}`.
pub fn expected_epidemic_time(n: u64) -> f64 {
    let h: f64 = (1..n).map(|k| 1.0 / k as f64).sum();
    (n - 1) as f64 / n as f64 * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn expected_time_matches_harmonic() {
        // H_9 = 2.828968...
        let e = expected_epidemic_time(10);
        assert!((e - 0.9 * 2.828_968_254).abs() < 1e-6, "{e}");
    }

    #[test]
    fn completion_time_near_expectation() {
        let n = 2000;
        let trials = 20;
        let mean: f64 = (0..trials)
            .map(|t| epidemic_completion_time(n, 42 + t))
            .sum::<f64>()
            / trials as f64;
        let expected = expected_epidemic_time(n);
        // One-way single-source epidemic takes ~2 ln n (ln n to reach half,
        // ln n to cover the tail); Lemma A.1's H_{n-1} form is for its
        // specific two-way variant. Accept a generous band around ln n.
        assert!(
            mean > 0.8 * expected && mean < 4.0 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn subpopulation_epidemic_slower_than_full() {
        let n = 1200;
        let trials = 8;
        let full: f64 = (0..trials)
            .map(|t| epidemic_completion_time(n, 7 + t))
            .sum::<f64>()
            / trials as f64;
        let third: f64 = (0..trials)
            .map(|t| subpopulation_epidemic_time(n, n / 3, 107 + t))
            .sum::<f64>()
            / trials as f64;
        assert!(
            third > full,
            "subpopulation epidemic ({third}) should be slower than full ({full})"
        );
        // Corollary 3.4: slowdown factor ≈ c² where c = 3 for time-to-next
        // within-subpopulation interaction, but completion is over a smaller
        // population (ln(n/3) < ln n); expect between 2x and 20x.
        assert!(third < 20.0 * full, "third {third} vs full {full}");
    }

    #[test]
    fn max_propagation_finds_true_max() {
        let (max, time) = max_propagation_time(300, 11, |rng| rng.gen_range(0..1000));
        assert!(max < 1000);
        assert!(time > 0.0);
    }

    #[test]
    fn max_propagation_of_geometrics() {
        // The max of n geometric(1/2) RVs should be near log2(n).
        let n = 4096;
        let (max, _) = max_propagation_time(n, 13, crate::rng::geometric_half);
        let logn = (n as f64).log2();
        assert!(
            (max as f64) > logn - 4.0 && (max as f64) < 2.5 * logn,
            "max {max} vs log n {logn}"
        );
    }
}
