//! The uniform random pairwise scheduler.
//!
//! At each step the scheduler selects an ordered pair of *distinct* agents
//! uniformly at random: the first component is the **receiver**, the second
//! the **sender** (the paper's `(rec, sen)` convention). Equivalently, an
//! unordered pair is chosen uniformly from the `n(n-1)/2` pairs and then a
//! fair coin orders it; Appendix B's synthetic-coin protocols exploit exactly
//! this fair ordering coin.

use rand::Rng;

/// An ordered interaction pair: indices of the receiver and the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct OrderedPair {
    /// Index of the receiving agent.
    pub receiver: usize,
    /// Index of the sending agent.
    pub sender: usize,
}

/// Uniform random pair scheduler over a population of fixed size.
#[derive(Debug, Clone)]
pub struct PairScheduler {
    n: usize,
}

impl PairScheduler {
    /// Creates a scheduler for a population of `n >= 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`; a single agent can never interact.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        Self { n }
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// Draws one ordered pair of distinct agents uniformly at random.
    #[inline]
    pub fn next_pair(&self, rng: &mut impl Rng) -> OrderedPair {
        let receiver = rng.gen_range(0..self.n);
        // Sample the sender from the remaining n-1 agents by drawing from
        // [0, n-1) and skipping over the receiver. Each of the n(n-1) ordered
        // pairs is produced with probability exactly 1/(n(n-1)).
        let mut sender = rng.gen_range(0..self.n - 1);
        if sender >= receiver {
            sender += 1;
        }
        OrderedPair { receiver, sender }
    }
}

/// Converts an interaction count to parallel time for a population of size `n`.
///
/// Parallel time is defined throughout the paper as interactions divided by
/// `n`: each agent expects `Theta(1)` interactions per unit of time.
#[inline]
pub fn parallel_time(interactions: u64, n: usize) -> f64 {
    interactions as f64 / n as f64
}

/// Converts a parallel-time budget to an interaction budget (rounding up).
#[inline]
pub fn interactions_for_time(time: f64, n: usize) -> u64 {
    (time * n as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn pairs_are_distinct() {
        let sched = PairScheduler::new(5);
        let mut rng = rng_from_seed(1);
        for _ in 0..10_000 {
            let p = sched.next_pair(&mut rng);
            assert_ne!(p.receiver, p.sender);
            assert!(p.receiver < 5 && p.sender < 5);
        }
    }

    #[test]
    fn pairs_are_uniform_over_ordered_pairs() {
        let n = 4;
        let sched = PairScheduler::new(n);
        let mut rng = rng_from_seed(2);
        let mut counts = vec![vec![0u64; n]; n];
        let trials = 240_000;
        for _ in 0..trials {
            let p = sched.next_pair(&mut rng);
            counts[p.receiver][p.sender] += 1;
        }
        let expected = trials as f64 / (n * (n - 1)) as f64;
        for (r, row) in counts.iter().enumerate() {
            for (s, &c) in row.iter().enumerate() {
                if r == s {
                    assert_eq!(c, 0);
                } else {
                    let dev = (c as f64 - expected).abs() / expected;
                    assert!(dev < 0.05, "pair ({r},{s}) count {c} deviates {dev}");
                }
            }
        }
    }

    #[test]
    fn two_agent_population_works() {
        let sched = PairScheduler::new(2);
        let mut rng = rng_from_seed(3);
        let mut saw_01 = false;
        let mut saw_10 = false;
        for _ in 0..100 {
            let p = sched.next_pair(&mut rng);
            match (p.receiver, p.sender) {
                (0, 1) => saw_01 = true,
                (1, 0) => saw_10 = true,
                other => panic!("impossible pair {other:?}"),
            }
        }
        assert!(saw_01 && saw_10, "both orderings should occur");
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn rejects_singleton_population() {
        PairScheduler::new(1);
    }

    #[test]
    fn parallel_time_roundtrip() {
        assert_eq!(parallel_time(1000, 100), 10.0);
        assert_eq!(interactions_for_time(10.0, 100), 1000);
        assert_eq!(interactions_for_time(0.015, 1000), 15);
    }
}
