//! # pp-engine — population protocol simulation engine
//!
//! This crate is the execution substrate for the reproduction of
//! Doty & Eftekhari, *"Efficient size estimation and impossibility of
//! termination in uniform dense population protocols"* (PODC 2019).
//!
//! A *population protocol* is a network of `n` anonymous agents. Repeatedly, an
//! ordered pair of distinct agents — a **receiver** and a **sender** — is
//! chosen uniformly at random and both agents update their states by a common
//! transition algorithm. *Parallel time* is the number of interactions divided
//! by `n`.
//!
//! The crate provides three complementary simulators:
//!
//! * [`sim::AgentSim`] — stores one state struct per agent. This is the
//!   workhorse for the paper's protocols, whose per-agent state is a record of
//!   integer fields (`role`, `time`, `sum`, `epoch`, `gr`, `logSize2`, ...).
//! * [`count_sim::CountSim`] — stores a configuration vector (a multiset of
//!   states). This is asymptotically faster for protocols with a small state
//!   space and lets experiments scale to millions of agents; it is used for
//!   epidemics, the slow exact backup counter, and the density experiments of
//!   Theorem 4.1.
//! * [`batch::BatchedCountSim`] — the batched configuration simulator
//!   (Berenbrink et al., ESA 2020; the engine inside `ppsim`). It samples
//!   `Θ(√n)` interactions at a time: the batch's state-count splits come
//!   from conditional hypergeometric draws and transitions are applied as
//!   bulk count deltas through a dense table of per-pair *outcome laws* —
//!   deterministic pairs as single deltas, randomized pairs with
//!   enumerable outcome distributions ([`count_sim::CountProtocol::outcomes`])
//!   as one exact multinomial split per pair, and only unenumerable pairs
//!   falling back to per-interaction sampling. Amortized cost per
//!   interaction is `o(1)` — batches get relatively cheaper as `n` grows.
//!   When the configuration goes null-dominated (epidemic tails, converged
//!   runs) it switches to a Gillespie-style skip mode that advances whole
//!   geometric runs of no-op interactions in O(1). At `n = 10⁶`–`10⁷` the
//!   combination is tens to hundreds of times faster than `CountSim` on the
//!   paper's `Θ(log n)`-time experiments (see `BENCH_batch.json`) and is
//!   what makes the `log log n` convergence bands observable at realistic
//!   population sizes.
//!
//! The [`interned::Interned`] adapter bridges the two protocol styles: it
//! lazily interns rich record states into dense `u32` slots, so any
//! agent-level [`protocol::Protocol`] implementation runs on the count
//! engines unchanged (and non-uniform initial configurations come along via
//! [`count_sim::CountSeededInit`]).
//!
//! Use the [`batch::ConfigSim`] facade to get the right engine
//! automatically: batched when the protocol reports
//! [`count_sim::CountProtocol::prefers_batching`] (deterministic protocols
//! by default; randomized protocols with small state spaces and enumerable
//! outcomes opt in) and the population is at least
//! [`batch::ConfigSim::BATCH_THRESHOLD`], sequential otherwise. All engines
//! realize exactly the same stochastic process — the repository's
//! statistical-equivalence suites (`tests/batched_equivalence.rs`,
//! `tests/unified_equivalence.rs`) hold them to that.
//!
//! All simulators draw interactions from the same [`scheduler`] abstraction,
//! are deterministic given a `u64` seed, and report time in parallel-time
//! units. [`runner`] fans independent trials out over threads; [`rng`]
//! additionally provides the exact bulk samplers (binomial, hypergeometric,
//! multivariate splits) the batched engine is built on.
//!
//! ## Example: a one-way epidemic
//!
//! ```
//! use pp_engine::{AgentSim, Protocol};
//! use pp_engine::rng::SimRng;
//!
//! struct Epidemic;
//!
//! impl Protocol for Epidemic {
//!     type State = bool; // infected?
//!
//!     fn initial_state(&self) -> bool {
//!         false
//!     }
//!
//!     fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
//!         *rec |= *sen; // the receiver catches what the sender carries
//!     }
//! }
//!
//! let mut sim = AgentSim::new(Epidemic, 100, 42);
//! sim.set_state(0, true); // patient zero
//! let out = sim.run_until_converged(|s| s.iter().all(|&x| x), 1_000.0);
//! assert!(out.converged);
//! // An epidemic completes in ~2 ln n parallel time.
//! assert!(out.time < 30.0);
//! ```
//!
//! ## Model fidelity
//!
//! * The ordered receiver/sender pair matches the paper's
//!   `Log-Size-Estimation(rec, sen)` convention; Appendix B's synthetic-coin
//!   protocol relies on the symmetry of the order choice as a fair coin.
//! * Protocols in the paper's main model have access to uniformly random bits
//!   (a randomized transition relation); the engine passes a per-simulation
//!   RNG into every transition. Deterministic protocols simply ignore it.
//! * Uniformity — the requirement that the transition algorithm not depend on
//!   `n` — is enforced structurally: [`protocol::Protocol::interact`] receives
//!   only the two agent states and the RNG, never the population size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod count_sim;
pub mod epidemic;
pub mod interned;
pub mod protocol;
pub mod record;
pub mod rng;
pub mod runner;
pub mod scheduler;
pub mod sim;

pub use batch::{BatchedCountSim, ConfigSim, DeterministicCountProtocol, EngineMode};
pub use count_sim::{CountConfiguration, CountProtocol, CountSeededInit, CountSim, Outcomes};
pub use interned::{Interned, InternerHandle};
pub use protocol::{Protocol, SeededInit};
pub use record::{Trace, TracePoint};
pub use rng::{derive_seed, SimRng};
pub use runner::{run_trials, run_trials_threaded, TrialOutcome};
pub use scheduler::{OrderedPair, PairScheduler};
pub use sim::AgentSim;
