//! # pp-engine — population protocol simulation engine
//!
//! *Layers 2–4 (interned count semantics, engines, simulation surface) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! This crate is the execution substrate for the reproduction of
//! Doty & Eftekhari, *"Efficient size estimation and impossibility of
//! termination in uniform dense population protocols"* (PODC 2019).
//!
//! A *population protocol* is a network of `n` anonymous agents. Repeatedly, an
//! ordered pair of distinct agents — a **receiver** and a **sender** — is
//! chosen uniformly at random and both agents update their states by a common
//! transition algorithm. *Parallel time* is the number of interactions divided
//! by `n`.
//!
//! ## The API: one builder, one trait
//!
//! Every measurement in this repository is one sentence: *run protocol `P`
//! on `n` agents from initial configuration `C` under engine `E` until
//! predicate `Q`, observing metrics `M`.* The [`simulation`] module is that
//! sentence as code — start there:
//!
//! ```
//! use pp_engine::{Simulation, SimRng, Protocol};
//!
//! struct Epidemic;
//!
//! impl Protocol for Epidemic {
//!     type State = bool; // infected?
//!
//!     fn initial_state(&self) -> bool {
//!         false
//!     }
//!
//!     fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
//!         *rec |= *sen; // the receiver catches what the sender carries
//!     }
//! }
//!
//! let (out, sim) = Simulation::builder(Epidemic)
//!     .size(100)
//!     .seed(42)
//!     .init_planted([(true, 1)]) // patient zero
//!     .max_time(1_000.0)
//!     .until(|view| view.iter().all(|&(infected, _)| infected))
//!     .run();
//! assert!(out.converged);
//! // An epidemic completes in ~2 ln n parallel time.
//! assert!(out.time < 30.0);
//! assert_eq!(sim.count(&true), 100);
//! ```
//!
//! [`Simulation::builder`] configures the protocol, population size, seed,
//! initial configuration (`init_planted` / `init_config` / `init_seeded` /
//! `init_with`), engine ([`simulation::SimMode`]), checkpoint cadence,
//! time budget, convergence predicate (`until`), and
//! [`simulation::Observer`] hooks (periodic snapshots, trace recording,
//! interaction-count telemetry). [`Simulation::count_builder`] is the same
//! surface for protocols expressed directly over configuration vectors
//! ([`count_sim::CountProtocol`]). Engine selection is a builder argument
//! — `.mode(EngineMode::Auto)` — not a per-call-site decision, and the
//! sweep layer pins engines per experiment grid through the same hook.
//!
//! ## The engines
//!
//! Underneath the builder sit four simulators, unified behind the
//! object-safe [`simulation::Engine`] trait (advance the interaction
//! clock, decode the occupied-state multiset):
//!
//! * [`sim::AgentSim`] — one state struct per agent. Retained for
//!   cross-engine validation (the `*_agentwise` helpers), trace tooling,
//!   and the small-population regimes where its per-interaction constant
//!   wins; since the interner GC landed it is no longer the *required*
//!   engine for any protocol.
//! * [`count_sim::CountSim`] — a configuration vector (a multiset of
//!   states): `O(log k)` per interaction, `O(k)` memory, for protocols
//!   with small occupied support.
//! * [`batch::BatchedCountSim`] — the batched configuration simulator
//!   (Berenbrink et al., ESA 2020; the engine inside `ppsim`): `Θ(√n)`
//!   interactions per batch via conditional hypergeometric fills and a
//!   dense table of per-pair outcome laws, with a Gillespie-style
//!   null-skip mode for null-dominated phases. `o(1)` amortized work per
//!   interaction; tens to hundreds of times faster than `CountSim` at
//!   `n = 10⁶`–`10⁷` (see `BENCH_batch.json`).
//! * [`batch::ConfigSim`] — the adaptive facade: starts on the engine the
//!   protocol prefers, re-evaluates occupied support vs batch length
//!   mid-run ([`batch::EngineMode::Auto`]), and switches batched ↔
//!   sequential carrying protocol, configuration, RNG stream, and
//!   interaction clock across.
//!
//! The [`interned::Interned`] adapter runs any agent-level
//! [`protocol::Protocol`] on the count engines by interning record states
//! into dense `u32` slots; the builder applies it automatically for count
//! modes. A generation-based **interner GC** (triggered at [`ConfigSim`]'s
//! adaptive checkpoints) evicts states the configuration no longer holds
//! and compacts the table, so even counter-churning protocols — the
//! paper's `Log-Size-Estimation` and `Leader-Terminating` record states,
//! which mint a fresh state on nearly every interaction — stay at
//! live-support memory on arbitrarily long runs. That closed the last
//! engine-selection carve-out: `EngineMode::Auto` on the count engines is
//! the default for **every** protocol, and collection is
//! trajectory-neutral (`tests/gc_equivalence.rs` holds sweeps with GC on
//! and off to byte-identical output). Three hot-path layers make that
//! default *free*: state → id lookups probe an open-addressed
//! [`slot_index::SlotIndex`] instead of a `BTreeMap`; zero-randomness
//! transitions replay from a generation-stamped pair-outcome cache; and
//! when a record protocol churns at scale, the adapter's **dense
//! per-agent lane** runs the budget at the agent simulator's own cost
//! model and re-interns once at the end, closing the count engines' last
//! throughput gap (`bench_batch`'s `logsize_estimation` /
//! `leader_terminating` rows hold the count/agent ratio near 1). All engines realize exactly the
//! same stochastic process — the statistical-equivalence suites
//! (`tests/batched_equivalence.rs`, `tests/unified_equivalence.rs`), the
//! byte-level builder suite (`tests/builder_equivalence.rs`), and the
//! `Engine` conformance suite (`crates/engine/tests/engine_conformance.rs`)
//! hold them to that.
//!
//! ## Observability
//!
//! The engines are instrumented at their existing decision points — and
//! only there. Attach a [`pp_telemetry::Metrics`] registry (the builders'
//! `.metrics(&m)`, the ambient per-thread registry the sweep runner
//! installs per trial, or just run with `PP_TRACE=run.jsonl` set) and the
//! run records, per counter and decision point:
//!
//! * `batches` / `batch_len` — each completed batch in
//!   [`batch::BatchedCountSim`]'s advance, with its executed length;
//! * `null_skip_runs` / `null_skipped` / `null_skip_len` — each
//!   Gillespie null-skip step and the span it skipped;
//! * `mode_switches` (`switches_to_batched` / `switches_to_sequential`)
//!   plus the `adapt_support` / `adapt_mean_batch` histograms — the
//!   Auto-mode re-selection checkpoint in [`batch::ConfigSim`];
//! * `gc_passes` / `gc_evicted` / `gc_table_len` / `gc_live` — each
//!   interner-GC pass at those same checkpoints;
//! * `dense_lane_episodes` / `dense_lane_interactions` / `dense_lane_n`
//!   — each per-agent lane episode ([`interned::Interned`]);
//! * `pair_cache_hits` / `pair_cache_misses` / `pair_cache_gen_drops` —
//!   the adapter's pair-outcome cache probe in every transition;
//! * `slot_lookups` / `slot_probes` / `slot_rebuilds` — every
//!   open-addressed [`slot_index::SlotIndex`] lookup (interner and
//!   engine-side), its probe walk, and each growth/compaction rebuild;
//! * `snapshot_writes` / `snapshot_bytes` / `snapshot_nanos` /
//!   `snapshot_write_bytes` — each crash-recovery checkpoint the run
//!   driver writes.
//!
//! Every hook is observation-only: no counter feeds back into a branch
//! and none touches the RNG, so a run with telemetry on is byte-for-byte
//! identical to the same run with it off —
//! `tests/telemetry_neutrality.rs` holds all four engines to that, GC,
//! dense lane, and snapshot/resume included. `PP_METRICS=off` is the kill
//! switch; `PP_TRACE=path.jsonl` additionally appends a CRC-checked JSONL
//! event trace (mode switches, GC passes, lane episodes, checkpoints, and
//! a final counters line) that `pp-report` renders into a summary table.
//!
//! ## Deprecation path
//!
//! Before the builder, this workspace exposed ~20 bespoke free functions
//! (`run_terminating_counted`, `estimate_log_size_counted`, …), each
//! hard-coding its engine, init, stop rule, and observation. The surviving
//! ones in `pp-core`/`pp-baselines` are now thin builder invocations kept
//! as conveniences; functions superseded outright — most recently the
//! engine-hook variants `epidemic_*_time_with`, whose job
//! `.mode(ctx.engine)` does — go through one release as `#[deprecated]`
//! and are then removed. Trial fan-out (`run_trials_threaded`) moved to the sweep
//! orchestration layer: use `pp_sweep::trials` or, better, a
//! `pp_sweep::SweepSpec` over the experiment registry.
//!
//! ## Model fidelity
//!
//! * The ordered receiver/sender pair matches the paper's
//!   `Log-Size-Estimation(rec, sen)` convention; Appendix B's synthetic-coin
//!   protocol relies on the symmetry of the order choice as a fair coin.
//! * Protocols in the paper's main model have access to uniformly random bits
//!   (a randomized transition relation); the engine passes a per-simulation
//!   RNG into every transition. Deterministic protocols simply ignore it.
//! * Uniformity — the requirement that the transition algorithm not depend on
//!   `n` — is enforced structurally: [`protocol::Protocol::interact`] receives
//!   only the two agent states and the RNG, never the population size.
//! * All simulators draw interactions from the same [`scheduler`]
//!   abstraction and are deterministic given a `u64` seed; checkpoints
//!   never consume engine randomness, so observers and predicates cannot
//!   perturb a trajectory. [`rng`] additionally provides the exact bulk
//!   samplers (binomial, hypergeometric, multivariate splits) the batched
//!   engine is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod count_sim;
pub mod env;
pub mod epidemic;
pub mod interned;
pub mod parallel;
pub mod protocol;
pub mod record;
pub mod rng;
pub mod scheduler;
pub mod sim;
pub mod simulation;
pub mod slot_index;
pub mod snapshot;

pub use batch::{BatchedCountSim, ConfigSim, DeterministicCountProtocol, EngineMode};
pub use count_sim::{CountConfiguration, CountProtocol, CountSeededInit, CountSim, Outcomes};
pub use interned::{Interned, InternerHandle};
pub use protocol::{Protocol, SeededInit};
pub use record::{Trace, TracePoint};
pub use rng::{derive_seed, SimRng};
pub use scheduler::{OrderedPair, PairScheduler};
pub use sim::{AgentSim, RunOutcome};
pub use simulation::{count_of, Engine, EngineKind, Observer, SimMode, Simulation};
pub use snapshot::{crc32, Snapshot, SnapshotError, SnapshotState};

// Telemetry vocabulary, re-exported so engine users need no direct
// `pp-telemetry` dependency to attach a registry or read counters.
pub use pp_telemetry::{Counter, Hist, Metrics, MetricsSnapshot, TraceValue};
