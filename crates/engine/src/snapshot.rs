//! Versioned, checksummed engine snapshots — the crash-recovery substrate.
//!
//! A **snapshot** is the full mutable state of one simulator, serialized
//! so a later process can resume the run *byte-for-byte identically* to an
//! uninterrupted one (the same trajectory-neutrality bar the interner GC
//! meets): same RNG stream position, same interaction clock, same internal
//! slot layout — the restored engine draws the same random pairs and
//! realizes the same trajectory as if the process had never died.
//!
//! ## Format guarantees (`SnapshotV1`)
//!
//! * **Versioning.** Every file starts with the magic `PPSNAP1\0` and a
//!   little-endian `u32` format version (currently 1). Unknown magic or
//!   version is a structured [`SnapshotError`], never a misparse.
//! * **Checksum.** The header carries a CRC-32 (IEEE) over the engine tag,
//!   the body length, and the body bytes. A flipped bit anywhere in the
//!   payload is detected at [`Snapshot::read`] time and reported as
//!   [`SnapshotError::Corrupt`], not silently decoded.
//! * **Atomicity.** [`Snapshot::write_atomic`] writes to a sibling
//!   temporary file, `fsync`s it, and atomically renames it over the
//!   destination. A crash mid-write leaves either the previous complete
//!   snapshot or the new complete snapshot — never a torn file.
//!
//! All multi-byte integers are little-endian. The body layout is private
//! to the engine crate (it mirrors each simulator's internal slot order,
//! which is exactly what byte-identical resumption requires); state types
//! participate through the public [`SnapshotState`] codec trait, which
//! this module implements for the primitive and tuple states the
//! repository's protocols use.
//!
//! Snapshots are produced at the `Simulation` run driver's observer
//! checkpoints (see [`crate::simulation`]) — checkpointing never consumes
//! engine randomness — and consumed by the builders' `resume` methods.

use std::io::Write;
use std::path::Path;

use crate::batch::{BatchedCountSim, ConfigSim};
use crate::count_sim::{CountConfiguration, CountProtocol, CountSim};
use crate::interned::{Interned, InternerHandle};
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::sim::AgentSim;

/// File magic: "PPSNAP1\0".
const MAGIC: [u8; 8] = *b"PPSNAP1\0";

/// Current snapshot format version.
const VERSION: u32 = 1;

/// Engine tag: [`AgentSim`].
pub(crate) const KIND_AGENT: u8 = 1;
/// Engine tag: [`CountSim`] (inside a [`ConfigSim`] body).
pub(crate) const KIND_SEQ: u8 = 2;
/// Engine tag: [`BatchedCountSim`] (inside a [`ConfigSim`] body).
pub(crate) const KIND_BATCHED: u8 = 3;
/// Engine tag: [`ConfigSim`] over a native count protocol.
pub(crate) const KIND_CONFIG: u8 = 4;
/// Engine tag: [`ConfigSim`] over an [`Interned`] agent-level protocol.
pub(crate) const KIND_INTERNED: u8 = 5;

/// CRC-32 (IEEE) of `bytes` — the checksum guarding snapshot bodies, the
/// sweep journal's JSONL lines, and telemetry event traces. One
/// implementation for the whole workspace, owned by `pp-telemetry`.
pub use pp_telemetry::crc32;

/// Why a snapshot could not be produced, written, read, or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot: bad magic, unknown version,
    /// checksum mismatch, truncation, or an engine/protocol mismatch on
    /// restore. The message says which, precisely.
    Corrupt(String),
    /// The engine was built without checkpoint support (see the
    /// `Simulation` builders' `checkpoint_to`).
    Unsupported,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            Self::Unsupported => write!(
                f,
                "this engine was built without checkpoint support \
                 (configure .checkpoint_to(path) on the builder)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// A serialized engine state: the engine tag plus the opaque body bytes.
///
/// Produced by [`crate::simulation::Engine::snapshot`] on
/// checkpoint-enabled engines; persisted with [`Snapshot::write_atomic`];
/// loaded with [`Snapshot::read`]; turned back into a live engine by the
/// `Simulation` builders' `resume` methods.
pub struct Snapshot {
    pub(crate) kind: u8,
    pub(crate) body: Vec<u8>,
}

impl Snapshot {
    /// Serializes to the `SnapshotV1` on-disk layout:
    /// `magic | version | kind | body_len | crc32(kind‖body_len‖body) | body`.
    fn to_bytes(&self) -> Vec<u8> {
        let mut checked = Vec::with_capacity(9 + self.body.len());
        checked.push(self.kind);
        checked.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        checked.extend_from_slice(&self.body);
        let crc = crc32(&checked);
        let mut out = Vec::with_capacity(16 + checked.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&checked);
        out
    }

    /// Serialized size in bytes (the [`Snapshot::to_bytes`] layout:
    /// 16-byte header + kind + body length + body) — the number telemetry
    /// reports per checkpoint write without serializing twice.
    pub(crate) fn byte_len(&self) -> u64 {
        (16 + 9 + self.body.len()) as u64
    }

    /// Parses and validates the `SnapshotV1` layout (magic, version,
    /// length, checksum).
    fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 16 + 9 {
            return Err(corrupt(format!(
                "file is {} bytes, shorter than the fixed header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a PPSNAP1 snapshot file)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(corrupt(format!(
                "unknown snapshot version {version} (this build reads version {VERSION})"
            )));
        }
        let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let checked = &bytes[16..];
        let actual = crc32(checked);
        if actual != crc {
            return Err(corrupt(format!(
                "checksum mismatch (header says {crc:08x}, body hashes to {actual:08x})"
            )));
        }
        let kind = checked[0];
        let body_len = u64::from_le_bytes(checked[1..9].try_into().expect("8 bytes"));
        let body = &checked[9..];
        if body.len() as u64 != body_len {
            return Err(corrupt(format!(
                "length mismatch (header says {body_len} body bytes, file holds {})",
                body.len()
            )));
        }
        Ok(Self {
            kind,
            body: body.to_vec(),
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a sibling
    /// `.tmp` file which is flushed, `fsync`ed, and renamed over `path`.
    /// Concurrent readers (and crashes at any instant) observe either the
    /// previous complete snapshot or this one, never a torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let file_name = path
            .file_name()
            .ok_or_else(|| corrupt(format!("snapshot path {path:?} has no file name")))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable where directories can be synced
        // (POSIX); best-effort elsewhere.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a snapshot file (magic, version, checksum).
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("kind", &self.kind)
            .field("body_len", &self.body.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The state codec.

/// Byte codec for protocol state types, enabling engine checkpoints.
///
/// Implemented here for the primitive and tuple states this repository's
/// protocols use; implement it for your own state type to make simulations
/// over it checkpointable (encode and decode must round-trip exactly —
/// the decoded state must compare equal and hash identically).
pub trait SnapshotState: Sized {
    /// Appends this state's byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one state from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError>;
}

fn take<'a>(buf: &mut &'a [u8], len: usize) -> Result<&'a [u8], SnapshotError> {
    if buf.len() < len {
        return Err(corrupt(format!(
            "truncated body: wanted {len} more bytes, {} left",
            buf.len()
        )));
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Ok(head)
}

macro_rules! int_snapshot_state {
    ($($t:ty),*) => {$(
        impl SnapshotState for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_snapshot_state!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl SnapshotState for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        match take(buf, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b:#04x}"))),
        }
    }
}

impl SnapshotState for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| corrupt(format!("usize value {v} overflows this platform")))
    }
}

impl SnapshotState for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok(f64::from_bits(u64::decode(buf)?))
    }
}

impl<A: SnapshotState, B: SnapshotState> SnapshotState for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: SnapshotState, B: SnapshotState, C: SnapshotState> SnapshotState for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<T: SnapshotState> SnapshotState for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, SnapshotError> {
        match take(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            b => Err(corrupt(format!("invalid Option tag {b:#04x}"))),
        }
    }
}

fn encode_seq<S: SnapshotState>(items: &[S], out: &mut Vec<u8>) {
    (items.len() as u64).encode(out);
    for item in items {
        item.encode(out);
    }
}

fn decode_seq<S: SnapshotState>(buf: &mut &[u8]) -> Result<Vec<S>, SnapshotError> {
    let len = u64::decode(buf)?;
    let len = usize::try_from(len).map_err(|_| corrupt(format!("sequence length {len}")))?;
    // Bound preallocation by what the buffer could possibly hold (each
    // item is at least one byte), so a corrupt length can't OOM us.
    let mut items = Vec::with_capacity(len.min(buf.len()));
    for _ in 0..len {
        items.push(S::decode(buf)?);
    }
    Ok(items)
}

fn encode_rng(rng: &SimRng, out: &mut Vec<u8>) {
    for word in rng.state() {
        word.encode(out);
    }
}

fn decode_rng(buf: &mut &[u8]) -> Result<SimRng, SnapshotError> {
    let s = [
        u64::decode(buf)?,
        u64::decode(buf)?,
        u64::decode(buf)?,
        u64::decode(buf)?,
    ];
    if s.iter().all(|&w| w == 0) {
        return Err(corrupt("all-zero RNG state"));
    }
    Ok(SimRng::from_state(s))
}

fn expect_empty(buf: &[u8]) -> Result<(), SnapshotError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(corrupt(format!("{} trailing bytes after body", buf.len())))
    }
}

// ---------------------------------------------------------------------------
// Engine bodies. Each simulator's body captures its *internal* slot
// layout, not the canonical decoded view: byte-identical resumption
// requires the restored engine to walk its tables in exactly the order
// the snapshotted one would have.

/// [`CountConfiguration`] body: slot-ordered `(state, count)` pairs plus
/// the free list (its LIFO order matters — slot recycling pops it).
fn encode_count_config<S: SnapshotState + Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    config: &CountConfiguration<S>,
    out: &mut Vec<u8>,
) {
    let (states, counts, free) = config.snapshot_parts();
    encode_seq(states, out);
    encode_seq(counts, out);
    encode_seq(free, out);
}

fn decode_count_config<S: SnapshotState + Copy + Ord + std::hash::Hash + std::fmt::Debug>(
    buf: &mut &[u8],
) -> Result<CountConfiguration<S>, SnapshotError> {
    let states: Vec<S> = decode_seq(buf)?;
    let counts: Vec<u64> = decode_seq(buf)?;
    let free: Vec<usize> = decode_seq(buf)?;
    if states.len() != counts.len() {
        return Err(corrupt(format!(
            "slot tables disagree: {} states, {} counts",
            states.len(),
            counts.len()
        )));
    }
    if let Some(&slot) = free.iter().find(|&&s| s >= states.len()) {
        return Err(corrupt(format!(
            "free-list slot {slot} out of range for {} slots",
            states.len()
        )));
    }
    Ok(CountConfiguration::from_snapshot_parts(
        states, counts, free,
    ))
}

/// [`AgentSim`] body: interaction clock, RNG stream, per-agent states.
pub(crate) fn encode_agent<P: Protocol>(sim: &AgentSim<P>) -> Snapshot
where
    P::State: SnapshotState,
{
    let mut body = Vec::new();
    sim.interactions().encode(&mut body);
    encode_rng(sim.rng(), &mut body);
    encode_seq(sim.states(), &mut body);
    Snapshot {
        kind: KIND_AGENT,
        body,
    }
}

pub(crate) fn decode_agent<P: Protocol>(
    protocol: P,
    mut body: &[u8],
) -> Result<AgentSim<P>, SnapshotError>
where
    P::State: SnapshotState,
{
    let buf = &mut body;
    let interactions = u64::decode(buf)?;
    let rng = decode_rng(buf)?;
    let states: Vec<P::State> = decode_seq(buf)?;
    expect_empty(buf)?;
    if states.len() < 2 {
        return Err(corrupt(format!("population of {} agents", states.len())));
    }
    Ok(AgentSim::from_snapshot_parts(
        protocol,
        states,
        rng,
        interactions,
    ))
}

/// [`ConfigSim`] body: facade flags and counters, then the active inner
/// engine's body ([`KIND_SEQ`] or [`KIND_BATCHED`]).
pub(crate) fn encode_config_sim<P: CountProtocol>(sim: &ConfigSim<P>) -> Snapshot
where
    P::State: SnapshotState,
{
    let mut body = Vec::new();
    encode_config_sim_body(sim, &mut body);
    Snapshot {
        kind: KIND_CONFIG,
        body,
    }
}

fn encode_config_sim_body<P: CountProtocol>(sim: &ConfigSim<P>, out: &mut Vec<u8>)
where
    P::State: SnapshotState,
{
    let (adaptive, gc, switches, collections) = sim.snapshot_flags();
    let batched = sim.is_batched();
    let flags = u8::from(batched) | (u8::from(adaptive) << 1) | (u8::from(gc) << 2);
    flags.encode(out);
    switches.encode(out);
    collections.encode(out);
    if let Some(b) = sim.inner_batched() {
        KIND_BATCHED.encode(out);
        b.interactions().encode(out);
        let (states, counts, rng, table_rng) = b.snapshot_parts();
        encode_rng(rng, out);
        encode_rng(table_rng, out);
        encode_seq(states, out);
        encode_seq(&counts, out);
    } else {
        let s = sim.inner_sequential().expect("engine is sequential");
        KIND_SEQ.encode(out);
        s.interactions().encode(out);
        encode_rng(s.rng(), out);
        encode_count_config(s.config(), out);
    }
}

pub(crate) fn decode_config_sim<P: CountProtocol>(
    protocol: P,
    mut body: &[u8],
) -> Result<ConfigSim<P>, SnapshotError>
where
    P::State: SnapshotState,
{
    let buf = &mut body;
    let sim = decode_config_sim_body(protocol, buf)?;
    expect_empty(buf)?;
    Ok(sim)
}

fn decode_config_sim_body<P: CountProtocol>(
    protocol: P,
    buf: &mut &[u8],
) -> Result<ConfigSim<P>, SnapshotError>
where
    P::State: SnapshotState,
{
    let flags = u8::decode(buf)?;
    let batched = flags & 1 != 0;
    let adaptive = flags & 2 != 0;
    let gc = flags & 4 != 0;
    let switches = u32::decode(buf)?;
    let collections = u32::decode(buf)?;
    let inner_kind = u8::decode(buf)?;
    match (batched, inner_kind) {
        (true, KIND_BATCHED) => {
            let interactions = u64::decode(buf)?;
            let rng = decode_rng(buf)?;
            let table_rng = decode_rng(buf)?;
            let states: Vec<P::State> = decode_seq(buf)?;
            let counts: Vec<u64> = decode_seq(buf)?;
            if states.len() != counts.len() {
                return Err(corrupt(format!(
                    "slot tables disagree: {} states, {} counts",
                    states.len(),
                    counts.len()
                )));
            }
            let inner = BatchedCountSim::from_snapshot_parts(
                protocol,
                states,
                counts,
                rng,
                table_rng,
                interactions,
            );
            Ok(ConfigSim::from_restored_batched(
                inner,
                adaptive,
                gc,
                switches,
                collections,
            ))
        }
        (false, KIND_SEQ) => {
            let interactions = u64::decode(buf)?;
            let rng = decode_rng(buf)?;
            let config = decode_count_config(buf)?;
            if config.population_size() < 2 {
                return Err(corrupt(format!(
                    "population of {} agents",
                    config.population_size()
                )));
            }
            let inner = CountSim::from_parts(protocol, config, rng, interactions);
            Ok(ConfigSim::from_restored_sequential(
                inner,
                adaptive,
                gc,
                switches,
                collections,
            ))
        }
        (_, k) => Err(corrupt(format!(
            "inner engine tag {k} contradicts facade flags ({})",
            if batched { "batched" } else { "sequential" }
        ))),
    }
}

/// Interned-engine body: the interner table (id order), its counters, the
/// deterministic certification flag, then the slot-id [`ConfigSim`] body.
pub(crate) fn encode_interned<P: Protocol>(sim: &ConfigSim<Interned<P>>) -> Snapshot
where
    P::State: Eq + std::hash::Hash + Clone + SnapshotState,
{
    let mut body = Vec::new();
    let (states, generation, total_interned, deterministic) = sim.protocol().snapshot_parts();
    deterministic.encode(&mut body);
    generation.encode(&mut body);
    total_interned.encode(&mut body);
    encode_seq(&states, &mut body);
    encode_config_sim_body(sim, &mut body);
    Snapshot {
        kind: KIND_INTERNED,
        body,
    }
}

/// What [`decode_interned`] restores: the slot-id simulation plus the
/// interner handle that decodes slot ids back to record states.
pub(crate) type RestoredInterned<P> = (
    ConfigSim<Interned<P>>,
    InternerHandle<<P as Protocol>::State>,
);

pub(crate) fn decode_interned<P: Protocol>(
    protocol: P,
    mut body: &[u8],
) -> Result<RestoredInterned<P>, SnapshotError>
where
    P::State: Eq + std::hash::Hash + Clone + SnapshotState,
{
    let buf = &mut body;
    let deterministic = bool::decode(buf)?;
    let generation = u64::decode(buf)?;
    let total_interned = u64::decode(buf)?;
    let states: Vec<P::State> = decode_seq(buf)?;
    let interned =
        Interned::from_snapshot_parts(protocol, states, generation, total_interned, deterministic);
    let handle = interned.handle();
    let sim = decode_config_sim_body(interned, buf)?;
    expect_empty(buf)?;
    Ok((sim, handle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let snap = Snapshot {
            kind: KIND_AGENT,
            body: vec![1, 2, 3, 4, 5],
        };
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.kind, KIND_AGENT);
        assert_eq!(back.body, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let snap = Snapshot {
            kind: KIND_CONFIG,
            body: (0..32).collect(),
        };
        let bytes = snap.to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&corrupted).is_err(),
                    "flipping byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let snap = Snapshot {
            kind: KIND_CONFIG,
            body: vec![9; 64],
        };
        let bytes = snap.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn state_codec_round_trips() {
        fn rt<S: SnapshotState + PartialEq + std::fmt::Debug>(v: S) {
            let mut out = Vec::new();
            v.encode(&mut out);
            let mut buf = out.as_slice();
            assert_eq!(S::decode(&mut buf).expect("decode"), v);
            assert!(buf.is_empty());
        }
        rt(0xdead_beefu32);
        rt(u64::MAX);
        rt(-7i64);
        rt(true);
        rt(3.25f64);
        rt((1u32, 2u32));
        rt((1u8, 2u64, false));
        rt(Some(42u64));
        rt(None::<u64>);
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("pp_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("engine.snap");
        let snap = Snapshot {
            kind: KIND_INTERNED,
            body: vec![7; 100],
        };
        snap.write_atomic(&path).expect("write");
        let back = Snapshot::read(&path).expect("read");
        assert_eq!(back.kind, KIND_INTERNED);
        assert_eq!(back.body, snap.body);
        std::fs::remove_dir_all(&dir).ok();
    }
}
