//! Trajectory recording: sampled snapshots of a running simulation.
//!
//! Experiment harnesses need time series ("count of state s at time t",
//! "max field value seen so far") rather than just final outcomes. A
//! [`Trace`] collects user-defined summaries on a fixed parallel-time cadence.

/// One sampled point of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint<T> {
    /// Parallel time of the sample.
    pub time: f64,
    /// User-defined summary value at that time.
    pub value: T,
}

/// A recorded trajectory of summary values.
#[derive(Debug, Clone, Default)]
pub struct Trace<T> {
    points: Vec<TracePoint<T>>,
}

impl<T> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Appends a sample.
    pub fn push(&mut self, time: f64, value: T) {
        self.points.push(TracePoint { time, value });
    }

    /// All recorded points in time order.
    pub fn points(&self) -> &[TracePoint<T>] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded point, if any.
    pub fn last(&self) -> Option<&TracePoint<T>> {
        self.points.last()
    }

    /// First time at which `pred(value)` holds, scanning in time order.
    pub fn first_time(&self, mut pred: impl FnMut(&T) -> bool) -> Option<f64> {
        self.points.iter().find(|p| pred(&p.value)).map(|p| p.time)
    }

    /// Maps the values of the trace, keeping times.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Trace<U> {
        Trace {
            points: self
                .points
                .iter()
                .map(|p| TracePoint {
                    time: p.time,
                    value: f(&p.value),
                })
                .collect(),
        }
    }
}

/// Records a trace of `summary(states)` from an [`crate::sim::AgentSim`],
/// sampling every `cadence` units of parallel time up to `max_time`.
pub fn record_agent_trace<P, T>(
    sim: &mut crate::sim::AgentSim<P>,
    cadence: f64,
    max_time: f64,
    mut summary: impl FnMut(&[P::State]) -> T,
) -> Trace<T>
where
    P: crate::protocol::Protocol,
{
    assert!(cadence > 0.0, "cadence must be positive");
    let mut trace = Trace::new();
    trace.push(sim.time(), summary(sim.states()));
    let mut next = sim.time() + cadence;
    while next <= max_time {
        sim.run_for_time(cadence);
        trace.push(sim.time(), summary(sim.states()));
        next += cadence;
    }
    trace
}

/// Records a trace of `summary(config)` from a [`crate::count_sim::CountSim`],
/// sampling every `cadence` units of parallel time up to `max_time`.
pub fn record_count_trace<P, T>(
    sim: &mut crate::count_sim::CountSim<P>,
    cadence: f64,
    max_time: f64,
    mut summary: impl FnMut(&crate::count_sim::CountConfiguration<P::State>) -> T,
) -> Trace<T>
where
    P: crate::count_sim::CountProtocol,
{
    assert!(cadence > 0.0, "cadence must be positive");
    let mut trace = Trace::new();
    trace.push(sim.time(), summary(sim.config()));
    let mut next = sim.time() + cadence;
    while next <= max_time {
        sim.run_for_time(cadence);
        trace.push(sim.time(), summary(sim.config()));
        next += cadence;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_sim::{CountConfiguration, CountSim};
    use crate::epidemic::InfectionEpidemic;
    use crate::epidemic::MaxEpidemic;
    use crate::sim::AgentSim;

    #[test]
    fn trace_basics() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(0.0, 1);
        t.push(1.0, 5);
        t.push(2.0, 9);
        assert_eq!(t.len(), 3);
        assert_eq!(t.last().unwrap().value, 9);
        assert_eq!(t.first_time(|&v| v >= 5), Some(1.0));
        assert_eq!(t.first_time(|&v| v >= 100), None);
        let doubled = t.map(|v| v * 2);
        assert_eq!(doubled.points()[2].value, 18);
    }

    #[test]
    fn count_trace_monotone_infection() {
        let config = CountConfiguration::from_pairs([(false, 499), (true, 1)]);
        let mut sim = CountSim::new(InfectionEpidemic, config, 3);
        let trace = record_count_trace(&mut sim, 1.0, 30.0, |c| c.count(&true));
        assert!(trace.len() >= 30);
        // Infection counts never decrease.
        let mut prev = 0;
        for p in trace.points() {
            assert!(p.value >= prev, "infection count decreased");
            prev = p.value;
        }
        assert_eq!(trace.last().unwrap().value, 500);
    }

    #[test]
    fn agent_trace_records_convergence_point() {
        let mut sim = AgentSim::new(MaxEpidemic, 100, 4);
        sim.set_state(0, 42);
        let trace = record_agent_trace(&mut sim, 0.5, 40.0, |s| {
            s.iter().filter(|&&v| v == 42).count()
        });
        let t = trace.first_time(|&c| c == 100).expect("should converge");
        assert!(t > 0.0 && t < 40.0);
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn zero_cadence_rejected() {
        let mut sim = AgentSim::new(MaxEpidemic, 10, 0);
        record_agent_trace(&mut sim, 0.0, 1.0, |_| 0);
    }
}
