//! Batched configuration-vector simulation: `o(1)` amortized work per
//! interaction for deterministic protocols on large populations.
//!
//! This is the batching algorithm of Berenbrink, Hammer, Kaaser, Meyer,
//! Penschuck & Tran (ESA 2020) — the engine inside Doty & Severson's `ppsim`
//! tool — specialized to this crate's ordered receiver/sender scheduler.
//! The key observation: as long as the uniformly drawn interaction pairs
//! involve only agents not yet touched in the current batch, the interactions
//! are exchangeable, so their *aggregate effect* can be sampled directly in
//! terms of state counts without materializing individual pairs:
//!
//! 1. **Collision length.** The number `T` of consecutive interactions whose
//!    agents are all distinct follows the birthday-collision distribution
//!    `P(T ≥ t) = n! / ((n-2t)!·nᵗ·(n-1)ᵗ)`. `T` depends only on `n`, so its
//!    survival function is precomputed once and inverted with a binary
//!    search per batch. `E[T] = Θ(√n)`.
//! 2. **Batch fill.** The `2T` distinct agents form a uniform
//!    without-replacement draw from the population. Receiver states, sender
//!    states, and the receiver↔sender pairing contingency table are realized
//!    as iterated conditional hypergeometric draws
//!    ([`crate::rng::hypergeometric`]), exactly — never approximately, so
//!    counts can never go negative or oversample a state.
//! 3. **Bulk application.** Transitions are applied as count deltas through
//!    a lazily built dense `k×k` table of per-pair *outcome laws* over the
//!    discovered state space — `O(k²)` per batch, independent of `T`. A
//!    pair's law is one of three kinds (see `PairLaw`):
//!    * **deterministic** — the classic case: one count delta per pair;
//!    * **random with finite support** — the protocol enumerated the
//!      outcome distribution via [`CountProtocol::outcomes`]; the pair's
//!      whole batch count is split over the outcomes with one exact
//!      multinomial draw ([`crate::rng::multinomial_conditional`]) — the
//!      ppsim treatment of randomized transitions;
//!    * **sampled** — unbounded or unenumerated support; only these pairs
//!      fall back to one [`CountProtocol::transition`] call per
//!      interaction, still exact and still cheaper than sequential
//!      simulation (no pair draw, no per-interaction bookkeeping).
//! 4. **Collision interaction.** The first colliding interaction is
//!    simulated individually: conditioned on colliding at position `T+1`,
//!    the repeated agent is uniform over the batch's touched (already
//!    updated) agents and its partner uniform over the appropriate
//!    complement. The batch then merges and the process restarts — valid
//!    because the underlying interaction sequence is memoryless.
//!
//! Per batch the simulator does `O(k² + √n·σ⁻¹)`-ish sampling work for
//! `Θ(√n)` interactions, so amortized per-interaction cost *decreases* with
//! population size — the `table_epidemic` sweep at `n = 10⁷` runs hundreds
//! of times faster than the sequential [`CountSim`].
//!
//! 5. **Null-interaction skipping.** When the probability `p` that a uniform
//!    ordered pair is *productive* (its transition changes a state) is so
//!    small that a whole batch would contain fewer than a handful of
//!    productive interactions, batching stops paying. The simulator then
//!    switches to a Gillespie-style mode: the distance to the next
//!    productive interaction is geometric with parameter `p`, so it samples
//!    that run length in O(1), advances the interaction clock past the
//!    skipped null interactions (which by definition do not change the
//!    configuration), and applies the single productive interaction drawn
//!    from the productive-pair distribution. Both phases of an epidemic tail
//!    (`p = Θ(1/n)`) cost O(1) per *infection* instead of O(√n) per batch of
//!    mostly-null interactions. The mode choice is re-evaluated before every
//!    batch from the current configuration, so runs glide between modes as
//!    density evolves.
//!
//! The engine is exact for *every* [`CountProtocol`], randomized or not.
//! Whether it is the *fast* choice depends on the occupied state count `k`
//! (per-batch work grows with `k²`): protocols signal their preference via
//! [`CountProtocol::prefers_batching`], which the [`ConfigSim`] facade
//! consults together with the population size. Small populations, where
//! batches are short and constants dominate, fall back to the sequential
//! simulator.
//!
//! ## Observability
//!
//! Attach a [`pp_telemetry::Metrics`] registry
//! ([`BatchedCountSim::set_metrics`] / [`ConfigSim::set_metrics`], or let
//! the `Simulation` builders thread one through) and the engines record at
//! their existing decision points — never creating new ones:
//!
//! * `batches` + the `batch_len` histogram — every completed batch in
//!   [`BatchedCountSim::run_batch`], with its executed length (truncation
//!   and the collision interaction included).
//! * `null_skip_runs` / `null_skipped` + the `null_skip_len` histogram —
//!   every Gillespie null-skip step (and the silent-configuration fast
//!   path), with the span of certainly-null interactions it skipped.
//! * `mode_switches` / `switches_to_batched` / `switches_to_sequential`,
//!   plus `adapt_support` / `adapt_mean_batch` histograms — the Auto-mode
//!   re-selection checkpoint: each decision logs the occupied support and
//!   the `E[T]` it was weighed against; each actual switch bumps the
//!   direction counter and emits a `mode_switch` trace event.
//! * `gc_passes` / `gc_evicted` + `gc_table_len` / `gc_live` histograms —
//!   each interner-GC pass, with the pre-pass table size and the live
//!   survivor count (`gc_pass` trace event).
//! * `dense_lane_episodes` / `dense_lane_interactions` + the
//!   `dense_lane_n` histogram — each per-agent lane episode taken by a
//!   sequential advance (`dense_lane` trace event).
//! * `pair_cache_*` / `slot_*` — the wrapped adapter's cumulative
//!   tallies, flushed as deltas at the same checkpoints.
//!
//! Every hook is observation-only: no counter is read back into a branch
//! and no hook touches the RNG, so a run with telemetry attached is
//! byte-for-byte identical to the same run without it
//! (`tests/telemetry_neutrality.rs` enforces this across all engines).

use std::collections::BTreeMap;

use pp_telemetry::{Counter, Hist, Metrics, TraceValue};
use rand::Rng;

use crate::count_sim::{
    AdapterStats, CountConfiguration, CountProtocol, CountSeededInit, CountSim, Outcomes,
};
use crate::parallel::{self, par_map_indexed, partition_by_mass, PAR_SUBRANGES};
use crate::rng::{
    derive_seed, geometric, hypergeometric, multinomial_conditional, rng_from_seed, SimRng,
};
use crate::scheduler::parallel_time;
use crate::sim::RunOutcome;
use crate::slot_index::{fnv_hash, SlotIndex, SlotIndexStats};

/// A [`CountProtocol`] whose transition function is a pure function of the
/// two input states. Implementing this trait (instead of `CountProtocol`
/// directly) is the opt-in for batched simulation: a blanket impl provides
/// `CountProtocol` with [`CountProtocol::is_deterministic`] returning
/// `true`, which lets [`ConfigSim::new`] select [`BatchedCountSim`] at large
/// population sizes.
pub trait DeterministicCountProtocol {
    /// Agent state; must be orderable so configurations have a canonical form.
    type State: Copy + Ord + std::hash::Hash + std::fmt::Debug;

    /// Computes the post-interaction states `(rec', sen')` deterministically.
    fn transition_det(&self, rec: Self::State, sen: Self::State) -> (Self::State, Self::State);

    /// See [`CountProtocol::prefers_batching`]. Deterministic protocols
    /// default to batching; ones whose *occupied* state space grows large
    /// (per-batch work is `O(k²)`) should override to `false` and stay on
    /// the sequential count engine.
    fn prefers_batching(&self) -> bool {
        true
    }
}

impl<P: DeterministicCountProtocol> CountProtocol for P {
    type State = P::State;

    fn transition(
        &self,
        rec: Self::State,
        sen: Self::State,
        _rng: &mut SimRng,
    ) -> (Self::State, Self::State) {
        self.transition_det(rec, sen)
    }

    fn outcomes(&self, rec: Self::State, sen: Self::State) -> Option<Outcomes<Self::State>> {
        let (c, d) = self.transition_det(rec, sen);
        Some(Outcomes::Deterministic(c, d))
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn prefers_batching(&self) -> bool {
        DeterministicCountProtocol::prefers_batching(self)
    }
}

/// Truncate the precomputed collision-survival table once `P(T ≥ t)` drops
/// below this; deeper tail values are extended on the fly (practically
/// never: one draw in ~10¹⁸).
const SURVIVAL_CUTOFF: f64 = 1e-18;

/// Sentinel marking a law-table entry not yet computed.
const UNCOMPUTED: u32 = u32::MAX;

/// Index of the shared [`PairLaw::Sampled`] law (always `laws[0]`).
const LAW_SAMPLED: u32 = 0;

/// The analyzed outcome law of one ordered state-id pair, as the batched
/// engine applies it.
#[derive(Debug, Clone)]
enum PairLaw {
    /// The transition always produces these output ids: a whole batch count
    /// is applied as one delta.
    Det(u32, u32),
    /// Finite outcome support ([`Outcomes::Random`]): a batch count is split
    /// over the outcomes with one exact multinomial draw. `silent` caches
    /// whether every outcome maps the pair to itself (such pairs are
    /// certainly-null and participate in null skipping).
    Random {
        /// Output id pairs with positive probability.
        outs: Vec<(u32, u32)>,
        /// Renormalized outcome probabilities (same order as `outs`).
        probs: Vec<f64>,
        /// All outcomes equal the input pair.
        silent: bool,
    },
    /// Unbounded or unenumerated outcome support: each interaction of this
    /// pair samples [`CountProtocol::transition`] individually.
    Sampled,
}

/// Switch to the null-skipping (Gillespie) mode when the expected number of
/// productive interactions per batch drops below this. The value is the
/// measured cost ratio between filling one batch (a few hypergeometric
/// draws) and executing one skip step (a geometric draw plus a weighted
/// pair pick); at the crossover both modes spend the same wall time per
/// productive interaction.
const NULL_SKIP_FACTOR: f64 = 6.0;

/// Minimum `reactive_rows × batch_length` for a parallel-enabled batch to
/// actually fan out — the support×batch-length threshold below which the
/// per-batch scoped-thread overhead exceeds the fill work and the engine
/// falls back to the serial *execution* of the same parallel draw
/// discipline (same subranges, same per-subrange streams, same bytes —
/// only the thread spawns are skipped). This is how the adaptive facade
/// accounts for fan-out overhead: the gate is a pure function of the
/// batch's configuration, never of the thread count, so the trajectory
/// stays byte-identical at any `PP_THREADS ≥ 1`.
const PAR_FILL_MIN_WORK: u64 = 256;

/// Batched simulator over a configuration vector.
///
/// Realizes exactly the same stochastic process as [`CountSim`] (uniform
/// ordered pairs of distinct agents) for *any* protocol — deterministic
/// transitions and finite outcome distributions are bulk-applied; pairs
/// with unbounded outcome support are sampled per interaction inside the
/// batch. Construct directly, or let [`ConfigSim::new`] choose.
pub struct BatchedCountSim<P: CountProtocol> {
    protocol: P,
    rng: SimRng,
    /// RNG handed to `transition` while probing laws of protocols that
    /// report [`CountProtocol::is_deterministic`] without enumerating
    /// outcomes; such transitions never read it, and it is separate from
    /// `rng` so the simulation stream does not depend on law fill order.
    table_rng: SimRng,
    n: u64,
    interactions: u64,
    /// Discovered states, id-indexed.
    states: Vec<P::State>,
    /// Open-addressed state → id lookup (probes against `states`).
    index: SlotIndex,
    /// Current configuration counts, id-indexed.
    counts: Vec<u64>,
    /// Row stride (capacity) of `table`; grown geometrically so state
    /// discovery costs `O(cap)` amortized per new state, not `O(cap²)`.
    cap: usize,
    /// Dense law-index table: entry `[a·cap + b]` points into `laws`, or is
    /// [`UNCOMPUTED`].
    table: Vec<u32>,
    /// Analyzed pair laws; `laws[0]` is the shared [`PairLaw::Sampled`].
    laws: Vec<PairLaw>,
    /// `survival[t] = P(T ≥ t)`: precomputed birthday-collision survival.
    survival: Vec<f64>,
    /// Whether `survival` ends because batches cannot exceed `⌊n/2⌋`
    /// interactions (vs. the probability cutoff).
    boundary_reached: bool,
    /// `E[T]` (mean collision-free batch length), precomputed from
    /// `survival`; drives the batch-vs-null-skip mode decision.
    expected_batch_len: f64,
    // Scratch buffers reused across batches (taken/restored to appease the
    // borrow checker without per-batch allocation).
    recv: Vec<u64>,
    send: Vec<u64>,
    touched: Vec<u64>,
    row_reactive: Vec<bool>,
    col_reactive: Vec<bool>,
    /// Parallel-fill knob: `None` (default) runs the classic serial batch
    /// fill, byte-identical to every release before the knob existed;
    /// `Some(k)` switches eligible batches to the deterministic
    /// subrange-fill discipline with up to `k` worker threads. The
    /// trajectory depends only on `is_some()` — never on `k` — see
    /// [`BatchedCountSim::set_fill_threads`]. Derivable/ambient state
    /// (like the slot index): not serialized into snapshots; restore
    /// paths re-resolve it from the environment.
    fill_threads: Option<u64>,
    /// Observability: attached counter registry, if any. Recording is
    /// observation-only — no branch reads a counter back and no hook
    /// touches the RNG — so attached and detached runs are byte-identical.
    metrics: Option<Metrics>,
}

impl<P: CountProtocol> BatchedCountSim<P> {
    /// Creates a batched simulator from an initial configuration.
    ///
    /// Accepts any protocol: randomized transitions are bulk-applied when
    /// the protocol enumerates their outcome distributions
    /// ([`CountProtocol::outcomes`]) and sampled per interaction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than 2 agents.
    pub fn new(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        let n = config.population_size();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        assert!(
            n <= u32::MAX as u64,
            "pair-weight arithmetic requires n² to fit in u64"
        );
        let mut states = Vec::new();
        let mut index = SlotIndex::with_capacity(config.support_size());
        let mut counts = Vec::new();
        for (&s, &c) in config.iter() {
            let id = u32::try_from(states.len()).expect("more than u32::MAX states");
            states.push(s);
            counts.push(c);
            index.insert(fnv_hash(&s), id, |i| fnv_hash(&states[i as usize]));
        }
        let k = states.len();
        let cap = k.max(4);
        let (survival, boundary_reached) = collision_survival(n);
        let expected_batch_len = survival.iter().skip(1).sum();
        Self {
            protocol,
            rng: rng_from_seed(seed),
            table_rng: rng_from_seed(seed ^ 0x7461_626c_655f_726e), // "table_rn"
            n,
            interactions: 0,
            states,
            index,
            counts,
            cap,
            table: vec![UNCOMPUTED; cap * cap],
            laws: vec![PairLaw::Sampled],
            survival,
            boundary_reached,
            expected_batch_len,
            recv: vec![0; k],
            send: vec![0; k],
            touched: vec![0; k],
            row_reactive: Vec::new(),
            col_reactive: Vec::new(),
            fill_threads: None,
            metrics: None,
        }
    }

    /// Rebuilds a batched simulator mid-run from its constituent parts,
    /// carrying the RNG stream and interaction clock across an engine switch
    /// (see [`ConfigSim`]'s adaptive re-selection). The law table is rebuilt
    /// lazily from the protocol, exactly as in [`BatchedCountSim::new`].
    pub(crate) fn from_parts(
        protocol: P,
        config: CountConfiguration<P::State>,
        mut rng: SimRng,
        interactions: u64,
    ) -> Self {
        // The table RNG only probes transitions that never read it; derive
        // it from the carried stream so the whole run stays a deterministic
        // function of the original seed.
        let table_seed: u64 = rng.gen();
        let mut sim = Self::new(protocol, config, 0);
        sim.rng = rng;
        sim.table_rng = rng_from_seed(table_seed);
        sim.interactions = interactions;
        sim
    }

    /// Decomposes the simulator into `(protocol, configuration, rng,
    /// interactions)` so an engine switch can hand the run to [`CountSim`]
    /// without losing state.
    pub(crate) fn into_parts(self) -> (P, CountConfiguration<P::State>, SimRng, u64) {
        let config = self.config_view();
        (self.protocol, config, self.rng, self.interactions)
    }

    /// Rebuilds a batched simulator from checkpoint parts. Unlike
    /// [`BatchedCountSim::from_parts`] — which re-canonicalizes the slot
    /// order and draws a fresh table seed from the simulation stream —
    /// this restores the *internal* discovery-order slot layout and both
    /// RNG streams verbatim, consuming nothing: a restored simulator
    /// continues byte-for-byte identically to the snapshotted one. The
    /// law table is rebuilt lazily, which is trajectory-neutral because
    /// law probing only ever reads `table_rng`.
    pub(crate) fn from_snapshot_parts(
        protocol: P,
        states: Vec<P::State>,
        counts: Vec<u64>,
        rng: SimRng,
        table_rng: SimRng,
        interactions: u64,
    ) -> Self {
        assert_eq!(states.len(), counts.len(), "snapshot slot tables disagree");
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        let mut index = SlotIndex::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            let hash = fnv_hash(s);
            assert!(
                index.get(hash, |c| states[c as usize] == *s).is_none(),
                "snapshot has duplicate discovered state {s:?}"
            );
            index.insert(
                hash,
                u32::try_from(i).expect("more than u32::MAX states"),
                |c| fnv_hash(&states[c as usize]),
            );
        }
        let k = states.len();
        let cap = k.max(4);
        let (survival, boundary_reached) = collision_survival(n);
        let expected_batch_len = survival.iter().skip(1).sum();
        Self {
            protocol,
            rng,
            table_rng,
            n,
            interactions,
            states,
            index,
            counts,
            cap,
            table: vec![UNCOMPUTED; cap * cap],
            laws: vec![PairLaw::Sampled],
            survival,
            boundary_reached,
            expected_batch_len,
            recv: vec![0; k],
            send: vec![0; k],
            touched: vec![0; k],
            row_reactive: Vec::new(),
            col_reactive: Vec::new(),
            fill_threads: None,
            metrics: None,
        }
    }

    /// Checkpoint accessor: the internal discovery-order slot tables plus
    /// both RNG streams. The returned counts are padded to the state-table
    /// length (they can transiently lag it by construction), so the two
    /// vectors always pair up slot for slot.
    pub(crate) fn snapshot_parts(&self) -> (&[P::State], Vec<u64>, &SimRng, &SimRng) {
        let mut counts = self.counts.clone();
        counts.resize(self.states.len(), 0);
        (&self.states, counts, &self.rng, &self.table_rng)
    }

    /// Number of *occupied* states (non-zero counts) — the `k` that drives
    /// the `O(k²)` per-batch law-table work.
    pub(crate) fn occupied_support(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The protocol being simulated.
    pub(crate) fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Runs one interner-GC pass ([`CountProtocol::collect_table`]) rooted
    /// at the occupied states, dropping the dead discovered states from
    /// the engine's own tables in the same pass: the state list and counts
    /// are compacted to the occupied support (relative order preserved, so
    /// the nonzero-slot sequence every fill loop walks is unchanged), and
    /// the dense law table — whose entries point at evicted ids — is reset
    /// to lazy re-analysis at live-support capacity. Returns whether the
    /// protocol performed a collection. Consumes no randomness.
    pub(crate) fn collect_table(&mut self) -> bool {
        let roots: Vec<P::State> = self
            .states
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&s, _)| s)
            .collect();
        let Some(renames) = self.protocol.collect_table(&roots) else {
            return false;
        };
        let map: BTreeMap<P::State, P::State> = renames.into_iter().collect();
        let mut states = Vec::with_capacity(roots.len());
        let mut counts = Vec::with_capacity(roots.len());
        let mut index = SlotIndex::with_capacity(roots.len());
        for (&old, &c) in self.states.iter().zip(&self.counts) {
            if c == 0 {
                continue;
            }
            let new = *map
                .get(&old)
                .unwrap_or_else(|| panic!("GC renaming is missing occupied state {old:?}"));
            let id = u32::try_from(states.len()).expect("more than u32::MAX states");
            states.push(new);
            counts.push(c);
            index.insert(fnv_hash(&new), id, |i| fnv_hash(&states[i as usize]));
        }
        let k = states.len();
        self.states = states;
        self.counts = counts;
        self.index = index;
        self.cap = k.max(4);
        self.table = vec![UNCOMPUTED; self.cap * self.cap];
        self.laws = vec![PairLaw::Sampled];
        self.recv = vec![0; k];
        self.send = vec![0; k];
        self.touched = vec![0; k];
        self.row_reactive.clear();
        self.col_reactive.clear();
        true
    }

    /// Mean collision-free batch length `E[T] = Θ(√n)`.
    pub(crate) fn mean_batch_len(&self) -> f64 {
        self.expected_batch_len
    }

    /// Attaches a telemetry registry: every batch records its executed
    /// length (`batches` / `batch_len`) and every null-skip run its skipped
    /// span (`null_skip_runs` / `null_skipped` / `null_skip_len`).
    /// Recording never reads the RNG or influences a branch, so attached
    /// and detached runs stay byte-identical.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = Some(metrics);
    }

    /// Sets the parallel-fill thread count: `0` restores the classic
    /// serial batch fill (the default), `k ≥ 1` switches eligible batches
    /// to the deterministic subrange-fill discipline with up to `k`
    /// scoped worker threads (further clamped by
    /// [`crate::parallel::set_fill_thread_cap`] and the machine).
    ///
    /// The discipline splits each eligible batch's reactive receiver rows
    /// into fixed contiguous subranges, allocates each subrange's senders
    /// with serial main-stream hypergeometric draws, and fills the
    /// subranges on per-subrange RNG streams
    /// (`derive_seed(batch_seed, subrange)`), merging deltas in subrange
    /// order. The trajectory therefore depends only on whether the
    /// discipline is *enabled*, never on `k`: `threads = 1` and
    /// `threads = 8` are byte-identical (`tests/parallel_determinism.rs`),
    /// while enabled-vs-disabled realizes the same stochastic process
    /// through a different (equally exact) draw sequence. Batches with
    /// sampled-law pairs or fewer than two reactive rows keep the serial
    /// fill regardless — an eligibility test on the configuration, not
    /// the thread count.
    pub fn set_fill_threads(&mut self, threads: u64) {
        self.fill_threads = (threads >= 1).then_some(threads);
    }

    /// Observability: cumulative stats from the engine's own state → id
    /// index (reset when a GC pass or engine switch rebuilds the tables).
    pub(crate) fn index_stats(&self) -> SlotIndexStats {
        self.index.stats()
    }

    /// Population size.
    pub fn population_size(&self) -> u64 {
        self.n
    }

    /// Parallel time elapsed.
    pub fn time(&self) -> f64 {
        parallel_time(self.interactions, self.n as usize)
    }

    /// Total interactions executed.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Looks `state` up in the open-addressed index (`None` if undiscovered).
    #[inline]
    fn slot_lookup(&self, state: &P::State) -> Option<usize> {
        self.index
            .get(fnv_hash(state), |id| self.states[id as usize] == *state)
            .map(|id| id as usize)
    }

    /// Count of agents currently in `state`.
    pub fn count(&self, state: &P::State) -> u64 {
        self.slot_lookup(state).map_or(0, |id| self.counts[id])
    }

    /// Materializes the current configuration (O(k log k)).
    pub fn config_view(&self) -> CountConfiguration<P::State> {
        CountConfiguration::from_pairs(
            self.states
                .iter()
                .zip(&self.counts)
                .filter(|(_, &c)| c > 0)
                .map(|(&s, &c)| (s, c)),
        )
    }

    /// Executes at least one and at most `budget` interactions, choosing
    /// between one collision-length batch and one null-skip (Gillespie)
    /// step based on the current productive-pair density. Returns the
    /// number executed.
    pub fn advance(&mut self, budget: u64) -> u64 {
        debug_assert!(budget >= 1);
        let w_prod = self.productive_weight();
        if w_prod == 0 {
            // Silent configuration: every future interaction is a no-op.
            self.interactions += budget;
            if let Some(m) = &self.metrics {
                m.incr(Counter::NullSkipRuns);
                m.add(Counter::NullSkipped, budget);
                m.record(Hist::NullSkipLen, budget);
            }
            return budget;
        }
        let p = w_prod as f64 / (self.n * (self.n - 1)) as f64;
        if p * self.expected_batch_len < NULL_SKIP_FACTOR {
            self.null_skip_step(budget, w_prod, p)
        } else {
            self.run_batch(budget)
        }
    }

    /// Total weight `Σ c_a·(c_b - [a = b])` over *possibly-productive*
    /// ordered state pairs — `n(n-1)` times the probability that the next
    /// interaction lands on a pair whose law could change the configuration
    /// (random laws with any non-identity outcome, and all sampled laws,
    /// count as productive).
    fn productive_weight(&mut self) -> u64 {
        let k = self.states.len();
        let mut w = 0u64;
        for a in 0..k {
            let ca = self.counts[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                let cb = self.counts[b];
                if cb == 0 {
                    continue;
                }
                let li = self.law_index(a, b);
                if !self.law_is_null(li, a, b) {
                    w += ca * (cb - u64::from(a == b));
                }
            }
        }
        w
    }

    /// Gillespie-style step: samples the geometric run of certainly-null
    /// interactions before the next possibly-productive one, skips it in
    /// O(1), and simulates that single interaction (pair drawn ∝ its
    /// weight, outcome sampled from its law — which may itself turn out to
    /// be a no-op for random laws with identity outcomes; that is still
    /// exact). If the run exceeds `budget`, exactly `budget` null
    /// interactions elapse instead — valid because certainly-null
    /// interactions cannot change the configuration and the underlying pair
    /// sequence is i.i.d.
    fn null_skip_step(&mut self, budget: u64, w_prod: u64, p: f64) -> u64 {
        let g = geometric(p, &mut self.rng);
        if g > budget {
            self.interactions += budget;
            if let Some(m) = &self.metrics {
                m.incr(Counter::NullSkipRuns);
                m.add(Counter::NullSkipped, budget);
                m.record(Hist::NullSkipLen, budget);
            }
            return budget;
        }
        let mut z = self.rng.gen_range(0..w_prod);
        let k = self.states.len();
        'outer: for a in 0..k {
            let ca = self.counts[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                let cb = self.counts[b];
                if cb == 0 {
                    continue;
                }
                let li = self.law_index(a, b);
                if self.law_is_null(li, a, b) {
                    continue;
                }
                let w = ca * (cb - u64::from(a == b));
                if z < w {
                    let (c, d) = self.apply_one(a, b);
                    self.counts[a] -= 1;
                    self.counts[b] -= 1;
                    grow_to(&mut self.counts, self.states.len());
                    self.counts[c] += 1;
                    self.counts[d] += 1;
                    break 'outer;
                }
                z -= w;
            }
        }
        self.interactions += g;
        if let Some(m) = &self.metrics {
            m.incr(Counter::NullSkipRuns);
            // `g - 1` of the run were skipped nulls; the last interaction
            // was simulated individually above.
            m.add(Counter::NullSkipped, g.saturating_sub(1));
            m.record(Hist::NullSkipLen, g);
        }
        g
    }

    /// Executes at least one and at most `budget` interactions (one batch,
    /// possibly truncated to the budget). Returns the number executed.
    pub fn run_batch(&mut self, budget: u64) -> u64 {
        debug_assert!(budget >= 1);
        let n = self.n;
        let t_collision = self.sample_batch_len();
        // Truncating a batch at a deterministic budget is exact: the
        // collision-free prefix of a longer batch has the same law as a
        // batch of the prefix length (without-replacement exchangeability).
        let (t, with_collision) = if t_collision >= budget {
            (budget, false)
        } else {
            (t_collision, true)
        };
        let k0 = self.states.len();
        let mut recv = std::mem::take(&mut self.recv);
        let mut send = std::mem::take(&mut self.send);
        let mut touched = std::mem::take(&mut self.touched);
        recv.clear();
        recv.resize(k0, 0);
        send.clear();
        send.resize(k0, 0);
        touched.clear();
        touched.resize(k0, 0);

        // Batch fill: receiver multiset, then sender multiset, drawn without
        // replacement from the configuration (counts become the untouched
        // pool U as draws are subtracted).
        draw_without_replacement(&mut self.counts, n, t, &mut recv, &mut self.rng);
        draw_without_replacement(&mut self.counts, n - t, t, &mut send, &mut self.rng);

        // Classify the batch's rows and columns. A receiver row `a` is
        // *reactive* if some present sender state reacts with it; a sender
        // column `b` is reactive if some present receiver row reacts with
        // it. A pair "reacts" unless its law is certainly null (identity
        // deterministic outputs, or a random law whose every outcome is the
        // identity). Pairings involving a non-reactive side are identity
        // for every counterpart in this batch, so their contingency entries
        // never need to be drawn individually — the states are unchanged no
        // matter how the matching falls.
        let mut row_reactive = std::mem::take(&mut self.row_reactive);
        let mut col_reactive = std::mem::take(&mut self.col_reactive);
        row_reactive.clear();
        row_reactive.resize(k0, false);
        col_reactive.clear();
        col_reactive.resize(k0, false);
        let mut sampled_pairs = false;
        for a in 0..k0 {
            if recv[a] == 0 {
                continue;
            }
            for b in 0..k0 {
                if send[b] == 0 {
                    continue;
                }
                let li = self.law_index(a, b);
                if !self.law_is_null(li, a, b) {
                    row_reactive[a] = true;
                    col_reactive[b] = true;
                    if li == LAW_SAMPLED {
                        sampled_pairs = true;
                    }
                }
            }
        }

        // Fill dispatch. A batch is *eligible* for the subrange-fill
        // discipline when the knob is on, no present pair needs
        // per-interaction sampling (sampled laws intern states mid-fill
        // and must stay on the serial path), and at least two reactive
        // rows exist to split. Eligibility is a pure function of the
        // batch's configuration — never of the thread count — so the
        // trajectory is identical at any enabled thread count.
        let reactive_rows = (0..k0).filter(|&a| recv[a] > 0 && row_reactive[a]).count();
        let mut send_total = t;
        if self.fill_threads.is_some() && !sampled_pairs && reactive_rows >= 2 {
            self.fill_parallel(
                t,
                &recv,
                &mut send,
                &mut send_total,
                &mut touched,
                &row_reactive,
                &col_reactive,
            );
        } else {
            self.fill_serial(
                &recv,
                &mut send,
                &mut send_total,
                &mut touched,
                &row_reactive,
                &col_reactive,
            );
        }

        let mut executed = t;
        if with_collision {
            self.collision_interaction(t, &mut touched, &mut send);
            executed += 1;
        }

        // Merge the touched (updated) agents and the undisturbed senders
        // back into the configuration.
        grow_to(&mut self.counts, self.states.len());
        for (c, &d) in self.counts.iter_mut().zip(&touched) {
            *c += d;
        }
        for (c, &s) in self.counts.iter_mut().zip(&send) {
            *c += s;
        }
        self.interactions += executed;
        if let Some(m) = &self.metrics {
            m.incr(Counter::Batches);
            m.record(Hist::BatchLen, executed);
        }

        self.recv = recv;
        self.send = send;
        self.touched = touched;
        self.row_reactive = row_reactive;
        self.col_reactive = col_reactive;
        executed
    }

    /// The classic serial pairing contingency: reactive receiver rows draw
    /// their partner splits over the reactive sender columns — an iterated
    /// conditional hypergeometric realization of the uniform bipartite
    /// matching. Whatever a row still needs after the reactive columns
    /// comes from the pooled non-reactive columns: those pairings are
    /// identity, so only the pool's total (tracked via `send_total`)
    /// matters, never which non-reactive state each partner held.
    /// Non-reactive rows are processed implicitly last (the matching is
    /// exchangeable): their receivers keep their states and their
    /// partners — all of `send`'s leftovers — keep theirs, merged back
    /// wholesale by [`BatchedCountSim::run_batch`].
    #[allow(clippy::too_many_arguments)]
    fn fill_serial(
        &mut self,
        recv: &[u64],
        send: &mut [u64],
        send_total: &mut u64,
        touched: &mut Vec<u64>,
        row_reactive: &[bool],
        col_reactive: &[bool],
    ) {
        let k0 = recv.len();
        for a in 0..k0 {
            let ra = recv[a];
            if ra == 0 {
                continue;
            }
            if !row_reactive[a] {
                touched[a] += ra;
                continue;
            }
            let mut need = ra;
            let mut pool = *send_total;
            for b in 0..k0 {
                if need == 0 {
                    break;
                }
                let sb = send[b];
                if sb == 0 || !col_reactive[b] {
                    continue;
                }
                let m = if pool == sb {
                    need
                } else {
                    hypergeometric(pool, sb, need, &mut self.rng)
                };
                pool -= sb;
                if m == 0 {
                    continue;
                }
                let li = self.law_index(a, b);
                self.apply_bulk(li, a, b, m, touched);
                send[b] -= m;
                *send_total -= m;
                need -= m;
            }
            if need > 0 {
                // Partners from the non-reactive pool: receiver unchanged,
                // senders stay in `send` (their states are unchanged too).
                touched[a] += need;
                *send_total -= need;
            }
        }
    }

    /// The deterministic subrange-fill discipline (see
    /// [`BatchedCountSim::set_fill_threads`] and [`crate::parallel`]).
    ///
    /// Two levels replace the serial row chain:
    ///
    /// 1. **Subrange allocation (serial, main RNG stream).** The reactive
    ///    rows are partitioned into at most [`PAR_SUBRANGES`] contiguous
    ///    subranges balanced by receiver mass, and each subrange's total
    ///    receiver mass is allocated over the reactive sender columns
    ///    (plus the pooled non-reactive remainder) with iterated
    ///    conditional hypergeometric draws — the group marginals of the
    ///    uniform matching's contingency table, valid by the nested
    ///    decomposition of the multivariate hypergeometric law.
    /// 2. **Subrange fill (parallel, per-subrange streams).** Conditioned
    ///    on its allocation, each subrange realizes its own row-by-row
    ///    contingency — the same chain as the serial fill, restricted to
    ///    the subrange's pools — on an RNG stream seeded
    ///    `derive_seed(batch_seed, subrange_index)`, applying laws into a
    ///    subrange-local delta vector. Law tables are read-only here:
    ///    every present pair's law was computed during classification and
    ///    sampled-law batches never take this path, so no interning (and
    ///    no `&mut self`) is needed.
    ///
    /// Deltas merge in subrange order; thread count affects wall clock
    /// only. Below [`PAR_FILL_MIN_WORK`] the same discipline runs inline
    /// (identical draws, no spawns).
    #[allow(clippy::too_many_arguments)]
    fn fill_parallel(
        &mut self,
        t: u64,
        recv: &[u64],
        send: &mut [u64],
        send_total: &mut u64,
        touched: &mut Vec<u64>,
        row_reactive: &[bool],
        col_reactive: &[bool],
    ) {
        let k0 = recv.len();
        let states_len = self.states.len();
        grow_to(touched, states_len);
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());

        // Reactive rows and columns in ascending slot order (the draw
        // order of every stream below).
        let rows: Vec<(usize, u64)> = (0..k0)
            .filter(|&a| recv[a] > 0 && row_reactive[a])
            .map(|a| (a, recv[a]))
            .collect();
        let cols: Vec<usize> = (0..k0)
            .filter(|&b| send[b] > 0 && col_reactive[b])
            .collect();
        let masses: Vec<u64> = rows.iter().map(|&(_, ra)| ra).collect();
        let groups = partition_by_mass(&masses, PAR_SUBRANGES);

        // One main-stream draw seeds every subrange stream.
        let batch_seed: u64 = self.rng.gen();

        // Level 1: subrange sender allocations. Allocated senders leave
        // `send` immediately — each subrange consumes its allocation
        // exactly, so the merge below never touches `send` again; the
        // non-reactive share stays pooled (those partners keep their
        // states and remain in `send` for the wholesale merge).
        let mut allocs: Vec<(Vec<u64>, u64)> = Vec::with_capacity(groups.len());
        for range in &groups {
            let r_g: u64 = masses[range.clone()].iter().sum();
            let mut remaining_total = *send_total;
            let mut need = r_g;
            let mut alloc = vec![0u64; cols.len()];
            for (ci, &b) in cols.iter().enumerate() {
                if need == 0 {
                    break;
                }
                let sb = send[b];
                if sb == 0 {
                    continue;
                }
                let x = if remaining_total == sb {
                    need
                } else {
                    hypergeometric(remaining_total, sb, need, &mut self.rng)
                };
                alloc[ci] = x;
                send[b] -= x;
                remaining_total -= sb;
                need -= x;
            }
            allocs.push((alloc, need));
            *send_total -= r_g;
        }

        // Level 2: fill the subranges (inline when the batch is too small
        // to amortize thread spawns — same draws either way).
        let spawn_threads = if (rows.len() as u64) * t >= PAR_FILL_MIN_WORK {
            self.fill_threads.unwrap_or(1)
        } else {
            1
        };
        let (table, laws, cap) = (&self.table, &self.laws, self.cap);
        let deltas: Vec<Vec<u64>> = par_map_indexed(groups.len(), spawn_threads, |g| {
            let mut rng_g = rng_from_seed(derive_seed(batch_seed, g as u64));
            let (alloc, rest) = &allocs[g];
            let mut lb = alloc.clone();
            let mut rest_rem = *rest;
            let mut total_rem: u64 = lb.iter().sum::<u64>() + rest_rem;
            let mut delta = vec![0u64; states_len];
            for &(a, ra) in &rows[groups[g].clone()] {
                let mut need = ra;
                let mut pool = total_rem;
                for (ci, &b) in cols.iter().enumerate() {
                    if need == 0 {
                        break;
                    }
                    let sb = lb[ci];
                    if sb == 0 {
                        continue;
                    }
                    let m = if pool == sb {
                        need
                    } else {
                        hypergeometric(pool, sb, need, &mut rng_g)
                    };
                    pool -= sb;
                    if m == 0 {
                        continue;
                    }
                    let li = table[a * cap + b];
                    debug_assert_ne!(li, UNCOMPUTED, "present pair law must be precomputed");
                    match &laws[li as usize] {
                        PairLaw::Det(c, d) => {
                            delta[*c as usize] += m;
                            delta[*d as usize] += m;
                        }
                        PairLaw::Random { outs, probs, .. } => {
                            let split = multinomial_conditional(m, probs, &mut rng_g);
                            for (&(c, d), x) in outs.iter().zip(split) {
                                delta[c as usize] += x;
                                delta[d as usize] += x;
                            }
                        }
                        PairLaw::Sampled => {
                            unreachable!("sampled-law batches never take the parallel fill")
                        }
                    }
                    lb[ci] -= m;
                    total_rem -= m;
                    need -= m;
                }
                if need > 0 {
                    // Partners from the subrange's non-reactive share:
                    // receiver unchanged, partners stay pooled in `send`.
                    delta[a] += need;
                    rest_rem -= need;
                    total_rem -= need;
                }
            }
            debug_assert_eq!(total_rem, 0, "subrange must consume its allocation");
            debug_assert_eq!(rest_rem, 0, "subrange must consume its non-reactive share");
            delta
        });

        // Merge in subrange order, then the non-reactive rows (no RNG).
        for delta in deltas {
            for (acc, d) in touched.iter_mut().zip(delta) {
                *acc += d;
            }
        }
        for a in 0..k0 {
            if recv[a] > 0 && !row_reactive[a] {
                touched[a] += recv[a];
            }
        }

        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.incr(Counter::ParallelFills);
            m.add(Counter::FillSubranges, groups.len() as u64);
            m.record(Hist::FillNanos, started.elapsed().as_nanos() as u64);
        }
    }

    /// Simulates the first colliding interaction exactly.
    ///
    /// Conditioned on the first repeated agent pick happening at interaction
    /// `t+1` with `2t` agents touched, the repeat is at the receiver
    /// position with probability `(n-1)/(2n-2t-1)`; the repeated agent is
    /// uniform over the batch's `2t` agents — the `touched` multiset plus
    /// the senders still sitting (state-unchanged) in `send` — and its
    /// partner uniform over the appropriate complement.
    fn collision_interaction(&mut self, t: u64, touched: &mut Vec<u64>, send: &mut [u64]) {
        let n = self.n;
        let untouched_total = n - 2 * t;
        // P(collision at receiver | collision at interaction t+1).
        let p_rec = (n - 1) as f64 / (2 * n - 2 * t - 1) as f64;
        let u: f64 = self.rng.gen();
        let (rec_id, sen_id) = if u < p_rec {
            // Receiver is a batch agent; sender is uniform over the other
            // n-1 agents (untouched or batch).
            let rec = take_from_batch(touched, send, self.rng.gen_range(0..2 * t));
            let z = self.rng.gen_range(0..n - 1);
            let sen = if z < untouched_total {
                let s = draw_one(&self.counts, z);
                self.counts[s] -= 1;
                s
            } else {
                take_from_batch(touched, send, z - untouched_total)
            };
            (rec, sen)
        } else {
            // Receiver is a fresh untouched agent; the colliding sender is a
            // batch agent (distinct from the receiver automatically).
            let rec = draw_one(&self.counts, self.rng.gen_range(0..untouched_total));
            self.counts[rec] -= 1;
            let sen = take_from_batch(touched, send, self.rng.gen_range(0..2 * t));
            (rec, sen)
        };
        let (c, d) = self.apply_one(rec_id, sen_id);
        grow_to(touched, self.states.len());
        touched[c] += 1;
        touched[d] += 1;
    }

    /// Samples the number of collision-free interactions before the next
    /// repeated agent pick (capped at `⌊n/2⌋` where a repeat is certain).
    fn sample_batch_len(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        // survival is decreasing with survival[0] = 1; T = max{t : P(T≥t) ≥ u}.
        let idx = self.survival.partition_point(|&f| f >= u);
        if idx < self.survival.len() || self.boundary_reached {
            return (idx - 1) as u64;
        }
        // Tail beyond the precomputed cutoff (probability < SURVIVAL_CUTOFF):
        // extend the recurrence on the fly.
        let n = self.n;
        let denom = (n as f64) * ((n - 1) as f64);
        let mut t = (self.survival.len() - 1) as u64;
        let mut f = *self.survival.last().expect("survival table is non-empty");
        loop {
            let remaining = n - 2 * t;
            if remaining < 2 {
                return t;
            }
            f *= (remaining as f64) * ((remaining - 1) as f64) / denom;
            if f < u {
                return t;
            }
            t += 1;
        }
    }

    /// Looks up (analyzing on first use) the outcome law of the ordered
    /// state-id pair `(a, b)`, interning any newly discovered output states.
    /// Returns an index into `laws`.
    fn law_index(&mut self, a: usize, b: usize) -> u32 {
        let idx = self.table[a * self.cap + b];
        if idx != UNCOMPUTED {
            return idx;
        }
        let idx = self.analyze_pair(a, b);
        // `analyze_pair` may have interned states and grown `cap`, so the
        // table offset must be recomputed after it returns.
        self.table[a * self.cap + b] = idx;
        idx
    }

    /// Builds the [`PairLaw`] for `(a, b)` from the protocol's outcome
    /// enumeration (or a deterministic probe, or the shared sampled law).
    fn analyze_pair(&mut self, a: usize, b: usize) -> u32 {
        let (sa, sb) = (self.states[a], self.states[b]);
        let law = match self.protocol.outcomes(sa, sb) {
            Some(Outcomes::Deterministic(c, d)) => {
                let ci = self.intern(c) as u32;
                let di = self.intern(d) as u32;
                PairLaw::Det(ci, di)
            }
            Some(Outcomes::Random(support)) => self.analyze_random(a, b, support),
            None if self.protocol.is_deterministic() => {
                // Deterministic without enumeration: one probe fixes the law.
                let (c, d) = self.protocol.transition(sa, sb, &mut self.table_rng);
                let ci = self.intern(c) as u32;
                let di = self.intern(d) as u32;
                PairLaw::Det(ci, di)
            }
            None => return LAW_SAMPLED,
        };
        self.laws.push(law);
        (self.laws.len() - 1) as u32
    }

    /// Validates, renormalizes, and interns a finite outcome distribution.
    fn analyze_random(
        &mut self,
        a: usize,
        b: usize,
        support: Vec<(P::State, P::State, f64)>,
    ) -> PairLaw {
        assert!(
            !support.is_empty(),
            "Outcomes::Random must have at least one outcome"
        );
        let total: f64 = support.iter().map(|&(_, _, p)| p).sum();
        assert!(
            support.iter().all(|&(_, _, p)| p >= 0.0) && (total - 1.0).abs() < 1e-6,
            "outcome probabilities must be non-negative and sum to 1, got sum {total}"
        );
        let mut outs: Vec<(u32, u32)> = Vec::with_capacity(support.len());
        let mut probs: Vec<f64> = Vec::with_capacity(support.len());
        for (c, d, p) in support {
            let ci = self.intern(c) as u32;
            let di = self.intern(d) as u32;
            // Merge duplicate outcome pairs so the multinomial split stays
            // minimal.
            if let Some(j) = outs.iter().position(|&o| o == (ci, di)) {
                probs[j] += p / total;
            } else {
                outs.push((ci, di));
                probs.push(p / total);
            }
        }
        if outs.len() == 1 {
            return PairLaw::Det(outs[0].0, outs[0].1);
        }
        let silent = outs.iter().all(|&o| o == (a as u32, b as u32));
        PairLaw::Random {
            outs,
            probs,
            silent,
        }
    }

    /// Whether every outcome of the pair's law maps `(a, b)` to itself —
    /// i.e. the pair is certainly null and eligible for skipping. Sampled
    /// pairs are conservatively treated as productive.
    fn law_is_null(&self, idx: u32, a: usize, b: usize) -> bool {
        match &self.laws[idx as usize] {
            PairLaw::Det(c, d) => (*c as usize, *d as usize) == (a, b),
            PairLaw::Random { silent, .. } => *silent,
            PairLaw::Sampled => false,
        }
    }

    /// Applies `m` interactions of the input pair `(a, b)` in bulk, adding
    /// the output states to `touched`. Deterministic laws apply one delta;
    /// random laws split `m` over the outcomes with one exact multinomial
    /// draw; sampled laws fall back to one `transition` call per
    /// interaction (still exact — just not amortized).
    fn apply_bulk(&mut self, idx: u32, a: usize, b: usize, m: u64, touched: &mut Vec<u64>) {
        // Law analysis may have discovered states after `touched` was sized.
        grow_to(touched, self.states.len());
        match &self.laws[idx as usize] {
            PairLaw::Det(c, d) => {
                touched[*c as usize] += m;
                touched[*d as usize] += m;
            }
            PairLaw::Random { outs, probs, .. } => {
                let split = multinomial_conditional(m, probs, &mut self.rng);
                for (&(c, d), x) in outs.iter().zip(split) {
                    touched[c as usize] += x;
                    touched[d as usize] += x;
                }
            }
            PairLaw::Sampled => {
                for _ in 0..m {
                    let (sc, sd) =
                        self.protocol
                            .transition(self.states[a], self.states[b], &mut self.rng);
                    let ci = self.intern(sc);
                    let di = self.intern(sd);
                    grow_to(touched, self.states.len());
                    touched[ci] += 1;
                    touched[di] += 1;
                }
            }
        }
    }

    /// Simulates a single interaction of the input pair `(a, b)`: one
    /// sampled outcome of its law. Used for the collision interaction and
    /// the null-skip mode's productive interaction.
    fn apply_one(&mut self, a: usize, b: usize) -> (usize, usize) {
        let idx = self.law_index(a, b);
        match &self.laws[idx as usize] {
            PairLaw::Det(c, d) => (*c as usize, *d as usize),
            PairLaw::Random { outs, probs, .. } => {
                let u: f64 = self.rng.gen();
                let mut acc = 0.0;
                for (&(c, d), &p) in outs.iter().zip(probs) {
                    acc += p;
                    if u < acc {
                        return (c as usize, d as usize);
                    }
                }
                // Floating-point leakage (acc ≈ 1 - 1e-16): last outcome.
                let &(c, d) = outs.last().expect("random law has outcomes");
                (c as usize, d as usize)
            }
            PairLaw::Sampled => {
                let (sc, sd) =
                    self.protocol
                        .transition(self.states[a], self.states[b], &mut self.rng);
                (self.intern(sc), self.intern(sd))
            }
        }
    }

    /// Returns the id for `state`, discovering it (and growing the law
    /// table's stride geometrically) if unseen.
    fn intern(&mut self, state: P::State) -> usize {
        if let Some(id) = self.slot_lookup(&state) {
            return id;
        }
        let id = self.states.len();
        self.states.push(state);
        {
            let Self { index, states, .. } = self;
            index.insert(
                fnv_hash(&state),
                u32::try_from(id).expect("more than u32::MAX states"),
                |i| fnv_hash(&states[i as usize]),
            );
        }
        self.counts.push(0);
        if self.states.len() > self.cap {
            let new_cap = (self.cap * 2).max(self.states.len());
            let mut table = vec![UNCOMPUTED; new_cap * new_cap];
            for a in 0..id {
                for b in 0..id {
                    table[a * new_cap + b] = self.table[a * self.cap + b];
                }
            }
            self.table = table;
            self.cap = new_cap;
        }
        id
    }

    /// Executes at least `k` interactions (to the nearest batch truncation,
    /// which lands exactly on `k`).
    pub fn steps(&mut self, k: u64) {
        let target = self.interactions + k;
        while self.interactions < target {
            self.advance(target - self.interactions);
        }
    }

    /// Runs for `t` units of parallel time.
    pub fn run_for_time(&mut self, t: f64) {
        self.steps((t * self.n as f64).ceil() as u64);
    }

    /// Runs until `predicate(config)` holds, checking every `check_every`
    /// interactions, within a parallel-time budget. Semantics match
    /// [`CountSim::run_until`]; the predicate sees a materialized
    /// configuration view at each checkpoint.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&CountConfiguration<P::State>) -> bool,
        check_every: u64,
        max_time: f64,
    ) -> RunOutcome {
        assert!(check_every > 0, "check_every must be positive");
        let max_interactions = (max_time * self.n as f64).ceil() as u64;
        if predicate(&self.config_view()) {
            return RunOutcome {
                converged: true,
                time: self.time(),
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let target = (self.interactions + check_every).min(max_interactions);
            while self.interactions < target {
                self.advance(target - self.interactions);
            }
            if predicate(&self.config_view()) {
                return RunOutcome {
                    converged: true,
                    time: self.time(),
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome {
            converged: false,
            time: self.time(),
            interactions: self.interactions,
        }
    }
}

impl<P: CountProtocol> std::fmt::Debug for BatchedCountSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedCountSim")
            .field("n", &self.n)
            .field("states", &self.states.len())
            .field("interactions", &self.interactions)
            .finish()
    }
}

/// Precomputes the birthday-collision survival function
/// `survival[t] = P(T ≥ t) = ∏_{i<t} (n-2i)(n-2i-1) / (n(n-1))`,
/// truncated at [`SURVIVAL_CUTOFF`] or at the `⌊n/2⌋` boundary. Returns the
/// table and whether the boundary was reached.
fn collision_survival(n: u64) -> (Vec<f64>, bool) {
    let denom = (n as f64) * ((n - 1) as f64);
    let mut table = vec![1.0f64];
    let mut f = 1.0f64;
    let mut t = 0u64;
    loop {
        let remaining = n - 2 * t;
        if remaining < 2 {
            return (table, true);
        }
        f *= (remaining as f64) * ((remaining - 1) as f64) / denom;
        if f <= 0.0 {
            return (table, true);
        }
        table.push(f);
        t += 1;
        if f < SURVIVAL_CUTOFF {
            return (table, false);
        }
    }
}

/// Draws `draws` items without replacement from the slot-count pool `src`
/// (total mass `src_total`), adding the drawn counts to `dst` and removing
/// them from `src`. Iterated conditional hypergeometric — exact.
fn draw_without_replacement(
    src: &mut [u64],
    src_total: u64,
    draws: u64,
    dst: &mut [u64],
    rng: &mut SimRng,
) {
    debug_assert!(draws <= src_total);
    debug_assert_eq!(src.iter().sum::<u64>(), src_total);
    let mut remaining_total = src_total;
    let mut remaining_draws = draws;
    for i in 0..src.len() {
        if remaining_draws == 0 {
            break;
        }
        let c = src[i];
        if c == 0 {
            continue;
        }
        let x = if remaining_total == c {
            remaining_draws
        } else {
            hypergeometric(remaining_total, c, remaining_draws, rng)
        };
        dst[i] += x;
        src[i] -= x;
        remaining_total -= c;
        remaining_draws -= x;
    }
    debug_assert_eq!(remaining_draws, 0);
}

/// Maps a uniform index below a slot-count pool's total to its slot.
#[inline]
fn draw_one(pool: &[u64], mut index: u64) -> usize {
    for (i, &c) in pool.iter().enumerate() {
        if index < c {
            return i;
        }
        index -= c;
    }
    unreachable!("draw index exceeded pool total");
}

/// Draws (and removes) one agent from the batch's combined multiset: the
/// `touched` slots first, then the state-unchanged senders left in `send`.
#[inline]
fn take_from_batch(touched: &mut [u64], send: &mut [u64], mut index: u64) -> usize {
    for (i, c) in touched.iter_mut().enumerate() {
        if index < *c {
            *c -= 1;
            return i;
        }
        index -= *c;
    }
    for (i, c) in send.iter_mut().enumerate() {
        if index < *c {
            *c -= 1;
            return i;
        }
        index -= *c;
    }
    unreachable!("batch draw index exceeded touched + send total");
}

#[inline]
fn grow_to(v: &mut Vec<u64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0);
    }
}

/// How [`ConfigSim`] selects — and, mid-run, re-selects — its engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Heuristic choice at construction plus adaptive re-selection: each
    /// batch (or each `~√n` sequential chunk) the occupied support `k` is
    /// compared against the mean batch length `E[T] = Θ(√n)`, and the run
    /// switches batched↔sequential when the other engine wins. Exact either
    /// way — only the wall-clock profile changes.
    #[default]
    Auto,
    /// Sequential [`CountSim`], never switched.
    Sequential,
    /// Batched [`BatchedCountSim`], never switched.
    Batched,
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "sequential" => Ok(Self::Sequential),
            "batched" => Ok(Self::Batched),
            other => Err(format!(
                "unknown engine mode {other:?} (expected auto | sequential | batched)"
            )),
        }
    }
}

/// The engine actually running inside a [`ConfigSim`].
// One instance per simulation, held directly (never in a collection), so
// the size gap between the batched engine (scratch buffers, law table,
// survival table) and the sequential one costs nothing.
#[allow(clippy::large_enum_variant)]
enum Engine<P: CountProtocol> {
    /// Per-interaction simulation ([`CountSim`]).
    Sequential(CountSim<P>),
    /// Batched simulation ([`BatchedCountSim`]).
    Batched(BatchedCountSim<P>),
}

/// In [`EngineMode::Auto`], leave the batched engine when the occupied
/// support satisfies `k² > ADAPT_DOWN·E[T]` — the `O(k²)` per-batch law
/// work then dominates the `Θ(√n)` interactions a batch executes — and
/// (re-)enter it when `k² < ADAPT_UP·E[T]`. The factor-4 gap between the
/// two thresholds is hysteresis against flapping near the crossover.
const ADAPT_DOWN: f64 = 4.0;
/// See [`ADAPT_DOWN`].
const ADAPT_UP: f64 = 1.0;

/// Trigger an interner-GC pass when the backing state table holds more
/// than this many times the live support (the dead/live amplification).
/// Collection costs `O(table)` and at least `(GC_DEAD_FACTOR - 1)·live`
/// fresh states must be interned between passes, so the amortized cost is
/// `O(1)` per newly discovered state.
const GC_DEAD_FACTOR: usize = 4;
/// Never trigger GC below this table size: small tables are free to keep,
/// and the floor keeps trivial protocols from ever paying the check.
const GC_MIN_TABLE: usize = 1024;

/// Whether interner GC is enabled for newly built simulators: on unless
/// the `PP_GC` environment variable says `off`/`0`/`false` (the kill
/// switch the GC-equivalence suite flips to prove collection is
/// trajectory-neutral). Parsed by the shared [`crate::env`] helper.
fn gc_enabled_from_env() -> bool {
    crate::env::flag("PP_GC", true)
}

/// Message for the engine-slot invariant (`None` only transiently inside
/// [`ConfigSim::switch_engine`]).
const ENGINE_PRESENT: &str = "ConfigSim engine slot is always occupied";

/// Facade choosing — and in [`EngineMode::Auto`], *re*-choosing mid-run —
/// between [`CountSim`] and [`BatchedCountSim`].
///
/// [`ConfigSim::new`] starts on the batched engine when the protocol asks
/// for it ([`CountProtocol::prefers_batching`] — deterministic protocols by
/// default, randomized ones that enumerate their outcome laws by opting
/// in) and the population is large enough for `Θ(√n)` batches to beat
/// per-interaction simulation; everything else starts sequential. The
/// right choice also depends on the *current* occupied support `k`
/// (per-batch work is `O(k²)`), which evolves as states are discovered and
/// die out, so Auto mode re-evaluates `k²` against the mean batch length
/// after every batch (or every `~√n` sequential interactions) and switches
/// engines mid-run, carrying the protocol, configuration, RNG stream, and
/// interaction clock across. Both engines realize exactly the same
/// stochastic process, so switching never changes semantics. Call sites
/// hold a single type either way.
///
/// The same checkpoints drive **interner garbage collection** for
/// table-backed protocols ([`CountProtocol::table_len`], i.e. the
/// [`crate::interned::Interned`] adapter): once the backing state table
/// holds more than a few times the live support, the dead entries are
/// evicted and the survivors compacted,
/// bounding memory by the live support instead of the states ever
/// reached. Collection is trajectory-neutral — same multiset, same slot
/// layout, no randomness — so it is on by default (`PP_GC=off` or
/// [`ConfigSim::set_gc`] disable it, chiefly for the equivalence suite
/// that proves the neutrality).
///
/// Sequential advances additionally offer table-backed protocols the
/// **dense per-agent lane** (`advance_dense` on the `Interned` adapter):
/// a counter-churning record protocol — occupied support past the lane
/// floor — takes the whole remaining budget as one per-agent episode at
/// the agent simulator's cost model, collapsing back to a canonical
/// configuration at the end. Like GC and engine switching, the lane is
/// trajectory-neutral, so when it engages (and on which engine history)
/// is unobservable in the decoded run.
///
/// ```
/// use pp_engine::batch::ConfigSim;
/// use pp_engine::count_sim::CountConfiguration;
/// use pp_engine::epidemic::InfectionEpidemic;
///
/// let config = CountConfiguration::from_pairs([(false, 99_999), (true, 1)]);
/// let mut sim = ConfigSim::new(InfectionEpidemic, config, 7);
/// assert!(sim.is_batched());
/// let out = sim.run_until(|c| c.count(&true) == 100_000, 10_000, f64::MAX);
/// assert!(out.converged);
/// ```
pub struct ConfigSim<P: CountProtocol> {
    /// `None` only transiently while [`ConfigSim::switch_engine`] rebuilds.
    engine: Option<Engine<P>>,
    /// Whether mid-run re-selection is active ([`EngineMode::Auto`]).
    adaptive: bool,
    /// Number of mid-run engine switches performed so far.
    switches: u32,
    /// Whether interner GC is active: the protocol is table-backed
    /// ([`CountProtocol::table_len`]) and GC was not disabled (the
    /// `PP_GC=off` environment knob or [`ConfigSim::set_gc`]).
    gc: bool,
    /// Number of interner-GC passes performed so far.
    collections: u32,
    /// Parallel-fill setting carried across engine switches (`None` =
    /// serial fill; see [`ConfigSim::set_fill_threads`]). Resolved at
    /// construction from the ambient per-thread override or `PP_THREADS`
    /// ([`crate::parallel::resolve_fill_threads`]); like the slot index
    /// it is derivable state, so snapshots never carry it and restores
    /// re-resolve it.
    fill_threads: Option<u64>,
    /// Observability: attached counter registry, if any (see
    /// [`ConfigSim::set_metrics`]).
    metrics: Option<Metrics>,
    /// Adapter counters already flushed into `metrics` (the adapter's
    /// tallies are cumulative; only the deltas are added, so one registry
    /// can serve several simulators without double counting).
    flushed_adapter: AdapterStats,
    /// Engine-side slot-index counters already flushed (the engine's index
    /// is rebuilt — and its tallies reset — on switches and GC passes;
    /// [`ConfigSim::flush_telemetry`] runs right before both).
    flushed_index: SlotIndexStats,
}

impl<P: CountProtocol> ConfigSim<P> {
    /// Populations at least this large use the batched engine (when the
    /// protocol allows). Below it, batches of `Θ(√n)` interactions are too
    /// short to amortize their `O(k²)` sampling overhead.
    pub const BATCH_THRESHOLD: u64 = 4096;

    /// Chooses the fastest correct engine for this protocol and population,
    /// with adaptive mid-run re-selection ([`EngineMode::Auto`]).
    pub fn new(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        Self::with_mode(protocol, config, seed, EngineMode::Auto)
    }

    /// Builds a simulator with an explicit engine policy — the selection
    /// hook used by the sweep orchestration layer (`pp-sweep`) to pin an
    /// engine per experiment grid.
    pub fn with_mode(
        protocol: P,
        config: CountConfiguration<P::State>,
        seed: u64,
        mode: EngineMode,
    ) -> Self {
        let (engine, adaptive) = match mode {
            EngineMode::Auto => {
                let batched = protocol.prefers_batching()
                    && config.population_size() >= Self::BATCH_THRESHOLD;
                let engine = if batched {
                    Engine::Batched(BatchedCountSim::new(protocol, config, seed))
                } else {
                    Engine::Sequential(CountSim::new(protocol, config, seed))
                };
                (engine, true)
            }
            EngineMode::Sequential => (
                Engine::Sequential(CountSim::new(protocol, config, seed)),
                false,
            ),
            EngineMode::Batched => (
                Engine::Batched(BatchedCountSim::new(protocol, config, seed)),
                false,
            ),
        };
        let table_backed = match &engine {
            Engine::Sequential(s) => s.protocol().table_len().is_some(),
            Engine::Batched(b) => b.protocol().table_len().is_some(),
        };
        let fill_threads = parallel::resolve_fill_threads();
        let mut engine = engine;
        if let (Engine::Batched(b), Some(k)) = (&mut engine, fill_threads) {
            b.set_fill_threads(k);
        }
        Self {
            engine: Some(engine),
            adaptive,
            switches: 0,
            gc: table_backed && gc_enabled_from_env(),
            collections: 0,
            fill_threads,
            metrics: None,
            flushed_adapter: AdapterStats::default(),
            flushed_index: SlotIndexStats::default(),
        }
    }

    /// [`ConfigSim::new`] with the protocol's own input-dependent initial
    /// configuration ([`CountSeededInit`]) — the count-space counterpart of
    /// [`crate::sim::AgentSim::with_inputs`] for majority splits, planted
    /// leaders, and other non-uniform starts.
    pub fn from_seeded(protocol: P, n: u64, seed: u64) -> Self
    where
        P: CountSeededInit,
    {
        let config = protocol.initial_config(n);
        assert_eq!(
            config.population_size(),
            n,
            "CountSeededInit::initial_config produced the wrong population size"
        );
        Self::new(protocol, config, seed)
    }

    /// Forces the sequential engine ([`EngineMode::Sequential`]).
    pub fn sequential(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        Self::with_mode(protocol, config, seed, EngineMode::Sequential)
    }

    /// Forces the batched engine ([`EngineMode::Batched`]; exact for
    /// randomized protocols too; fast only when the occupied state count
    /// stays small).
    pub fn batched(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        Self::with_mode(protocol, config, seed, EngineMode::Batched)
    }

    fn eng(&self) -> &Engine<P> {
        self.engine.as_ref().expect(ENGINE_PRESENT)
    }

    fn eng_mut(&mut self) -> &mut Engine<P> {
        self.engine.as_mut().expect(ENGINE_PRESENT)
    }

    /// Whether the batched engine is active.
    pub fn is_batched(&self) -> bool {
        matches!(self.eng(), Engine::Batched(_))
    }

    /// Checkpoint accessor: `(adaptive, gc, switches, collections)` — the
    /// facade's own state beside the inner engine.
    pub(crate) fn snapshot_flags(&self) -> (bool, bool, u32, u32) {
        (self.adaptive, self.gc, self.switches, self.collections)
    }

    /// Checkpoint accessor: the inner sequential engine, if active.
    pub(crate) fn inner_sequential(&self) -> Option<&CountSim<P>> {
        match self.eng() {
            Engine::Sequential(s) => Some(s),
            Engine::Batched(_) => None,
        }
    }

    /// Checkpoint accessor: the inner batched engine, if active.
    pub(crate) fn inner_batched(&self) -> Option<&BatchedCountSim<P>> {
        match self.eng() {
            Engine::Sequential(_) => None,
            Engine::Batched(b) => Some(b),
        }
    }

    /// Checkpoint accessor: the protocol, whichever engine holds it.
    pub(crate) fn protocol(&self) -> &P {
        match self.eng() {
            Engine::Sequential(s) => s.protocol(),
            Engine::Batched(b) => b.protocol(),
        }
    }

    /// Rebuilds a facade around a restored sequential engine, setting the
    /// facade counters directly (never consulting the environment — a
    /// restored run must match the snapshotted one even if `PP_GC`
    /// changed in between).
    pub(crate) fn from_restored_sequential(
        sim: CountSim<P>,
        adaptive: bool,
        gc: bool,
        switches: u32,
        collections: u32,
    ) -> Self {
        Self {
            engine: Some(Engine::Sequential(sim)),
            adaptive,
            switches,
            gc,
            collections,
            // Fill threads are derivable/ambient state (like the slot
            // index), re-resolved on restore: resuming under the same
            // PP_THREADS enabled/disabled setting continues byte-for-byte.
            fill_threads: parallel::resolve_fill_threads(),
            metrics: None,
            flushed_adapter: AdapterStats::default(),
            flushed_index: SlotIndexStats::default(),
        }
    }

    /// Rebuilds a facade around a restored batched engine (see
    /// [`ConfigSim::from_restored_sequential`]).
    pub(crate) fn from_restored_batched(
        mut sim: BatchedCountSim<P>,
        adaptive: bool,
        gc: bool,
        switches: u32,
        collections: u32,
    ) -> Self {
        let fill_threads = parallel::resolve_fill_threads();
        if let Some(k) = fill_threads {
            sim.set_fill_threads(k);
        }
        Self {
            engine: Some(Engine::Batched(sim)),
            adaptive,
            switches,
            gc,
            collections,
            fill_threads,
            metrics: None,
            flushed_adapter: AdapterStats::default(),
            flushed_index: SlotIndexStats::default(),
        }
    }

    /// Number of mid-run engine switches performed so far (always 0 outside
    /// [`EngineMode::Auto`]).
    pub fn engine_switches(&self) -> u32 {
        self.switches
    }

    /// Attaches a telemetry registry: the facade records mode switches,
    /// adaptive support-vs-`E[T]` readings, GC passes, and dense-lane
    /// episodes, flushes the wrapped adapter's pair-cache / interner-index
    /// deltas, and forwards the registry to the inner batched engine for
    /// its batch / null-skip tallies (re-attached across engine switches).
    /// Recording never consumes randomness and influences no decision, so
    /// attached and detached runs are byte-identical
    /// (`tests/telemetry_neutrality.rs`).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        if let Engine::Batched(b) = self.eng_mut() {
            b.set_metrics(metrics.clone());
        }
        self.metrics = Some(metrics);
    }

    /// Sets the parallel-fill thread count, overriding whatever the
    /// ambient override / `PP_THREADS` resolved at construction: `0`
    /// restores the classic serial fill, `k ≥ 1` enables the
    /// deterministic subrange-fill discipline with up to `k` worker
    /// threads (see [`BatchedCountSim::set_fill_threads`] for the exact
    /// byte-identity contract). The setting is carried across adaptive
    /// engine switches, like the attached telemetry registry.
    pub fn set_fill_threads(&mut self, threads: u64) {
        self.fill_threads = (threads >= 1).then_some(threads);
        if let Engine::Batched(b) = self.eng_mut() {
            b.set_fill_threads(threads);
        }
    }

    /// Flushes the cumulative adapter (pair cache + interner index) and
    /// engine slot-index tallies into the attached registry as deltas
    /// since the last flush. Called at every advance checkpoint and right
    /// before the operations that rebuild — and thereby reset — the
    /// engine-side index (engine switches, GC passes).
    fn flush_telemetry(&mut self) {
        let Some(m) = self.metrics.clone() else {
            return;
        };
        if let Some(stats) = self.protocol().telemetry_stats() {
            let last = self.flushed_adapter;
            m.add(Counter::PairCacheHits, stats.cache_hits - last.cache_hits);
            m.add(
                Counter::PairCacheMisses,
                stats.cache_misses - last.cache_misses,
            );
            m.add(
                Counter::PairCacheGenDrops,
                stats.cache_gen_drops - last.cache_gen_drops,
            );
            m.add(
                Counter::SlotLookups,
                stats.index_lookups - last.index_lookups,
            );
            m.add(Counter::SlotProbes, stats.index_probes - last.index_probes);
            m.add(
                Counter::SlotRebuilds,
                stats.index_rebuilds - last.index_rebuilds,
            );
            self.flushed_adapter = stats;
        }
        let index = match self.eng() {
            Engine::Sequential(s) => s.config().index_stats(),
            Engine::Batched(b) => b.index_stats(),
        };
        // The engine index is rebuilt from scratch on switches and GC
        // passes; a current tally below the flushed baseline means a reset
        // happened since (the pre-reset tail was flushed just before it).
        let last = self.flushed_index;
        let delta = |cur: u64, last: u64| cur.saturating_sub(last);
        m.add(Counter::SlotLookups, delta(index.lookups, last.lookups));
        m.add(Counter::SlotProbes, delta(index.probes, last.probes));
        m.add(Counter::SlotRebuilds, delta(index.rebuilds, last.rebuilds));
        self.flushed_index = index;
    }

    /// Enables or disables interner GC for this simulator (on by default
    /// for table-backed protocols; `PP_GC=off` in the environment disables
    /// it globally). A no-op for protocols without a backing table.
    pub fn set_gc(&mut self, enabled: bool) {
        let table_backed = match self.eng() {
            Engine::Sequential(s) => s.protocol().table_len().is_some(),
            Engine::Batched(b) => b.protocol().table_len().is_some(),
        };
        self.gc = enabled && table_backed;
    }

    /// Number of interner-GC passes performed so far (always 0 for
    /// protocols without a backing state table).
    pub fn gc_collections(&self) -> u32 {
        self.collections
    }

    /// Forces one interner-GC pass immediately, regardless of the
    /// dead/live trigger — the testing/tooling hook behind the
    /// eviction-invariance property suite. Returns whether the protocol
    /// performed a collection (`false` for protocols without a backing
    /// table). Like triggered collection, this never changes the
    /// trajectory.
    pub fn collect_now(&mut self) -> bool {
        let table = match self.eng() {
            Engine::Sequential(s) => s.protocol().table_len().unwrap_or(0),
            Engine::Batched(b) => b.protocol().table_len().unwrap_or(0),
        };
        self.flush_telemetry();
        let collected = match self.eng_mut() {
            Engine::Sequential(s) => s.collect_table(),
            Engine::Batched(b) => b.collect_table(),
        };
        if collected {
            self.collections += 1;
            self.record_gc_pass(table);
        }
        collected
    }

    /// Population size.
    pub fn population_size(&self) -> u64 {
        match self.eng() {
            Engine::Sequential(s) => s.population_size(),
            Engine::Batched(b) => b.population_size(),
        }
    }

    /// Parallel time elapsed.
    pub fn time(&self) -> f64 {
        match self.eng() {
            Engine::Sequential(s) => s.time(),
            Engine::Batched(b) => b.time(),
        }
    }

    /// Total interactions executed.
    pub fn interactions(&self) -> u64 {
        match self.eng() {
            Engine::Sequential(s) => s.interactions(),
            Engine::Batched(b) => b.interactions(),
        }
    }

    /// Count of agents currently in `state`.
    pub fn count(&self, state: &P::State) -> u64 {
        match self.eng() {
            Engine::Sequential(s) => s.config().count(state),
            Engine::Batched(b) => b.count(state),
        }
    }

    /// Materializes the current configuration.
    pub fn config_view(&self) -> CountConfiguration<P::State> {
        match self.eng() {
            Engine::Sequential(s) => s.config().clone(),
            Engine::Batched(b) => b.config_view(),
        }
    }

    /// Re-evaluates the engine choice from the measured occupied support
    /// `k` (Auto mode only) and switches mid-run when the other engine
    /// wins. Leaving the batched engine needs only `k² > ADAPT_DOWN·E[T]`;
    /// (re-)entering it additionally requires the population to clear
    /// [`Self::BATCH_THRESHOLD`] and the protocol's laws to be bulk-applicable
    /// ([`CountProtocol::prefers_batching`] or a deterministic transition) —
    /// otherwise every pair falls into the sampled per-interaction path and
    /// batching buys nothing.
    fn maybe_adapt(&mut self) {
        if !self.adaptive {
            return;
        }
        let (support, mean_batch, switch) = match self.eng() {
            Engine::Batched(b) => {
                let k = b.occupied_support() as f64;
                let mean_batch = b.mean_batch_len();
                (k, mean_batch, k * k > ADAPT_DOWN * mean_batch)
            }
            Engine::Sequential(s) => {
                let n = s.population_size();
                if n < Self::BATCH_THRESHOLD {
                    return;
                }
                let p = s.protocol();
                if !(p.prefers_batching() || p.is_deterministic()) {
                    return;
                }
                let k = s.config().support_size() as f64;
                // E[T] ≈ √(πn/8): the √n-asymptotics of the exact survival
                // table the batched engine would precompute.
                let mean_batch = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
                (k, mean_batch, k * k < ADAPT_UP * mean_batch)
            }
        };
        if let Some(m) = &self.metrics {
            // The support-vs-E[T] reading behind every Auto-mode decision,
            // switch or not — the histograms show where a run sat relative
            // to the crossover.
            m.record(Hist::AdaptSupport, support as u64);
            m.record(Hist::AdaptMeanBatch, mean_batch as u64);
        }
        if !switch {
            return;
        }
        self.switch_engine();
        if let Some(m) = &self.metrics {
            m.trace_event(
                "mode_switch",
                &[
                    (
                        "to",
                        TraceValue::Str(if self.is_batched() {
                            "batched"
                        } else {
                            "sequential"
                        }),
                    ),
                    ("support", TraceValue::U64(support as u64)),
                    ("mean_batch", TraceValue::F64(mean_batch)),
                    ("interactions", TraceValue::U64(self.interactions())),
                ],
            );
        }
    }

    /// Re-checks the interner dead/live ratio (at the same adaptive
    /// checkpoints as [`ConfigSim::maybe_adapt`]) and runs one GC pass —
    /// evict dead table entries, compact, rename the configuration, reset
    /// the batched law table — once the backing table exceeds
    /// [`GC_DEAD_FACTOR`] times the live support. Collection preserves the
    /// decoded multiset, the engine's slot layout, and the relative id
    /// order, and consumes no randomness, so the trajectory is identical
    /// with GC on and off (`tests/gc_equivalence.rs` holds it to that,
    /// byte for byte).
    fn maybe_collect(&mut self) {
        if !self.gc {
            return;
        }
        let table = match self.eng() {
            Engine::Sequential(s) => {
                let table = s.protocol().table_len().unwrap_or(0);
                if table < GC_MIN_TABLE || table <= GC_DEAD_FACTOR * s.config().registered_len() {
                    return;
                }
                table
            }
            Engine::Batched(b) => {
                let table = b.protocol().table_len().unwrap_or(0);
                if table < GC_MIN_TABLE || table <= GC_DEAD_FACTOR * b.occupied_support() {
                    return;
                }
                table
            }
        };
        // A GC pass rebuilds the batched engine's slot index (resetting its
        // tallies); flush the pre-pass tail first.
        self.flush_telemetry();
        let collected = match self.eng_mut() {
            Engine::Sequential(s) => s.collect_table(),
            Engine::Batched(b) => b.collect_table(),
        };
        if collected {
            self.collections += 1;
            self.record_gc_pass(table);
        }
    }

    /// Records one completed GC pass into the attached registry: pass
    /// count, evicted-entry count (pre-pass table minus survivors), the
    /// pre/post table sizes, and — when a tracer is attached — a
    /// `gc_pass` trace event.
    fn record_gc_pass(&self, table_before: usize) {
        let Some(m) = &self.metrics else {
            return;
        };
        let live = self.protocol().table_len().unwrap_or(0);
        m.incr(Counter::GcPasses);
        m.add(Counter::GcEvicted, table_before.saturating_sub(live) as u64);
        m.record(Hist::GcTableLen, table_before as u64);
        m.record(Hist::GcLive, live as u64);
        m.trace_event(
            "gc_pass",
            &[
                ("table", TraceValue::U64(table_before as u64)),
                ("live", TraceValue::U64(live as u64)),
                (
                    "evicted",
                    TraceValue::U64(table_before.saturating_sub(live) as u64),
                ),
                ("interactions", TraceValue::U64(self.interactions())),
            ],
        );
    }

    /// Moves the run to the other engine, carrying the protocol,
    /// configuration, RNG stream, and interaction clock across. Exact:
    /// both engines realize the same stochastic process, so switching at an
    /// interaction boundary changes wall-clock cost only.
    fn switch_engine(&mut self) {
        // The new engine re-canonicalizes its slot tables (resetting the
        // index tallies); flush the outgoing engine's tail first.
        self.flush_telemetry();
        let engine = self.engine.take().expect(ENGINE_PRESENT);
        self.engine = Some(match engine {
            Engine::Batched(b) => {
                let (protocol, config, rng, interactions) = b.into_parts();
                Engine::Sequential(CountSim::from_parts(protocol, config, rng, interactions))
            }
            Engine::Sequential(s) => {
                let (protocol, config, rng, interactions) = s.into_parts();
                let mut b = BatchedCountSim::from_parts(protocol, config, rng, interactions);
                if let Some(m) = &self.metrics {
                    b.set_metrics(m.clone());
                }
                if let Some(k) = self.fill_threads {
                    b.set_fill_threads(k);
                }
                Engine::Batched(b)
            }
        });
        self.switches += 1;
        self.flushed_index = SlotIndexStats::default();
        if let Some(m) = &self.metrics {
            m.incr(Counter::ModeSwitches);
            m.incr(if self.is_batched() {
                Counter::SwitchesToBatched
            } else {
                Counter::SwitchesToSequential
            });
        }
    }

    /// Executes at least one and at most `budget` interactions on the
    /// current engine (the [`crate::simulation::Engine`] advance
    /// granularity): one batch or null-skip step when batched, a `~√n`
    /// chunk when sequential under [`EngineMode::Auto`] or with interner
    /// GC active (both re-check state at chunk boundaries), the full
    /// budget when pinned sequential without GC. Each call ends with the
    /// adaptive engine re-selection and the interner dead/live re-check
    /// (the interner GC re-check) where applicable. Returns the number
    /// executed; never overshoots, so run drivers land checkpoints
    /// exactly.
    pub fn advance(&mut self, budget: u64) -> u64 {
        debug_assert!(budget >= 1);
        let chunked = self.adaptive || self.gc;
        let mut lane = None;
        let executed = match self.eng_mut() {
            Engine::Batched(b) => b.advance(budget),
            Engine::Sequential(s) => {
                // Offer the protocol's dense per-agent lane first
                // ([`CountProtocol::advance_dense`]): table-backed
                // protocols running at churn-scale support execute the
                // budget at agent granularity — the counter-churn regime
                // where the per-interaction configuration machinery
                // costs more than it saves. The lane collapses to a
                // canonical configuration before returning, so the
                // adaptive / GC re-checks below see an ordinary
                // sequential engine.
                if let Some(done) = s.advance_dense(budget) {
                    lane = Some((s.population_size(), done, s.interactions()));
                    done
                } else {
                    let chunk = if chunked {
                        budget.min(((s.population_size() as f64).sqrt() as u64).max(64))
                    } else {
                        budget
                    };
                    s.steps(chunk);
                    chunk
                }
            }
        };
        if let (Some((n, done, interactions)), Some(m)) = (lane, &self.metrics) {
            m.incr(Counter::DenseLaneEpisodes);
            m.add(Counter::DenseLaneInteractions, done);
            m.record(Hist::DenseLaneN, n);
            m.trace_event(
                "dense_lane",
                &[
                    ("n", TraceValue::U64(n)),
                    ("episode_interactions", TraceValue::U64(done)),
                    ("interactions", TraceValue::U64(interactions)),
                ],
            );
        }
        if self.adaptive {
            self.maybe_adapt();
        }
        self.maybe_collect();
        if self.metrics.is_some() {
            self.flush_telemetry();
        }
        executed
    }

    /// Executes (at least) `k` interactions; the batched engine lands
    /// exactly on `k` via batch truncation.
    pub fn steps(&mut self, k: u64) {
        if !self.adaptive && !self.gc {
            match self.eng_mut() {
                Engine::Sequential(s) => s.steps(k),
                Engine::Batched(b) => b.steps(k),
            }
            if self.metrics.is_some() {
                self.flush_telemetry();
            }
            return;
        }
        let target = self.interactions() + k;
        while self.interactions() < target {
            self.advance(target - self.interactions());
        }
    }

    /// Runs for `t` units of parallel time.
    pub fn run_for_time(&mut self, t: f64) {
        self.steps((t * self.population_size() as f64).ceil() as u64);
    }

    /// Runs until `predicate(config)` holds, checking every `check_every`
    /// interactions, within a parallel-time budget.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&CountConfiguration<P::State>) -> bool,
        check_every: u64,
        max_time: f64,
    ) -> RunOutcome {
        if !self.adaptive && !self.gc {
            let out = match self.eng_mut() {
                Engine::Sequential(s) => s.run_until(predicate, check_every, max_time),
                Engine::Batched(b) => b.run_until(predicate, check_every, max_time),
            };
            if self.metrics.is_some() {
                self.flush_telemetry();
            }
            return out;
        }
        assert!(check_every > 0, "check_every must be positive");
        let max_interactions = (max_time * self.population_size() as f64).ceil() as u64;
        loop {
            if self.check_predicate(&mut predicate) {
                return RunOutcome {
                    converged: true,
                    time: self.time(),
                    interactions: self.interactions(),
                };
            }
            if self.interactions() >= max_interactions {
                return RunOutcome {
                    converged: false,
                    time: self.time(),
                    interactions: self.interactions(),
                };
            }
            let target = (self.interactions() + check_every).min(max_interactions);
            while self.interactions() < target {
                self.advance(target - self.interactions());
            }
        }
    }

    fn check_predicate(
        &self,
        predicate: &mut impl FnMut(&CountConfiguration<P::State>) -> bool,
    ) -> bool {
        match self.eng() {
            Engine::Sequential(s) => predicate(s.config()),
            Engine::Batched(b) => predicate(&b.config_view()),
        }
    }
}

impl<P: CountProtocol> std::fmt::Debug for ConfigSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.eng() {
            Engine::Sequential(s) => f.debug_tuple("ConfigSim::Sequential").field(s).finish(),
            Engine::Batched(b) => f.debug_tuple("ConfigSim::Batched").field(b).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way infection epidemic (deterministic).
    #[derive(Clone, Copy)]
    struct Infection;

    impl DeterministicCountProtocol for Infection {
        type State = u8;

        fn transition_det(&self, rec: u8, sen: u8) -> (u8, u8) {
            (rec.max(sen), sen)
        }
    }

    /// Pairwise annihilation: 1 + 2 -> 0 + 0 (checks transitions that shrink
    /// the support and discover a state absent from the initial config).
    #[derive(Clone, Copy)]
    struct Annihilate;

    impl DeterministicCountProtocol for Annihilate {
        type State = u8;

        fn transition_det(&self, rec: u8, sen: u8) -> (u8, u8) {
            if (rec == 1 && sen == 2) || (rec == 2 && sen == 1) {
                (0, 0)
            } else {
                (rec, sen)
            }
        }
    }

    #[test]
    fn survival_table_is_decreasing_from_one() {
        let (table, boundary) = collision_survival(10_000);
        assert_eq!(table[0], 1.0);
        assert_eq!(table[1], 1.0); // first interaction can never collide
        for w in table.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(!boundary);
        // E[T] ≈ √(πn/8) ≈ 62.7 at n = 10⁴; the table must comfortably
        // cover the bulk of the distribution.
        assert!(table.len() > 300, "table too short: {}", table.len());
    }

    #[test]
    fn survival_table_small_population_hits_boundary() {
        let (table, boundary) = collision_survival(4);
        // t can be 0, 1, or 2 (all 4 agents drawn); beyond that a repeat is
        // certain.
        assert!(boundary);
        assert_eq!(table.len(), 3);
        assert!((table[2] - 2.0 / 12.0).abs() < 1e-12); // 4!/ (4·3)² = 1/6
    }

    #[test]
    fn batch_lengths_match_birthday_distribution() {
        let n = 10_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n)]);
        let mut sim = BatchedCountSim::new(Infection, config, 11);
        let trials = 20_000;
        let mean: f64 = (0..trials)
            .map(|_| sim.sample_batch_len() as f64)
            .sum::<f64>()
            / trials as f64;
        // E[T] = Σ_{t≥1} P(T ≥ t); compute from the table directly.
        let expect: f64 = sim.survival.iter().skip(1).sum();
        let sd = (expect).sqrt(); // rough scale; T has σ ≈ 0.5 E[T]
        assert!(
            (mean - expect).abs() < 3.0 * sd * (trials as f64).sqrt().recip() * 60.0,
            "mean batch length {mean} vs expected {expect}"
        );
    }

    #[test]
    fn population_is_conserved_across_batches() {
        let config = CountConfiguration::from_pairs([(0u8, 9_000), (1u8, 1_000)]);
        let mut sim = BatchedCountSim::new(Infection, config, 3);
        for _ in 0..50 {
            sim.run_batch(u64::MAX);
            let total: u64 = sim.counts.iter().sum();
            assert_eq!(total, 10_000);
        }
        assert!(sim.interactions() > 0);
    }

    #[test]
    fn batched_epidemic_infects_everyone() {
        let n = 100_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
        let mut sim = BatchedCountSim::new(Infection, config, 5);
        let out = sim.run_until(|c| c.count(&1) == n, n / 10, 200.0);
        assert!(out.converged);
        // Epidemic completes in ~2 ln n ≈ 23 parallel time.
        assert!(out.time > 5.0 && out.time < 60.0, "time {}", out.time);
    }

    #[test]
    fn batched_is_deterministic_given_seed() {
        let run = |seed| {
            let config = CountConfiguration::from_pairs([(0u8, 49_999), (1u8, 1)]);
            let mut sim = BatchedCountSim::new(Infection, config, seed);
            sim.run_until(|c| c.count(&1) == 50_000, 1_000, 100.0)
                .interactions
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn steps_lands_exactly_on_target() {
        let config = CountConfiguration::from_pairs([(0u8, 99_999), (1u8, 1)]);
        let mut sim = BatchedCountSim::new(Infection, config, 9);
        sim.steps(12_345);
        assert_eq!(sim.interactions(), 12_345);
        sim.steps(1);
        assert_eq!(sim.interactions(), 12_346);
    }

    #[test]
    fn transitions_discover_new_states() {
        // Start without any state-0 agents; annihilation must discover 0.
        let config = CountConfiguration::from_pairs([(1u8, 5_000), (2u8, 5_000)]);
        let mut sim = BatchedCountSim::new(Annihilate, config, 17);
        sim.steps(200_000);
        let zeros = sim.count(&0);
        assert!(zeros > 0, "annihilation never fired");
        assert_eq!(zeros + sim.count(&1) + sim.count(&2), 10_000);
        // Difference |#1 - #2| is invariant (they annihilate in pairs).
        assert_eq!(sim.count(&1), sim.count(&2));
    }

    #[test]
    fn tiny_population_batches_correctly() {
        // n = 2: every batch is one bulk interaction plus a collision.
        let config = CountConfiguration::from_pairs([(0u8, 1), (1u8, 1)]);
        let mut sim = BatchedCountSim::new(Infection, config, 23);
        sim.steps(100);
        assert_eq!(sim.interactions(), 100);
        assert_eq!(sim.count(&1), 2, "max-epidemic must spread to both agents");
    }

    /// Lazy copying: the receiver adopts the sender's opinion with
    /// probability 1/2 — a randomized protocol with an enumerable outcome
    /// law that opts in to batching.
    #[derive(Clone, Copy)]
    struct LazyCopy;

    impl CountProtocol for LazyCopy {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, rng: &mut SimRng) -> (u8, u8) {
            if rng.gen::<bool>() {
                (sen, sen)
            } else {
                (rec, sen)
            }
        }

        fn outcomes(&self, rec: u8, sen: u8) -> Option<Outcomes<u8>> {
            Some(Outcomes::Random(vec![(sen, sen, 0.5), (rec, sen, 0.5)]))
        }

        fn prefers_batching(&self) -> bool {
            true
        }
    }

    /// Randomized protocol with no outcome enumeration: every pair uses the
    /// shared sampled law.
    #[derive(Clone, Copy)]
    struct LazyUnenumerated;

    impl CountProtocol for LazyUnenumerated {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, rng: &mut SimRng) -> (u8, u8) {
            if rng.gen::<bool>() {
                (sen, sen)
            } else {
                (rec, sen)
            }
        }
    }

    #[test]
    fn facade_dispatches_on_size_and_batching_preference() {
        let big = CountConfiguration::from_pairs([(0u8, ConfigSim::<Infection>::BATCH_THRESHOLD)]);
        assert!(ConfigSim::new(Infection, big, 1).is_batched());
        let small = CountConfiguration::from_pairs([(0u8, 100)]);
        assert!(!ConfigSim::new(Infection, small, 1).is_batched());

        // A randomized protocol that enumerates its outcomes and opts in
        // batches at scale; one that does not stays sequential.
        let big = CountConfiguration::from_pairs([(0u8, 500_000), (1u8, 500_000)]);
        assert!(ConfigSim::new(LazyCopy, big.clone(), 1).is_batched());
        assert!(!ConfigSim::new(LazyUnenumerated, big, 1).is_batched());
    }

    #[test]
    fn batched_randomized_protocol_reaches_consensus() {
        // Lazy copying is a consensus process; the batched engine must
        // drive it to an absorbing state through the multinomial path.
        let n = 20_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n / 2), (1u8, n / 2)]);
        let mut sim = BatchedCountSim::new(LazyCopy, config, 99);
        let out = sim.run_until(|c| c.count(&0) == n || c.count(&1) == n, n / 10, 100_000.0);
        assert!(out.converged, "lazy copying never reached consensus");
        assert_eq!(sim.count(&0) + sim.count(&1), n);
    }

    #[test]
    fn sampled_fallback_randomized_protocol_is_exact_on_counts() {
        // Without outcome enumeration every pair takes the per-interaction
        // sampled path; population conservation and exact step landing must
        // still hold.
        let n = 6_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n / 2), (1u8, n / 2)]);
        let mut sim = BatchedCountSim::new(LazyUnenumerated, config, 7);
        sim.steps(50_000);
        assert_eq!(sim.interactions(), 50_000);
        assert_eq!(sim.count(&0) + sim.count(&1), n);
    }

    #[test]
    fn random_law_probabilities_are_validated() {
        struct BadLaw;
        impl CountProtocol for BadLaw {
            type State = u8;
            fn transition(&self, rec: u8, sen: u8, _rng: &mut SimRng) -> (u8, u8) {
                (rec, sen)
            }
            fn outcomes(&self, rec: u8, sen: u8) -> Option<Outcomes<u8>> {
                Some(Outcomes::Random(vec![(rec, sen, 0.4), (sen, sen, 0.4)]))
            }
        }
        let config = CountConfiguration::from_pairs([(0u8, 50), (1u8, 50)]);
        let mut sim = BatchedCountSim::new(BadLaw, config, 1);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.steps(1_000);
        }));
        assert!(panic.is_err(), "probabilities summing to 0.8 must panic");
    }

    #[test]
    fn facade_run_until_matches_sequential_semantics() {
        let n = 50_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
        let mut sim = ConfigSim::new(Infection, config, 31);
        assert!(sim.is_batched());
        let out = sim.run_until(|c| c.count(&1) == n, n / 10, 500.0);
        assert!(out.converged);
        assert_eq!(sim.count(&1), n);
        assert_eq!(sim.config_view().population_size(), n);
        // Already-converged predicate returns immediately.
        let out2 = sim.run_until(|c| c.count(&1) == n, 1, 1.0);
        assert!(out2.converged);
        assert_eq!(out2.interactions, out.interactions);
    }

    /// Counter protocol whose occupied support grows without bound (every
    /// receiver increments): batching is the wrong engine once `k² ≫ √n`,
    /// even though the protocol is deterministic and so asks for it.
    #[derive(Clone, Copy)]
    struct ChurningCounter;

    impl DeterministicCountProtocol for ChurningCounter {
        type State = u32;

        fn transition_det(&self, rec: u32, sen: u32) -> (u32, u32) {
            (rec + 1, sen)
        }
    }

    #[test]
    fn adaptive_abandons_batching_when_support_explodes() {
        let n = 20_000u64;
        let config = CountConfiguration::uniform(0u32, n);
        let mut sim = ConfigSim::new(ChurningCounter, config, 5);
        assert!(sim.is_batched(), "deterministic protocol starts batched");
        // After 12n interactions the counters are ~Poisson(12): they occupy
        // ~25 consecutive values, so k² ≈ 600 far exceeds
        // 4·E[T] ≈ 4·√(πn/8) ≈ 354 and Auto must bail out.
        sim.steps(12 * n);
        assert!(
            !sim.is_batched(),
            "support of {} states should have forced a downswitch",
            sim.config_view().support_size()
        );
        assert!(sim.engine_switches() >= 1);
        assert_eq!(sim.config_view().population_size(), n);
    }

    /// Deterministic epidemic that *declines* batching: Auto starts it
    /// sequential, measures the 2-state support, and upswitches.
    #[derive(Clone, Copy)]
    struct ShyInfection;

    impl DeterministicCountProtocol for ShyInfection {
        type State = u8;

        fn transition_det(&self, rec: u8, sen: u8) -> (u8, u8) {
            (rec.max(sen), sen)
        }

        fn prefers_batching(&self) -> bool {
            false
        }
    }

    #[test]
    fn adaptive_adopts_batching_when_support_is_tiny() {
        let n = 100_000u64;
        let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
        let mut sim = ConfigSim::new(ShyInfection, config, 9);
        assert!(
            !sim.is_batched(),
            "prefers_batching = false starts sequential"
        );
        let out = sim.run_until(|c| c.count(&1) == n, (n / 10).max(1), f64::MAX);
        assert!(out.converged);
        assert!(
            sim.engine_switches() >= 1,
            "2-state support at n = 10⁵ should have upswitched"
        );
        assert_eq!(sim.count(&1), n);
    }

    #[test]
    fn forced_engines_never_switch() {
        let n = 20_000u64;
        let mut seq =
            ConfigSim::sequential(ChurningCounter, CountConfiguration::uniform(0u32, n), 5);
        seq.steps(5_000);
        assert!(!seq.is_batched());
        assert_eq!(seq.engine_switches(), 0);
        let mut bat = ConfigSim::batched(ChurningCounter, CountConfiguration::uniform(0u32, n), 5);
        bat.steps(5_000);
        assert!(bat.is_batched());
        assert_eq!(bat.engine_switches(), 0);
    }

    #[test]
    fn engine_mode_parses_from_str() {
        assert_eq!("auto".parse::<EngineMode>().unwrap(), EngineMode::Auto);
        assert_eq!(
            "sequential".parse::<EngineMode>().unwrap(),
            EngineMode::Sequential
        );
        assert_eq!(
            "batched".parse::<EngineMode>().unwrap(),
            EngineMode::Batched
        );
        assert!("fast".parse::<EngineMode>().is_err());
    }

    #[test]
    fn switching_preserves_population_and_clock() {
        let n = 50_000u64;
        let config = CountConfiguration::uniform(0u32, n);
        let mut sim = ConfigSim::new(ChurningCounter, config, 11);
        sim.steps(3 * n);
        assert_eq!(sim.interactions(), 3 * n);
        assert_eq!(sim.config_view().population_size(), n);
        // Total increments equal interactions: each interaction bumps
        // exactly one receiver by one, across any engine switches.
        let total: u64 = sim.config_view().iter().map(|(&s, &c)| s as u64 * c).sum();
        assert_eq!(total, 3 * n);
    }
}
