//! Shared parsing for the workspace's `PP_*` environment knobs.
//!
//! Four knobs used to be parsed by four hand-rolled readers with subtly
//! different semantics. They all go through here now, with one rule set:
//!
//! * **Flags** ([`flag`]): unset means the caller's default; the literal
//!   values `off`, `0`, and `false` disable; any other value enables.
//!   (`PP_GC`.)
//! * **Unsigned overrides** ([`unsigned`]): unset or unparsable means
//!   "no override". (`PP_EQ_TRIALS`, `PP_SWEEP_TRIALS`.)
//! * **Fault plans** ([`fault_plan`], [`parse_fault`]): `PP_FAULT=kill@N`
//!   arms the deterministic fault-injection harness. A set-but-invalid
//!   value is a hard error — a fault harness that silently disarms is
//!   worse than none.
//! * **Telemetry** ([`metrics_enabled`], [`trace_path`]): `PP_METRICS=off`
//!   is the kill switch for counter collection (on by default — counters
//!   are near-free and trajectory-neutral); `PP_TRACE=path.jsonl` attaches
//!   a structured event trace to every simulation built while it is set.

/// Reads a boolean knob: unset ⇒ `default`; `off`/`0`/`false` ⇒ `false`;
/// any other value ⇒ `true`.
pub fn flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => !matches!(v.as_str(), "off" | "0" | "false"),
    }
}

/// Reads an unsigned override knob: `Some(value)` if the variable is set
/// and parses as a `u64`, else `None`.
pub fn unsigned(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A deterministic fault plan: die at a planned point.
///
/// The same `kill@N` syntax is interpreted at two layers, documented where
/// each consumes it:
///
/// * the **engine** run driver aborts the process at the first checkpoint
///   with at least `kill_at` interactions (after writing any due
///   snapshot), modelling a SIGKILL mid-run;
/// * the **sweep** layer (spec-level `fault` field) aborts after `kill_at`
///   trials have been journaled, modelling a SIGKILL mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned kill point (interactions or journaled trials).
    pub kill_at: u64,
}

/// Parses a fault-plan spec of the form `kill@N`.
pub fn parse_fault(spec: &str) -> Result<FaultPlan, String> {
    let point = spec
        .strip_prefix("kill@")
        .ok_or_else(|| format!("invalid fault plan {spec:?}: expected kill@<point>"))?;
    let kill_at = point
        .parse()
        .map_err(|_| format!("invalid fault plan {spec:?}: {point:?} is not a u64"))?;
    Ok(FaultPlan { kill_at })
}

/// Whether telemetry counters may be attached to newly built simulations:
/// on unless `PP_METRICS` says `off`/`0`/`false`. Counters never perturb
/// the trajectory either way (`tests/telemetry_neutrality.rs`); the knob
/// exists so the byte-identity suites can compare both settings and so a
/// paranoid production run can shed even the relaxed-atomic cost.
pub fn metrics_enabled() -> bool {
    flag("PP_METRICS", true)
}

/// Reads the `PP_TRACE` trace-destination knob: `Some(path)` when set to a
/// non-empty value, with the standard `off`/`0`/`false` literals (and the
/// empty string) meaning disabled. Honored by `Simulation` builders at
/// build time; ignored entirely under `PP_METRICS=off`.
pub fn trace_path() -> Option<std::path::PathBuf> {
    pp_telemetry::trace_path_from_env()
}

/// Reads the `PP_THREADS` fill-thread knob: `Some(k)` (`k ≥ 1`) enables
/// the batched engine's deterministic parallel batch fill with up to `k`
/// worker threads; unset, `off`/`0`/`false`, or an unparsable value means
/// `None` — the classic serial fill, byte-identical to every release
/// before the knob existed.
///
/// Enabling the knob switches the batched engine to the parallel-fill
/// draw discipline (per-subrange RNG streams), which realizes the same
/// stochastic process but a *different trajectory* than the serial fill
/// for the same seed. The trajectory depends only on whether the
/// discipline is enabled — never on `k` — so `PP_THREADS=1` and
/// `PP_THREADS=8` are byte-identical (`tests/parallel_determinism.rs`).
/// A checkpointed run must therefore be resumed under the same
/// enabled/disabled setting to continue byte-for-byte.
pub fn fill_threads() -> Option<u64> {
    match std::env::var("PP_THREADS") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" | "off" | "0" | "false" => None,
            other => other.parse().ok().filter(|&k| k >= 1),
        },
    }
}

/// Reads the `PP_JOBS_DIR` job-store-root knob: `Some(path)` when set to
/// a non-empty value, with the standard `off`/`0`/`false` literals (and
/// the empty string) meaning "use the caller's default". The sweep
/// service (`pp-server`) anchors its directory-per-job store here; its
/// `--jobs-dir` flag outranks the variable.
pub fn jobs_dir() -> Option<std::path::PathBuf> {
    match std::env::var("PP_JOBS_DIR") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" | "off" | "0" | "false" => None,
            path => Some(std::path::PathBuf::from(path)),
        },
    }
}

/// Reads the `PP_FAULT` environment knob.
///
/// # Panics
///
/// Panics if `PP_FAULT` is set to something [`parse_fault`] rejects.
pub fn fault_plan() -> Option<FaultPlan> {
    let spec = std::env::var("PP_FAULT").ok()?;
    match parse_fault(&spec) {
        Ok(plan) => Some(plan),
        Err(e) => panic!("PP_FAULT: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_parse() {
        assert_eq!(parse_fault("kill@123"), Ok(FaultPlan { kill_at: 123 }));
        assert!(parse_fault("kill@").is_err());
        assert!(parse_fault("kill@x").is_err());
        assert!(parse_fault("stop@5").is_err());
        assert!(parse_fault("").is_err());
    }

    #[test]
    fn flag_semantics() {
        // Env-var reads are process-global; exercise only the unset path
        // here (set paths are covered via parse in integration use).
        assert!(flag("PP_TEST_SURELY_UNSET_FLAG", true));
        assert!(!flag("PP_TEST_SURELY_UNSET_FLAG", false));
        assert_eq!(unsigned("PP_TEST_SURELY_UNSET_FLAG"), None);
    }

    #[test]
    fn telemetry_knobs_default_on_and_unset() {
        // `cargo test` runs without PP_METRICS / PP_TRACE set; the set
        // paths share [`flag`]'s parse (covered above) and
        // `pp_telemetry::trace_path_from_env`'s own suite.
        assert!(metrics_enabled());
        assert!(trace_path().is_none());
        assert!(jobs_dir().is_none());
    }
}
