//! Deterministic random-number utilities.
//!
//! Every public entry point in this workspace takes a `u64` seed; all
//! randomness flows from it so experiments are exactly reproducible. Seeds for
//! independent streams (per trial, per component) are derived with a SplitMix64
//! mixer, the standard way to expand one seed into many decorrelated ones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG type used throughout the simulators.
///
/// `SmallRng` is a fast non-cryptographic generator; population-protocol
/// simulations draw billions of variates, so speed matters and cryptographic
/// strength does not. The paper's model assumes agents read *uniform random
/// bits*; `SmallRng` is the engine's stand-in for that random tape.
pub type SimRng = SmallRng;

/// Creates the simulation RNG for a given seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: a bijective mixer with good avalanche behaviour.
///
/// Used to derive decorrelated child seeds from `(base, stream)` pairs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// `derive_seed(s, i) != derive_seed(s, j)` for `i != j` (the mixer is a
/// bijection applied to distinct inputs), so trials never share a stream.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Samples a geometric random variable with success probability 1/2.
///
/// Defined as in the paper: the number of fair-coin flips up to and including
/// the first heads, so the support is `{1, 2, 3, ...}` and the expectation
/// is 2. This is the distribution every agent samples for `logSize2` and `gr`.
pub fn geometric_half(rng: &mut impl Rng) -> u64 {
    let mut count = 1;
    // Draw 64 coin flips at a time; the position of the first set bit is the
    // number of failures observed in this block.
    loop {
        let block: u64 = rng.gen();
        if block != 0 {
            return count + block.trailing_zeros() as u64;
        }
        count += 64;
    }
}

/// Samples a geometric random variable with success probability `p` in (0,1].
///
/// Support `{1, 2, ...}`; expectation `1/p`. Used by the analysis crate's
/// Monte-Carlo checks of the general tail bounds (Lemma D.5).
pub fn geometric(p: f64, rng: &mut impl Rng) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
    if p >= 1.0 {
        return 1;
    }
    // Inversion method: ceil(ln U / ln(1-p)) is geometric on {1, 2, ...}.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / (1.0 - p).ln()).ceil();
    if g < 1.0 {
        1
    } else {
        g as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_distinct_streams() {
        let base = 42;
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(base, i)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn derive_seed_distinct_bases() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }

    #[test]
    fn geometric_half_mean_is_two() {
        let mut rng = rng_from_seed(7);
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric_half(&mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean} far from 2");
    }

    #[test]
    fn geometric_half_support_starts_at_one() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            assert!(geometric_half(&mut rng) >= 1);
        }
    }

    #[test]
    fn geometric_general_matches_half() {
        let mut rng = rng_from_seed(11);
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric(0.5, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean} far from 2");
    }

    #[test]
    fn geometric_general_mean_one_over_p() {
        let mut rng = rng_from_seed(13);
        let p = 0.2;
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric(p, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean {mean} far from 5");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut rng = rng_from_seed(17);
        for _ in 0..100 {
            assert_eq!(geometric(1.0, &mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1]")]
    fn geometric_rejects_zero_p() {
        let mut rng = rng_from_seed(19);
        geometric(0.0, &mut rng);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(5);
        let mut b = rng_from_seed(5);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
