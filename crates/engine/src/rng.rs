//! Deterministic random-number utilities.
//!
//! Every public entry point in this workspace takes a `u64` seed; all
//! randomness flows from it so experiments are exactly reproducible. Seeds for
//! independent streams (per trial, per component) are derived with a SplitMix64
//! mixer, the standard way to expand one seed into many decorrelated ones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG type used throughout the simulators.
///
/// `SmallRng` is a fast non-cryptographic generator; population-protocol
/// simulations draw billions of variates, so speed matters and cryptographic
/// strength does not. The paper's model assumes agents read *uniform random
/// bits*; `SmallRng` is the engine's stand-in for that random tape.
pub type SimRng = SmallRng;

/// Creates the simulation RNG for a given seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: a bijective mixer with good avalanche behaviour.
///
/// Used to derive decorrelated child seeds from `(base, stream)` pairs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// `derive_seed(s, i) != derive_seed(s, j)` for `i != j` (the mixer is a
/// bijection applied to distinct inputs), so trials never share a stream.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Samples a geometric random variable with success probability 1/2.
///
/// Defined as in the paper: the number of fair-coin flips up to and including
/// the first heads, so the support is `{1, 2, 3, ...}` and the expectation
/// is 2. This is the distribution every agent samples for `logSize2` and `gr`.
pub fn geometric_half(rng: &mut impl Rng) -> u64 {
    let mut count = 1;
    // Draw 64 coin flips at a time; the position of the first set bit is the
    // number of failures observed in this block.
    loop {
        let block: u64 = rng.gen();
        if block != 0 {
            return count + block.trailing_zeros() as u64;
        }
        count += 64;
    }
}

/// Samples a geometric random variable with success probability `p` in (0,1].
///
/// Support `{1, 2, ...}`; expectation `1/p`. Used by the analysis crate's
/// Monte-Carlo checks of the general tail bounds (Lemma D.5).
pub fn geometric(p: f64, rng: &mut impl Rng) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
    if p >= 1.0 {
        return 1;
    }
    // Inversion method: ceil(ln U / ln(1-p)) is geometric on {1, 2, ...}.
    // ln_1p keeps the denominator accurate for tiny p, where computing
    // (1.0 - p).ln() would round to 0 and overflow the run length.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / (-p).ln_1p()).ceil();
    if g < 1.0 {
        1
    } else {
        g as u64
    }
}

/// Natural log of the gamma function for `x > 0` (Lanczos approximation,
/// `g = 7`, 9 coefficients; relative error below `1e-13` over the range the
/// samplers use).
///
/// Drives the log-binomial-coefficient computations of the bulk samplers
/// below and the batched simulator's birthday-collision CDF.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // published Lanczos constants, kept verbatim
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let z = x - 1.0;
    let mut sum = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        sum += c / (z + i as f64);
    }
    let base = z + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * base.ln() - base + sum.ln()
}

/// Entries below this are served from the precomputed `ln k!` table; larger
/// arguments use the Stirling series (whose error is far below f64 epsilon
/// by then).
const LN_FACT_TABLE_SIZE: usize = 4096;

/// Lazily built table of `ln k!` for `k < LN_FACT_TABLE_SIZE`, each entry
/// computed independently with [`ln_gamma`] so no rounding error accumulates.
static LN_FACT: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();

#[inline]
fn ln_fact_table() -> &'static [f64] {
    LN_FACT.get_or_init(|| {
        (0..LN_FACT_TABLE_SIZE)
            .map(|k| ln_gamma(k as f64 + 1.0))
            .collect()
    })
}

/// `ln k!` in O(1): table lookup below 4096, Stirling series above.
///
/// This is the hot scalar under every batched-simulator hypergeometric draw
/// (9 evaluations per pmf-at-mode), so it avoids the full Lanczos sum: the
/// Stirling tail `1/(12x) - 1/(360x³)` already has relative error below
/// `1e-16` for `x ≥ 4096`.
#[inline]
pub fn ln_factorial(k: u64) -> f64 {
    let table = ln_fact_table();
    if (k as usize) < table.len() {
        table[k as usize]
    } else {
        const HALF_LN_TWO_PI: f64 = 0.918_938_533_204_672_7;
        let x = k as f64 + 1.0;
        let inv = 1.0 / x;
        let inv2 = inv * inv;
        (x - 0.5) * x.ln() - x + HALF_LN_TWO_PI + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0))
    }
}

/// `ln C(n, k)`: log binomial coefficient.
#[inline]
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Shared two-sided "chop-down from the mode" inversion.
///
/// Given the pmf value at the mode and multiplicative ratios
/// `pmf(x+1)/pmf(x)` and `pmf(x-1)/pmf(x)`, walks outward from the mode
/// accumulating probability until the uniform draw `u` is consumed. Expected
/// work is `O(σ)` of the distribution, and no pmf is ever computed far from
/// the mode, so nothing underflows even when the support is huge.
pub(crate) fn chop_down_from_mode(
    mode: u64,
    pmf_mode: f64,
    support: (u64, u64),
    ratio_up: impl Fn(u64) -> f64,
    ratio_down: impl Fn(u64) -> f64,
    u: f64,
) -> u64 {
    let (lo_s, hi_s) = support;
    debug_assert!((lo_s..=hi_s).contains(&mode));
    let mut acc = pmf_mode;
    if u < acc {
        return mode;
    }
    let (mut lo, mut hi) = (mode, mode);
    let (mut p_lo, mut p_hi) = (pmf_mode, pmf_mode);
    loop {
        let mut advanced = false;
        if hi < hi_s {
            p_hi *= ratio_up(hi);
            hi += 1;
            acc += p_hi;
            if u < acc {
                return hi;
            }
            advanced = true;
        }
        if lo > lo_s {
            p_lo *= ratio_down(lo);
            lo -= 1;
            acc += p_lo;
            if u < acc {
                return lo;
            }
            advanced = true;
        }
        if !advanced {
            // The walk covered the entire support; `u` exceeded the
            // accumulated mass only through floating-point leakage
            // (total ≈ 1 - 1e-15). Return the mode as the highest-mass value.
            return mode;
        }
    }
}

/// Samples `Binomial(n, p)`: successes in `n` independent trials of
/// probability `p`.
///
/// Exact inversion from the mode in `O(√(n p (1-p)))` expected time; no
/// normal approximation is involved, so small counts are exactly
/// distributed — the batched simulator relies on this to never oversample a
/// state's population.
pub fn binomial(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(n, 1.0 - p, rng);
    }
    let mode = (((n + 1) as f64) * p) as u64;
    let mode = mode.min(n);
    let ln_pmf_mode =
        ln_choose(n, mode) + mode as f64 * p.ln() + (n - mode) as f64 * (1.0 - p).ln();
    let odds = p / (1.0 - p);
    let u: f64 = rng.gen();
    chop_down_from_mode(
        mode,
        ln_pmf_mode.exp(),
        (0, n),
        |x| ((n - x) as f64 / (x + 1) as f64) * odds,
        |x| (x as f64 / (n - x + 1) as f64) / odds,
        u,
    )
}

/// Samples `Hypergeometric(total, successes, draws)`: the number of marked
/// items among `draws` drawn without replacement from a population of
/// `total` items of which `successes` are marked.
///
/// Exact inversion from the mode, `O(σ)` expected time. This is the
/// workhorse of the batched simulator: every batch realizes its multivariate
/// state-count splits as iterated conditional hypergeometric draws.
pub fn hypergeometric(total: u64, successes: u64, draws: u64, rng: &mut impl Rng) -> u64 {
    assert!(
        successes <= total && draws <= total,
        "hypergeometric parameters out of range: total {total}, successes {successes}, draws {draws}"
    );
    // Degenerate corners short-circuit (and keep the mode formula safe).
    if draws == 0 || successes == 0 {
        return 0;
    }
    if successes == total {
        return draws;
    }
    if draws == total {
        return successes;
    }
    let lo_s = (draws + successes).saturating_sub(total);
    let hi_s = draws.min(successes);
    let mode = ((draws + 1) as f64 * (successes + 1) as f64 / (total + 2) as f64) as u64;
    let mode = mode.clamp(lo_s, hi_s);
    let ln_pmf_mode = ln_choose(successes, mode) + ln_choose(total - successes, draws - mode)
        - ln_choose(total, draws);
    let misses = total - successes;
    let u: f64 = rng.gen();
    chop_down_from_mode(
        mode,
        ln_pmf_mode.exp(),
        (lo_s, hi_s),
        |x| {
            ((successes - x) as f64 * (draws - x) as f64)
                / ((x + 1) as f64 * (misses + x + 1 - draws) as f64)
        },
        |x| {
            (x as f64 * (misses + x - draws) as f64)
                / ((successes - x + 1) as f64 * (draws - x + 1) as f64)
        },
        u,
    )
}

/// Samples a multivariate hypergeometric split: draws `draws` items without
/// replacement from classes with sizes `counts` and returns how many came
/// from each class.
///
/// Realized as iterated conditional (univariate) hypergeometric draws — the
/// standard exact decomposition. Panics if `draws` exceeds the population.
pub fn multinomial_hypergeometric(counts: &[u64], draws: u64, rng: &mut impl Rng) -> Vec<u64> {
    let mut remaining_total: u64 = counts.iter().sum();
    assert!(
        draws <= remaining_total,
        "cannot draw {draws} from population of {remaining_total}"
    );
    let mut remaining_draws = draws;
    let mut out = vec![0u64; counts.len()];
    for (i, &c) in counts.iter().enumerate() {
        if remaining_draws == 0 {
            break;
        }
        if remaining_total == c {
            // Only this and later classes remain; the conditional draw over
            // the final class is deterministic.
            out[i] = remaining_draws;
            break;
        }
        let x = hypergeometric(remaining_total, c, remaining_draws, rng);
        out[i] = x;
        remaining_draws -= x;
        remaining_total -= c;
    }
    out
}

/// Samples a multinomial split with replacement: `draws` independent trials
/// over categories with (unnormalized, non-negative) `weights`, realized as
/// iterated conditional binomial draws.
pub fn multinomial_conditional(draws: u64, weights: &[f64], rng: &mut impl Rng) -> Vec<u64> {
    let mut weight_left: f64 = weights.iter().sum();
    assert!(
        weight_left > 0.0 && weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative with positive sum"
    );
    let mut draws_left = draws;
    let mut out = vec![0u64; weights.len()];
    for (i, &w) in weights.iter().enumerate() {
        if draws_left == 0 {
            break;
        }
        if i + 1 == weights.len() {
            out[i] = draws_left;
            break;
        }
        let p = (w / weight_left).clamp(0.0, 1.0);
        let x = binomial(draws_left, p, rng);
        out[i] = x;
        draws_left -= x;
        weight_left -= w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_distinct_streams() {
        let base = 42;
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(base, i)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn derive_seed_distinct_bases() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }

    #[test]
    fn geometric_half_mean_is_two() {
        let mut rng = rng_from_seed(7);
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric_half(&mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean} far from 2");
    }

    #[test]
    fn geometric_half_support_starts_at_one() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            assert!(geometric_half(&mut rng) >= 1);
        }
    }

    #[test]
    fn geometric_general_matches_half() {
        let mut rng = rng_from_seed(11);
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric(0.5, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean} far from 2");
    }

    #[test]
    fn geometric_general_mean_one_over_p() {
        let mut rng = rng_from_seed(13);
        let p = 0.2;
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| geometric(p, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean {mean} far from 5");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut rng = rng_from_seed(17);
        for _ in 0..100 {
            assert_eq!(geometric(1.0, &mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1]")]
    fn geometric_rejects_zero_p() {
        let mut rng = rng_from_seed(19);
        geometric(0.0, &mut rng);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(5);
        let mut b = rng_from_seed(5);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // ln 100! computed directly.
        let direct: f64 = (1..=100u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_gamma(101.0) - direct).abs() < 1e-9);
    }

    #[test]
    fn ln_factorial_agrees_with_ln_gamma_across_boundary() {
        // Spot-check the table region, the Stirling region, and the seam.
        for k in [
            0u64, 1, 2, 10, 100, 4094, 4095, 4096, 4097, 100_000, 10_000_000,
        ] {
            let exact = ln_gamma(k as f64 + 1.0);
            let fast = ln_factorial(k);
            let tol = 1e-11 * exact.abs().max(1.0);
            assert!(
                (fast - exact).abs() < tol,
                "ln {k}! : fast {fast} vs ln_gamma {exact}"
            );
        }
    }

    /// Checks an empirical mean against its exact value within 3σ of the
    /// sample-mean distribution (σ_mean = sd / √trials).
    fn assert_mean_within_3_sigma(samples: &[f64], mean: f64, variance: f64, label: &str) {
        let trials = samples.len() as f64;
        let empirical = samples.iter().sum::<f64>() / trials;
        let sigma_mean = (variance / trials).sqrt();
        assert!(
            (empirical - mean).abs() < 3.0 * sigma_mean.max(1e-12),
            "{label}: empirical mean {empirical} vs expected {mean} ± {sigma_mean}"
        );
        // Variance sanity: within 20% (loose; 3σ bounds on sample variance
        // would need fourth moments).
        if variance > 0.0 {
            let emp_var = samples
                .iter()
                .map(|x| (x - empirical) * (x - empirical))
                .sum::<f64>()
                / (trials - 1.0);
            assert!(
                (emp_var - variance).abs() < 0.2 * variance,
                "{label}: empirical var {emp_var} vs expected {variance}"
            );
        }
    }

    #[test]
    fn binomial_moments() {
        let mut rng = rng_from_seed(101);
        let (n, p) = (400u64, 0.3);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| binomial(n, p, &mut rng) as f64)
            .collect();
        let mean = n as f64 * p;
        let var = n as f64 * p * (1.0 - p);
        assert_mean_within_3_sigma(&samples, mean, var, "binomial(400, 0.3)");
    }

    #[test]
    fn binomial_high_p_uses_complement() {
        let mut rng = rng_from_seed(103);
        let (n, p) = (50u64, 0.9);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| binomial(n, p, &mut rng) as f64)
            .collect();
        assert_mean_within_3_sigma(
            &samples,
            n as f64 * p,
            n as f64 * p * (1.0 - p),
            "binomial(50, 0.9)",
        );
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = rng_from_seed(105);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(10, 0.0, &mut rng), 0);
        assert_eq!(binomial(10, 1.0, &mut rng), 10);
        for _ in 0..1000 {
            assert!(binomial(5, 0.5, &mut rng) <= 5);
        }
    }

    #[test]
    fn hypergeometric_moments() {
        let mut rng = rng_from_seed(107);
        let (total, successes, draws) = (1_000_000u64, 400_000u64, 900u64);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| hypergeometric(total, successes, draws, &mut rng) as f64)
            .collect();
        let p = successes as f64 / total as f64;
        let mean = draws as f64 * p;
        let fpc = (total - draws) as f64 / (total - 1) as f64;
        let var = draws as f64 * p * (1.0 - p) * fpc;
        assert_mean_within_3_sigma(&samples, mean, var, "hypergeometric(1e6, 4e5, 900)");
    }

    #[test]
    fn hypergeometric_small_population_moments() {
        let mut rng = rng_from_seed(109);
        let (total, successes, draws) = (60u64, 25u64, 40u64);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| hypergeometric(total, successes, draws, &mut rng) as f64)
            .collect();
        let p = successes as f64 / total as f64;
        let fpc = (total - draws) as f64 / (total - 1) as f64;
        assert_mean_within_3_sigma(
            &samples,
            draws as f64 * p,
            draws as f64 * p * (1.0 - p) * fpc,
            "hypergeometric(60, 25, 40)",
        );
    }

    #[test]
    fn hypergeometric_respects_support() {
        let mut rng = rng_from_seed(111);
        for _ in 0..5_000 {
            // Support is [draws + successes - total, min(draws, successes)] = [5, 10].
            let x = hypergeometric(20, 15, 10, &mut rng);
            assert!((5..=10).contains(&x), "out of support: {x}");
        }
        assert_eq!(hypergeometric(10, 10, 4, &mut rng), 4);
        assert_eq!(hypergeometric(10, 4, 10, &mut rng), 4);
        assert_eq!(hypergeometric(10, 0, 5, &mut rng), 0);
        assert_eq!(hypergeometric(10, 5, 0, &mut rng), 0);
    }

    #[test]
    fn multivariate_hypergeometric_is_conserving_and_unbiased() {
        let mut rng = rng_from_seed(113);
        let counts = [500u64, 300, 150, 50];
        let draws = 200u64;
        let trials = 20_000;
        let mut sums = [0f64; 4];
        for _ in 0..trials {
            let split = multinomial_hypergeometric(&counts, draws, &mut rng);
            assert_eq!(split.iter().sum::<u64>(), draws);
            for (i, &x) in split.iter().enumerate() {
                assert!(x <= counts[i], "class {i} oversampled: {x}");
                sums[i] += x as f64;
            }
        }
        let total: u64 = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let mean = sums[i] / trials as f64;
            let p = c as f64 / total as f64;
            let expect = draws as f64 * p;
            let fpc = (total - draws) as f64 / (total - 1) as f64;
            let sigma_mean = (draws as f64 * p * (1.0 - p) * fpc / trials as f64).sqrt();
            assert!(
                (mean - expect).abs() < 3.0 * sigma_mean,
                "class {i}: mean {mean} vs {expect} ± {sigma_mean}"
            );
        }
    }

    #[test]
    fn multinomial_conditional_is_conserving_and_unbiased() {
        let mut rng = rng_from_seed(115);
        let weights = [2.0f64, 5.0, 3.0];
        let draws = 120u64;
        let trials = 20_000;
        let mut sums = [0f64; 3];
        for _ in 0..trials {
            let split = multinomial_conditional(draws, &weights, &mut rng);
            assert_eq!(split.iter().sum::<u64>(), draws);
            for (i, &x) in split.iter().enumerate() {
                sums[i] += x as f64;
            }
        }
        let wsum: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let mean = sums[i] / trials as f64;
            let p = w / wsum;
            let expect = draws as f64 * p;
            let sigma_mean = (draws as f64 * p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (mean - expect).abs() < 3.0 * sigma_mean,
                "class {i}: mean {mean} vs {expect} ± {sigma_mean}"
            );
        }
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let run = |seed| {
            let mut rng = rng_from_seed(seed);
            (
                binomial(1000, 0.25, &mut rng),
                hypergeometric(10_000, 3_000, 500, &mut rng),
                multinomial_hypergeometric(&[10, 20, 30], 15, &mut rng),
            )
        };
        assert_eq!(run(9), run(9));
    }
}
