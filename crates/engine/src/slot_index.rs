//! Open-addressed state → slot index shared by the count engines.
//!
//! [`CountConfiguration`](crate::count_sim::CountConfiguration) and
//! [`BatchedCountSim`](crate::batch::BatchedCountSim) both need a
//! state → slot lookup on their hot paths (one to four probes per
//! interaction). A `BTreeMap` pays a pointer chase plus an `Ord` comparison
//! per tree level; this module replaces it with a flat open-addressed table:
//! FNV-1a seeded, power-of-two capacity, linear probing, and tombstone-free
//! — deletions repair the probe invariant by backward shifting, and growth
//! rebuilds the whole table (entries are 4-byte slot ids, so a rebuild is a
//! cache-friendly sweep).
//!
//! The index stores **only slot ids**. The caller owns the slot-indexed
//! state array and supplies equality/rehash closures over it, so the states
//! live exactly once (a struct-of-arrays layout: probing touches the dense
//! bucket array first and the caller's state array only on hash hits).
//! Crucially the index is *derivable* state — a pure function of the
//! caller's `(states, free)` arrays — so snapshots never serialize it and
//! GC renames rebuild it in rank order without touching slot assignment.
//!
//! # Observability
//!
//! Each index keeps three plain counters — lookups, total probe steps, and
//! growth/rebuild sweeps ([`SlotIndex::stats`]) — that the owning engine
//! flushes into a [`pp_telemetry::Metrics`] registry at its adaptive
//! checkpoints. They are `Cell`s bumped on paths the index already walks,
//! so counting costs one untyped add per probe and observes nothing the
//! trajectory depends on.

use std::cell::Cell;
use std::hash::{Hash, Hasher};

/// The count engines' hasher: slot lookups run a few times per interaction
/// on record states with many integer fields, where SipHash's per-write
/// overhead dominates the whole lookup. FNV-seeded and deterministic across
/// processes, which is also a feature — seeded trajectories must not vary
/// with a process-random hash key (nothing may depend on iteration order
/// anyway; state-ordered views sort explicitly).
///
/// Integer writes — the entirety of a derived `Hash` over a record of
/// scalar fields — fold **one word at a time** (rotate, xor, multiply; the
/// Fx/rustc-hash recipe), so hashing an 80-byte record costs ~10 serial
/// multiplies instead of the 80 a byte-at-a-time loop would. Raw byte
/// slices still stream through classic FNV-1a a byte at a time.
pub struct FnvHasher(u64);

/// Multiplier for the word-at-a-time fold (the rustc-hash constant: odd,
/// high entropy, empirically strong under a ≤½-load linear-probe table).
const WORD_PRIME: u64 = 0x517c_c1b7_2722_0a95;

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl FnvHasher {
    /// Folds one 64-bit word into the state: rotate (so field order
    /// matters beyond xor cancellation), xor, multiply.
    #[inline]
    fn mix_word(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(WORD_PRIME);
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix_word(i as u64);
        self.mix_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix_word(i as u64);
    }
}

/// FNV-1a hash of any `Hash` value, finished through a Fibonacci multiply so
/// the low bits (the ones a power-of-two mask keeps) mix the whole word.
#[inline]
pub fn fnv_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FnvHasher::default();
    value.hash(&mut h);
    // FNV's low bits are weak for short keys; fold the high bits down.
    h.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const EMPTY: u32 = u32::MAX;

/// Open-addressed hash index mapping caller-hashed keys to `u32` slot ids.
///
/// The caller supplies the hash at insert/lookup time and an equality
/// closure resolving a candidate slot id against its own state storage, so
/// the index itself is generic over nothing and stores 4 bytes per bucket.
///
/// Invariants: capacity is a power of two, load factor ≤ 1/2 (rebuild on
/// growth), probing is linear, and [`SlotIndex::remove`] backward-shifts so
/// no tombstones exist — every lookup terminates at the first `EMPTY`
/// bucket.
#[derive(Clone, Debug)]
pub struct SlotIndex {
    buckets: Vec<u32>,
    mask: usize,
    len: usize,
    /// Telemetry: [`SlotIndex::get`] calls since construction.
    lookups: Cell<u64>,
    /// Telemetry: total buckets inspected by those lookups (≥ `lookups`;
    /// the ratio is the mean probe length).
    probes: Cell<u64>,
    /// Telemetry: growth doublings plus wholesale [`SlotIndex::rebuild`]s.
    rebuilds: Cell<u64>,
}

/// A point-in-time copy of one index's telemetry counters (see
/// [`SlotIndex::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotIndexStats {
    /// [`SlotIndex::get`] calls.
    pub lookups: u64,
    /// Total buckets inspected across those calls.
    pub probes: u64,
    /// Growth + rebuild sweeps.
    pub rebuilds: u64,
}

impl Default for SlotIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an index sized for `n` entries without rebuilds.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(4) * 2).next_power_of_two();
        Self {
            buckets: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
            lookups: Cell::new(0),
            probes: Cell::new(0),
            rebuilds: Cell::new(0),
        }
    }

    /// Telemetry counters accumulated since construction.
    pub fn stats(&self) -> SlotIndexStats {
        SlotIndexStats {
            lookups: self.lookups.get(),
            probes: self.probes.get(),
            rebuilds: self.rebuilds.get(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the slot whose key hashes to `hash` and satisfies `eq`.
    /// `eq(slot)` must compare the probe key against the caller's state for
    /// `slot`.
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.lookups.set(self.lookups.get() + 1);
        let mut i = (hash as usize) & self.mask;
        loop {
            self.probes.set(self.probes.get() + 1);
            let slot = self.buckets[i];
            if slot == EMPTY {
                return None;
            }
            if eq(slot) {
                return Some(slot);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `slot` under `hash`. The caller must have checked the key is
    /// absent ([`SlotIndex::get`]); duplicate keys would shadow each other.
    /// `rehash(slot)` recomputes the hash of an existing slot's key — needed
    /// only when the insert triggers a growth rebuild.
    pub fn insert(&mut self, hash: u64, slot: u32, rehash: impl FnMut(u32) -> u64) {
        debug_assert_ne!(slot, EMPTY, "slot id {slot} is the empty sentinel");
        if (self.len + 1) * 2 > self.buckets.len() {
            self.grow(rehash);
        }
        let mut i = (hash as usize) & self.mask;
        while self.buckets[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.buckets[i] = slot;
        self.len += 1;
    }

    /// Removes the entry for `slot` stored under `hash`, repairing the probe
    /// chain by backward shifting (no tombstones). Returns whether the entry
    /// was present. `rehash(slot)` recomputes the hash of an existing slot's
    /// key, used to decide which entries may shift back.
    pub fn remove(&mut self, hash: u64, slot: u32, mut rehash: impl FnMut(u32) -> u64) -> bool {
        let mut i = (hash as usize) & self.mask;
        loop {
            let cur = self.buckets[i];
            if cur == EMPTY {
                return false;
            }
            if cur == slot {
                break;
            }
            i = (i + 1) & self.mask;
        }
        // Backward-shift deletion: walk the cluster after `i`; any entry
        // whose home bucket lies outside the cyclic gap (hole, current] can
        // fill the hole without breaking its own probe chain.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        loop {
            let cur = self.buckets[j];
            if cur == EMPTY {
                break;
            }
            let home = (rehash(cur) as usize) & self.mask;
            // `home` must not sit in the cyclic range (hole, j] for the move
            // to preserve reachability of `cur` from `home`.
            let dist_home = j.wrapping_sub(home) & self.mask;
            let dist_hole = j.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.buckets[hole] = cur;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.buckets[hole] = EMPTY;
        self.len -= 1;
        true
    }

    /// Discards all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.buckets.fill(EMPTY);
        self.len = 0;
    }

    /// Rebuilds the index from scratch over `slots`, hashing each through
    /// `rehash` — the GC-rename / snapshot-restore path, where slot contents
    /// changed wholesale and incremental repair would be slower than a
    /// sweep.
    pub fn rebuild(
        &mut self,
        slots: impl Iterator<Item = u32>,
        mut rehash: impl FnMut(u32) -> u64,
    ) {
        self.rebuilds.set(self.rebuilds.get() + 1);
        self.clear();
        for slot in slots {
            debug_assert_ne!(slot, EMPTY, "slot id {slot} is the empty sentinel");
            if (self.len + 1) * 2 > self.buckets.len() {
                self.grow(&mut rehash);
            }
            let mut i = (rehash(slot) as usize) & self.mask;
            while self.buckets[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.buckets[i] = slot;
            self.len += 1;
        }
    }

    /// Doubles capacity and reinserts every entry (tombstone-free growth).
    fn grow(&mut self, mut rehash: impl FnMut(u32) -> u64) {
        self.rebuilds.set(self.rebuilds.get() + 1);
        let cap = (self.buckets.len() * 2).max(8);
        let old = std::mem::replace(&mut self.buckets, vec![EMPTY; cap]);
        self.mask = cap - 1;
        for slot in old {
            if slot == EMPTY {
                continue;
            }
            let mut i = (rehash(slot) as usize) & self.mask;
            while self.buckets[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.buckets[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference harness: a `Vec<u64>` of keys indexed by slot id, with the
    /// index probed through `fnv_hash` like the engines do.
    struct Harness {
        keys: Vec<u64>,
        index: SlotIndex,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                keys: Vec::new(),
                index: SlotIndex::new(),
            }
        }

        fn get(&self, key: u64) -> Option<u32> {
            self.index
                .get(fnv_hash(&key), |slot| self.keys[slot as usize] == key)
        }

        fn insert(&mut self, key: u64) -> u32 {
            assert!(self.get(key).is_none());
            let slot = u32::try_from(self.keys.len()).unwrap();
            self.keys.push(key);
            let keys = &self.keys;
            self.index
                .insert(fnv_hash(&key), slot, |s| fnv_hash(&keys[s as usize]));
            slot
        }

        fn remove(&mut self, key: u64) -> bool {
            match self.get(key) {
                Some(slot) => {
                    let keys = &self.keys;
                    self.index
                        .remove(fnv_hash(&key), slot, |s| fnv_hash(&keys[s as usize]))
                }
                None => false,
            }
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut h = Harness::new();
        for k in 0..100u64 {
            h.insert(k * 977);
        }
        for k in 0..100u64 {
            assert_eq!(h.get(k * 977), Some(k as u32));
        }
        assert_eq!(h.get(13), None);
        for k in (0..100u64).step_by(2) {
            assert!(h.remove(k * 977));
        }
        for k in 0..100u64 {
            let want = (k % 2 == 1).then_some(k as u32);
            assert_eq!(h.get(k * 977), want, "key {k} after removals");
        }
        assert_eq!(h.index.len(), 50);
    }

    #[test]
    fn backward_shift_preserves_colliding_chains() {
        // Force a tiny table so linear-probe clusters actually form, then
        // delete from the middle of clusters and verify every survivor is
        // still reachable.
        let mut h = Harness::new();
        for k in 0..32u64 {
            h.insert(k);
        }
        for k in [3u64, 17, 4, 30, 0, 11] {
            assert!(h.remove(k));
            assert!(!h.remove(k), "double remove of {k} reported success");
        }
        for k in 0..32u64 {
            let gone = [3u64, 17, 4, 30, 0, 11].contains(&k);
            assert_eq!(h.get(k).is_none(), gone, "key {k}");
        }
    }

    #[test]
    fn stats_count_lookups_probes_and_rebuilds() {
        let mut h = Harness::new();
        for k in 0..100u64 {
            h.insert(k * 977); // each insert runs one assert-absent get
        }
        let s = h.index.stats();
        assert_eq!(s.lookups, 100);
        assert!(s.probes >= s.lookups, "every lookup probes at least once");
        assert!(
            s.rebuilds >= 1,
            "100 inserts must outgrow the initial 8 buckets"
        );
        let before = h.index.stats();
        assert_eq!(h.get(977), Some(1));
        let after = h.index.stats();
        assert_eq!(after.lookups, before.lookups + 1);
        assert!(after.probes > before.probes);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut h = Harness::new();
        for k in 0..200u64 {
            h.insert(k.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        let keys = h.keys.clone();
        let mut rebuilt = SlotIndex::new();
        rebuilt.rebuild(0..keys.len() as u32, |s| fnv_hash(&keys[s as usize]));
        for (slot, key) in keys.iter().enumerate() {
            assert_eq!(
                rebuilt.get(fnv_hash(key), |s| keys[s as usize] == *key),
                Some(slot as u32)
            );
        }
        assert_eq!(rebuilt.len(), h.index.len());
    }
}
