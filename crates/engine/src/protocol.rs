//! The [`Protocol`] trait: a uniform transition algorithm.
//!
//! Uniformity — the central hypothesis of the paper — is captured
//! structurally: the transition receives only the two interacting states and a
//! source of random bits. There is no channel through which the population
//! size `n` (or any function of it) could reach the transition logic, so every
//! implementation of this trait is a uniform protocol by construction.

use crate::rng::SimRng;

/// A uniform population protocol over states of type `Self::State`.
///
/// The two interacting agents are presented in the paper's `(rec, sen)`
/// order: the *receiver* first, the *sender* second. Protocols that do not
/// care about the order (symmetric transitions) simply treat them alike;
/// Appendix B's synthetic-coin protocols use the order as a fair coin flip.
pub trait Protocol {
    /// Per-agent state. For the paper's protocols this is a struct of integer
    /// fields mirroring the pseudocode.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// The common initial state of every agent in a *leaderless* start.
    ///
    /// Leader-driven variants (Theorem 3.13) plant the leader afterwards via
    /// [`crate::sim::AgentSim::set_state`].
    fn initial_state(&self) -> Self::State;

    /// Applies one interaction, mutating both agents in place.
    ///
    /// `rng` supplies the uniform random bits of the paper's randomized
    /// transition-relation model. Deterministic protocols ignore it.
    fn interact(&self, rec: &mut Self::State, sen: &mut Self::State, rng: &mut SimRng);
}

/// A protocol whose initial states are sampled rather than identical.
///
/// The paper's main protocols start all agents in one state, but some
/// baselines (e.g. majority with an input split) initialize agents from an
/// input distribution. `SeededInit` expresses "the i-th agent of n starts in
/// state f(i)" *for the experiment harness only* — the transition algorithm
/// itself remains uniform.
pub trait SeededInit: Protocol {
    /// State of agent `index` in a population of `n` agents.
    ///
    /// This is harness-level initialization (choosing the protocol's *input*),
    /// not part of the transition algorithm, so it does not violate
    /// uniformity.
    fn init_state(&self, index: usize, n: usize) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A toy protocol: both agents adopt the max of their values.
    struct MaxProtocol;

    impl Protocol for MaxProtocol {
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn interact(&self, rec: &mut u32, sen: &mut u32, _rng: &mut SimRng) {
            let m = (*rec).max(*sen);
            *rec = m;
            *sen = m;
        }
    }

    /// A toy randomized protocol: receiver re-rolls a coin.
    struct CoinProtocol;

    impl Protocol for CoinProtocol {
        type State = bool;

        fn initial_state(&self) -> bool {
            false
        }

        fn interact(&self, rec: &mut bool, _sen: &mut bool, rng: &mut SimRng) {
            *rec = rng.gen();
        }
    }

    #[test]
    fn max_protocol_propagates() {
        let p = MaxProtocol;
        let mut a = 3;
        let mut b = 7;
        let mut rng = crate::rng::rng_from_seed(0);
        p.interact(&mut a, &mut b, &mut rng);
        assert_eq!((a, b), (7, 7));
    }

    #[test]
    fn coin_protocol_uses_randomness() {
        let p = CoinProtocol;
        let mut rng = crate::rng::rng_from_seed(1);
        let mut heads = 0;
        for _ in 0..1000 {
            let mut rec = false;
            let mut sen = false;
            p.interact(&mut rec, &mut sen, &mut rng);
            if rec {
                heads += 1;
            }
        }
        assert!((400..600).contains(&heads), "heads {heads} not near 500");
    }
}
