//! Deterministic fixed-partition parallelism for the batched engine's
//! batch fill.
//!
//! The batched engine's per-batch work — the receiver/sender pairing
//! contingency and its per-pair multinomial splits — is independent across
//! disjoint receiver rows *given* the senders each row group is allocated.
//! This module provides the machinery [`crate::batch::BatchedCountSim`]
//! uses to exploit that:
//!
//! * a **work-stealing-free scoped map** ([`par_map_indexed`] and the
//!   rayon-shaped [`par_map_chunks`]) built on `crossbeam::scope`
//!   (`std::thread::scope` underneath) plus `crossbeam::channel` fan-in —
//!   zero new dependencies, `#![forbid(unsafe_code)]`-clean;
//! * a **deterministic contiguous partition** of the reactive receiver
//!   rows ([`partition_by_mass`]), balanced by receiver mass;
//! * a **process-global worker cap** ([`set_fill_thread_cap`]) the sweep
//!   runner uses to keep `trial_threads × fill_threads` at the machine.
//!
//! ## The determinism contract
//!
//! Everything observable about a parallel fill is independent of the
//! worker count:
//!
//! * the *partition* into subranges depends only on the batch's receiver
//!   multiset (never on how many threads execute it);
//! * each subrange draws from its **own RNG stream**, seeded
//!   `derive_seed(batch_seed, subrange_index)` — the same discipline
//!   `pp-sweep` uses for per-trial seeds — so no draw ever migrates
//!   between streams;
//! * subrange results are **merged in subrange order** on the caller's
//!   thread.
//!
//! Thread count (and the [`set_fill_thread_cap`] clamp) therefore affect
//! wall clock only: a fill at 1, 2, or 8 workers produces byte-identical
//! deltas, which `tests/parallel_determinism.rs` holds the whole engine
//! to, trajectory for trajectory. Worker threads are *scoped* per fill —
//! there is no persistent pool and no work stealing, so execution order
//! cannot leak into results even in principle.

use std::sync::atomic::{AtomicU64, Ordering};

/// Subranges a parallel fill is split into (when at least that many
/// reactive rows exist). Fixed — **never** derived from the worker count,
/// or the partition (and with it the per-subrange RNG streams) would
/// change with the thread knob and break byte identity.
pub const PAR_SUBRANGES: usize = 8;

/// Process-global upper bound on fill workers (`u64::MAX` = machine
/// limit). See [`set_fill_thread_cap`].
static FILL_THREAD_CAP: AtomicU64 = AtomicU64::new(u64::MAX);

/// Caps the number of worker threads any single parallel fill may use,
/// process-wide. The sweep runner sets this to
/// `max(1, machine_cores / trial_workers)` so `trial_threads ×
/// fill_threads` never oversubscribes the machine. The cap clamps the
/// *worker count only* — never whether the parallel discipline is enabled —
/// so setting it is trajectory-neutral (a cap of 1 runs the same
/// subrange streams inline).
pub fn set_fill_thread_cap(cap: u64) {
    FILL_THREAD_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// The current process-global fill-worker cap (see
/// [`set_fill_thread_cap`]).
pub fn fill_thread_cap() -> u64 {
    FILL_THREAD_CAP.load(Ordering::Relaxed)
}

/// The machine's available parallelism (1 if unknown).
pub fn machine_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1)
}

thread_local! {
    /// Per-thread ambient fill-thread override (the sweep runner installs
    /// a spec's `fill_threads` around each trial, mirroring the ambient
    /// telemetry registry).
    static AMBIENT_FILL_THREADS: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Installs (or with `None` clears) this thread's ambient fill-thread
/// count, consulted by engine constructors after the builder's explicit
/// `.threads(k)` and before the `PP_THREADS` environment knob. Returns the
/// previous value so scoped installers can restore it. `Some(0)` means
/// "explicitly serial" (it beats a set `PP_THREADS`).
pub fn install_fill_threads(threads: Option<u64>) -> Option<u64> {
    AMBIENT_FILL_THREADS.with(|c| c.replace(threads))
}

/// Resolves the effective fill-thread setting for a newly built engine:
/// the thread's ambient override ([`install_fill_threads`]) if installed,
/// else the `PP_THREADS` environment knob. `None` = the classic serial
/// fill; `Some(k)` (`k ≥ 1`) = the parallel-fill discipline, whose bytes
/// do not depend on `k`.
pub(crate) fn resolve_fill_threads() -> Option<u64> {
    match AMBIENT_FILL_THREADS.with(|c| c.get()) {
        Some(0) => None,
        Some(k) => Some(k),
        None => crate::env::fill_threads(),
    }
}

/// The number of worker threads a parallel region of `tasks` tasks
/// actually spawns under a request for `threads`: clamped by the task
/// count, the process-global cap, and the machine. At most 1 means "run
/// inline on the caller's thread".
pub fn effective_workers(threads: u64, tasks: usize) -> u64 {
    threads
        .min(tasks as u64)
        .min(fill_thread_cap())
        .min(machine_parallelism())
        .max(1)
}

/// Maps `f` over the index range `0..count` on at most `threads` scoped
/// worker threads and returns the results **in index order**. Workers take
/// strided indices (worker `w` runs `w, w + W, w + 2W, …`), results fan in
/// over a channel, and the caller reassembles them by index — so the
/// output is independent of scheduling. With an effective worker count of
/// 1 (small `count`, the global cap, or a single-core machine) the map
/// runs inline with no thread spawned at all.
///
/// Panics in `f` propagate to the caller (std scope semantics).
pub fn par_map_indexed<R, F>(count: usize, threads: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = effective_workers(threads, count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    crossbeam::scope(|s| {
        for w in 0..workers as usize {
            let tx = tx.clone();
            let f = &f;
            s.spawn(move |_| {
                let mut i = w;
                while i < count {
                    let r = f(i);
                    tx.send((i, r)).expect("fill result receiver dropped");
                    i += workers as usize;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker dropped an index"))
            .collect()
    })
    .expect("scoped fill worker panicked")
}

/// Rayon-shaped `par_chunks` helper: splits `items` into at most
/// [`PAR_SUBRANGES`] contiguous chunks of (near-)equal length and maps
/// each through `f(chunk_index, chunk)` on at most `threads` scoped
/// workers, returning results in chunk order. The chunk boundaries depend
/// only on `items.len()` — never on the worker count — so output is
/// byte-stable across thread counts, matching the fill discipline.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunks = PAR_SUBRANGES.min(items.len());
    let ranges = partition_by_mass(&vec![1u64; items.len()], chunks);
    par_map_indexed(ranges.len(), threads, |g| f(g, &items[ranges[g].clone()]))
}

/// Partitions `0..masses.len()` into at most `groups` contiguous,
/// non-empty index ranges with (approximately) balanced total mass:
/// group `g` ends at the first index whose cumulative mass reaches
/// `(g + 1)·total / groups`. Deterministic — a pure function of the mass
/// vector — and exhaustive (every index lands in exactly one range).
/// Zero-mass prefixes/suffixes stay attached to their neighbouring group.
pub fn partition_by_mass(masses: &[u64], groups: usize) -> Vec<std::ops::Range<usize>> {
    let len = masses.len();
    if len == 0 {
        return Vec::new();
    }
    let groups = groups.clamp(1, len);
    let total: u128 = masses.iter().map(|&m| m as u128).sum();
    let mut ranges = Vec::with_capacity(groups);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for g in 0..groups {
        // Remaining groups after this one each need at least one index.
        let last_allowed = len - (groups - 1 - g);
        let target = (g as u128 + 1) * total / groups as u128;
        let mut end = start;
        while end < len && (acc < target || end < start + 1) && end < last_allowed {
            acc += masses[end] as u128;
            end += 1;
        }
        if g == groups - 1 {
            end = len;
        }
        ranges.push(start..end);
        start = end;
        if start >= len {
            break;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exhaustively_and_contiguously() {
        for (masses, groups) in [
            (vec![1u64; 10], 3),
            (vec![5, 1, 1, 1, 1, 1], 2),
            (vec![0, 0, 7, 0, 3], 4),
            (vec![9], 8),
            (vec![1, 1], 8),
        ] {
            let ranges = partition_by_mass(&masses, groups);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= groups.max(1).min(masses.len()));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, masses.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                assert!(!w[1].is_empty(), "ranges must be non-empty");
            }
            assert!(!ranges[0].is_empty());
        }
    }

    #[test]
    fn partition_balances_uniform_mass() {
        let ranges = partition_by_mass(&[1u64; 100], 4);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn par_map_indexed_is_order_stable() {
        let serial: Vec<u64> = (0..100).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [1, 2, 8, 64] {
            let mapped = par_map_indexed(100, threads, |i| (i as u64) * 3 + 1);
            assert_eq!(mapped, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_chunks_matches_serial_chunking() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<(usize, u64)> = {
            let ranges = partition_by_mass(&vec![1u64; items.len()], PAR_SUBRANGES);
            ranges
                .iter()
                .enumerate()
                .map(|(g, r)| (g, items[r.clone()].iter().sum()))
                .collect()
        };
        for threads in [1, 3, 8] {
            let got = par_map_chunks(&items, threads, |g, chunk| (g, chunk.iter().sum::<u64>()));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(8, 3), 3.min(machine_parallelism()));
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(1, 10), 1);
    }

    #[test]
    fn ambient_override_wins_and_restores() {
        let prev = install_fill_threads(Some(3));
        assert_eq!(resolve_fill_threads(), Some(3));
        install_fill_threads(Some(0));
        assert_eq!(resolve_fill_threads(), None, "Some(0) = explicitly serial");
        install_fill_threads(prev);
    }
}
