//! State interning: run any agent-level [`Protocol`] on the
//! configuration-vector engines.
//!
//! The count engines ([`CountSim`](crate::count_sim::CountSim),
//! [`crate::batch::BatchedCountSim`], and the
//! [`ConfigSim`](crate::batch::ConfigSim) facade) require a `Copy + Ord`
//! state type because they index configurations by state value. The paper's
//! protocols instead use rich record states (`MainState` and friends) behind
//! the agent-level [`Protocol`] trait. [`Interned`] closes the gap without
//! touching either side: it lazily discovers the *occupied* state space at
//! run time, assigns each distinct state a dense `u32` slot, and exposes the
//! wrapped protocol as a [`CountProtocol`] over those slots. Any existing
//! `Protocol` implementation therefore runs on `CountSim`/`ConfigSim`
//! unchanged — the engine choice becomes an implementation detail instead of
//! a per-protocol decision.
//!
//! Why this is often a big win: a population of `n = 10⁶` agents running
//! `Log-Size-Estimation` occupies far fewer than `n` distinct states
//! (Lemma 3.9 bounds the reachable space by `O(log⁴ n)`), so the
//! configuration vector is tiny compared to the per-agent state array, and
//! convergence predicates cost `O(k)` instead of `O(n)` per check.
//!
//! ## Decoding
//!
//! The id ↔ state mapping lives behind an [`InternerHandle`] (shared `Rc`),
//! so harness code can keep a handle while the simulator owns the protocol
//! and translate ids back into protocol states inside predicates:
//!
//! ```
//! use pp_engine::batch::ConfigSim;
//! use pp_engine::interned::Interned;
//! use pp_engine::protocol::Protocol;
//! use pp_engine::rng::SimRng;
//!
//! struct Epidemic;
//! impl Protocol for Epidemic {
//!     type State = bool;
//!     fn initial_state(&self) -> bool {
//!         false
//!     }
//!     fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
//!         *rec |= *sen;
//!     }
//! }
//!
//! let interned = Interned::new(Epidemic);
//! let handle = interned.handle();
//! let config = interned.config_from_pairs([(false, 999), (true, 1)]);
//! let mut sim = ConfigSim::new(interned, config, 7);
//! // Look states up through the handle per query — raw ids are
//! // invalidated whenever a GC pass compacts the table (see below).
//! let out = sim.run_until(|c| handle.count_of(c, &true) == 1000, 100, f64::MAX);
//! assert!(out.converged);
//! ```
//!
//! ## Non-uniform starts
//!
//! [`Interned`] implements [`CountSeededInit`] whenever the wrapped protocol
//! implements [`SeededInit`], by collapsing the per-index assignment into
//! its multiset (agents are exchangeable, so the interaction process depends
//! on initial states only through their counts). Majority input splits and
//! planted-leader starts thus no longer force the agent simulator.
//!
//! ## Randomness and batching
//!
//! The wrapped `interact` receives the simulation RNG, so randomized
//! protocols are simulated faithfully. Because an arbitrary `interact`
//! cannot enumerate its outcome distribution, `Interned` reports
//! [`CountProtocol::outcomes`] `None` and stays on the sequential engine by
//! default; wrap with [`Interned::deterministic`] to certify that the
//! protocol never reads the RNG, which enables the batched engine through
//! one transition probe per state pair.
//!
//! ## Garbage collection
//!
//! Protocols whose states embed per-interaction counters (the paper's
//! `Log-Size-Estimation` and `Leader-Terminating` record states) mint a
//! fresh state on nearly every interaction, so the table accumulates
//! *dead* entries — states no agent holds any more — without bound on
//! long runs. `Interned` therefore implements the engine GC hooks
//! ([`CountProtocol::table_len`] / [`CountProtocol::collect_table`]):
//! when [`crate::batch::ConfigSim`] observes the table holding several
//! times more slots than the live support at one of its adaptive
//! checkpoints, it asks the adapter to evict every state absent from the
//! configuration and compact the survivors into a dense id prefix,
//! renaming the configuration (and, on the batched engine, resetting the
//! law table) in the same pass. The table is thereby bounded by a small
//! multiple of the *live* support instead of the number of states ever
//! reached — which is what lets the count engines serve counter-churning
//! protocols by default.
//!
//! Collection is invisible to the simulation: eviction preserves the
//! decoded `(state, count)` multiset, renaming preserves the engine's
//! slot layout and relative id order, and no randomness is consumed, so a
//! run with GC is **trajectory-identical** to the same seed without it.
//! The one observable consequence: raw ids obtained from
//! [`InternerHandle::id_of`] are invalidated by a pass (detectable via
//! [`InternerHandle::generation`]). Hold *states* across checkpoints and
//! look ids up per query ([`InternerHandle::count_of`] does exactly
//! that); don't cache raw ids.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::rc::Rc;

use crate::count_sim::{CountConfiguration, CountProtocol, CountSeededInit};
use crate::protocol::{Protocol, SeededInit};
use crate::rng::SimRng;

/// FNV-1a, the interner's hasher: the id lookup runs two to four times per
/// interaction on record states with many integer fields, where SipHash's
/// per-write overhead dominates the whole interning layer. FNV is
/// deterministic across processes, which is also a feature here — nothing
/// in the adapter may depend on iteration order anyway (see
/// [`Interned::initial_config`]), and seeded trajectories must not vary
/// with a process-random hash key.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Dense id ↔ state table, grown lazily as states are discovered and
/// compacted (dead entries evicted, survivors renumbered) when the engine
/// triggers a GC pass.
#[derive(Debug)]
pub struct StateTable<S> {
    states: Vec<S>,
    ids: FnvMap<S, u32>,
    /// Bumped by every [`StateTable::compact`]: ids are only meaningful
    /// within one generation.
    generation: u64,
    /// Total states ever assigned an id, across compactions — the
    /// table-growth telemetry the GC tests assert against.
    total_interned: u64,
}

impl<S: Clone + Eq + Hash> StateTable<S> {
    fn new() -> Self {
        Self {
            states: Vec::new(),
            ids: FnvMap::default(),
            generation: 0,
            total_interned: 0,
        }
    }

    /// Returns the id for `state`, assigning the next dense slot if unseen.
    fn intern(&mut self, state: S) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX distinct states");
        self.states.push(state.clone());
        self.ids.insert(state, id);
        self.total_interned += 1;
        id
    }

    fn get(&self, id: u32) -> &S {
        &self.states[id as usize]
    }

    /// Evicts every id not in `live` and compacts the survivors into the
    /// dense prefix `0..live.len()`, preserving their relative order (the
    /// new id is the old id's rank among the live ids). Returns the
    /// old → new renaming and bumps the generation.
    fn compact(&mut self, live: &[u32]) -> Vec<(u32, u32)> {
        let mut ordered: Vec<u32> = live.to_vec();
        ordered.sort_unstable();
        ordered.dedup();
        let mut states = Vec::with_capacity(ordered.len());
        let mut ids = FnvMap::default();
        ids.reserve(ordered.len());
        let mut renames = Vec::with_capacity(ordered.len());
        for (rank, &old) in ordered.iter().enumerate() {
            let new = u32::try_from(rank).expect("live support fits the old table");
            let state = self.states[old as usize].clone();
            ids.insert(state.clone(), new);
            states.push(state);
            renames.push((old, new));
        }
        self.states = states;
        self.ids = ids;
        self.generation += 1;
        renames
    }

    /// Rebuilds a table from checkpoint parts: the id-ordered state list
    /// plus the generation and telemetry counters. The reverse map is
    /// derived, so the restored table interns and decodes exactly like the
    /// snapshotted one.
    fn from_snapshot_parts(states: Vec<S>, generation: u64, total_interned: u64) -> Self {
        let mut ids = FnvMap::default();
        ids.reserve(states.len());
        for (i, s) in states.iter().enumerate() {
            let id = u32::try_from(i).expect("more than u32::MAX distinct states");
            let prev = ids.insert(s.clone(), id);
            assert!(prev.is_none(), "snapshot has a duplicate interned state");
        }
        Self {
            states,
            ids,
            generation,
            total_interned,
        }
    }
}

/// A cloneable handle onto an [`Interned`] adapter's id ↔ state table.
///
/// Lets harness code decode slot ids inside `run_until` predicates while the
/// simulator owns the protocol (both share the table through an `Rc`).
#[derive(Debug)]
pub struct InternerHandle<S> {
    table: Rc<RefCell<StateTable<S>>>,
}

impl<S> Clone for InternerHandle<S> {
    fn clone(&self) -> Self {
        Self {
            table: Rc::clone(&self.table),
        }
    }
}

impl<S: Clone + Eq + Hash> InternerHandle<S> {
    /// The state behind `id` (clone).
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been assigned (or was evicted by a GC pass).
    pub fn state_of(&self, id: u32) -> S {
        self.table.borrow().get(id).clone()
    }

    /// The id *currently* assigned to `state`, if it is in the table.
    /// Ids are only stable within one [`InternerHandle::generation`]: a GC
    /// pass renumbers the survivors, so look ids up per query instead of
    /// caching them across run checkpoints.
    pub fn id_of(&self, state: &S) -> Option<u32> {
        self.table.borrow().ids.get(state).copied()
    }

    /// Number of distinct states currently in the table (live slots after
    /// the last GC pass, plus everything discovered since).
    pub fn discovered(&self) -> usize {
        self.table.borrow().states.len()
    }

    /// Total states ever assigned an id, across GC passes. The gap to
    /// [`InternerHandle::discovered`] is how much dead weight collection
    /// has reclaimed.
    pub fn total_interned(&self) -> u64 {
        self.table.borrow().total_interned
    }

    /// The table's GC generation: bumped by every collection pass, so
    /// harness code holding raw ids can detect that they went stale.
    pub fn generation(&self) -> u64 {
        self.table.borrow().generation
    }

    /// Decodes a slot-id configuration into `(state, count)` pairs.
    pub fn decode(&self, config: &CountConfiguration<u32>) -> Vec<(S, u64)> {
        let table = self.table.borrow();
        config
            .iter()
            .map(|(&id, &count)| (table.get(id).clone(), count))
            .collect()
    }

    /// The count of agents in `state` within a slot-id configuration
    /// (0 if the state was never discovered).
    pub fn count_of(&self, config: &CountConfiguration<u32>, state: &S) -> u64 {
        self.id_of(state).map_or(0, |id| config.count(&id))
    }
}

/// Adapter exposing an agent-level [`Protocol`] as a [`CountProtocol`] over
/// dense `u32` state ids. See the [module docs](self) for the full story.
#[derive(Debug)]
pub struct Interned<P: Protocol>
where
    P::State: Eq + Hash,
{
    protocol: P,
    table: Rc<RefCell<StateTable<P::State>>>,
    deterministic: bool,
}

impl<P: Protocol> Interned<P>
where
    P::State: Eq + Hash,
{
    /// Wraps `protocol` for the count engines. The adapter assumes the
    /// transition may read the RNG (always correct); use
    /// [`Interned::deterministic`] to enable batching for RNG-free
    /// protocols.
    pub fn new(protocol: P) -> Self {
        Self {
            protocol,
            table: Rc::new(RefCell::new(StateTable::new())),
            deterministic: false,
        }
    }

    /// Wraps a protocol whose `interact` is certified to never read the
    /// RNG: pair outcomes are then probed once and bulk-applied by the
    /// batched engine.
    ///
    /// Certifying a protocol that *does* read the RNG silently freezes each
    /// pair's first sampled outcome into the law table — statistically
    /// wrong, so only use this for genuinely deterministic transitions.
    pub fn deterministic(protocol: P) -> Self {
        Self {
            deterministic: true,
            ..Self::new(protocol)
        }
    }

    /// A handle for decoding slot ids back into protocol states.
    pub fn handle(&self) -> InternerHandle<P::State> {
        InternerHandle {
            table: Rc::clone(&self.table),
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Interns `state` (idempotent) and returns its id.
    pub fn intern_state(&self, state: P::State) -> u32 {
        self.table.borrow_mut().intern(state)
    }

    /// The all-agents-identical initial configuration of `n` agents in
    /// [`Protocol::initial_state`].
    pub fn uniform_config(&self, n: u64) -> CountConfiguration<u32> {
        CountConfiguration::uniform(self.intern_state(self.protocol.initial_state()), n)
    }

    /// Checkpoint accessor: `(id-ordered states, generation,
    /// total_interned, deterministic)` — everything a snapshot needs to
    /// rebuild the adapter exactly.
    pub(crate) fn snapshot_parts(&self) -> (Vec<P::State>, u64, u64, bool) {
        let table = self.table.borrow();
        (
            table.states.clone(),
            table.generation,
            table.total_interned,
            self.deterministic,
        )
    }

    /// Rebuilds an adapter from checkpoint parts (see
    /// [`Interned::snapshot_parts`]). The state list keeps its exact
    /// id-order layout, so a slot-id configuration captured alongside it
    /// decodes — and interns new states — unchanged.
    pub(crate) fn from_snapshot_parts(
        protocol: P,
        states: Vec<P::State>,
        generation: u64,
        total_interned: u64,
        deterministic: bool,
    ) -> Self {
        Self {
            protocol,
            table: Rc::new(RefCell::new(StateTable::from_snapshot_parts(
                states,
                generation,
                total_interned,
            ))),
            deterministic,
        }
    }

    /// Builds a slot-id configuration from protocol-state `(state, count)`
    /// pairs — arbitrary non-uniform starts (planted leaders, input splits).
    pub fn config_from_pairs(
        &self,
        pairs: impl IntoIterator<Item = (P::State, u64)>,
    ) -> CountConfiguration<u32> {
        CountConfiguration::from_pairs(
            pairs
                .into_iter()
                .map(|(state, count)| (self.intern_state(state), count)),
        )
    }
}

impl<P: Protocol> CountProtocol for Interned<P>
where
    P::State: Eq + Hash,
{
    type State = u32;

    fn transition(&self, rec: u32, sen: u32, rng: &mut SimRng) -> (u32, u32) {
        let (mut r, mut s) = {
            let table = self.table.borrow();
            (table.get(rec).clone(), table.get(sen).clone())
        };
        self.protocol.interact(&mut r, &mut s, rng);
        {
            // Null fast path: an interaction that changed neither state
            // (settled epidemics, frozen terminated pairs) keeps its input
            // ids — no hashing, no table writes.
            let table = self.table.borrow();
            if *table.get(rec) == r && *table.get(sen) == s {
                return (rec, sen);
            }
        }
        let mut table = self.table.borrow_mut();
        let r_id = table.intern(r);
        let s_id = table.intern(s);
        (r_id, s_id)
    }

    fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    fn table_len(&self) -> Option<usize> {
        Some(self.table.borrow().states.len())
    }

    fn collect_table(&self, live: &[u32]) -> Option<Vec<(u32, u32)>> {
        Some(self.table.borrow_mut().compact(live))
    }
}

impl<P: Protocol + SeededInit> CountSeededInit for Interned<P>
where
    P::State: Eq + Hash,
{
    /// Collapses the per-index [`SeededInit`] assignment into its multiset:
    /// agents are exchangeable, so the interaction process depends on the
    /// initial states only through their counts. Slots are registered in
    /// id (= first-seen) order, so the configuration layout — and with it
    /// the whole seeded trajectory — is deterministic across processes
    /// (a `HashMap` iteration here would randomize slot order per run).
    fn initial_config(&self, n: u64) -> CountConfiguration<u32> {
        let n_usize = usize::try_from(n).expect("population exceeds usize");
        let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for i in 0..n_usize {
            let id = self.intern_state(self.protocol.init_state(i, n_usize));
            *counts.entry(id).or_insert(0) += 1;
        }
        CountConfiguration::from_pairs(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ConfigSim;
    use crate::count_sim::CountSim;
    use crate::rng::derive_seed;
    use rand::Rng;

    /// Max-propagation epidemic with a record state (not `Copy`).
    struct MaxRecord;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Record {
        value: u64,
        touched: bool,
    }

    impl Protocol for MaxRecord {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, sen: &mut Record, _rng: &mut SimRng) {
            let m = rec.value.max(sen.value);
            rec.value = m;
            sen.value = m;
            rec.touched = true;
            sen.touched = true;
        }
    }

    #[test]
    fn interned_protocol_runs_on_count_sim() {
        let interned = Interned::new(MaxRecord);
        let handle = interned.handle();
        let config = interned.config_from_pairs([
            (
                Record {
                    value: 9,
                    touched: false,
                },
                1,
            ),
            (
                Record {
                    value: 0,
                    touched: false,
                },
                499,
            ),
        ]);
        let mut sim = CountSim::new(interned, config, 3);
        let out = sim.run_until(
            |c| {
                handle
                    .decode(c)
                    .iter()
                    .all(|(s, _)| s.value == 9 && s.touched)
            },
            100,
            10_000.0,
        );
        assert!(out.converged, "max never propagated");
        assert_eq!(sim.config().population_size(), 500);
    }

    #[test]
    fn deterministic_marker_enables_batching() {
        let interned = Interned::deterministic(MaxRecord);
        let config = interned.uniform_config(100_000);
        let sim = ConfigSim::new(interned, config, 1);
        assert!(sim.is_batched());

        let interned = Interned::new(MaxRecord);
        let config = interned.uniform_config(100_000);
        let sim = ConfigSim::new(interned, config, 1);
        assert!(!sim.is_batched());
    }

    #[test]
    fn batched_interned_run_matches_sequential_statistically() {
        // Completion-time means of the interned max epidemic must agree
        // between engines within sampling error.
        let n = 20_000u64;
        let trials = 30;
        let mean = |batched: bool, stream: u64| -> f64 {
            (0..trials)
                .map(|t| {
                    let interned = Interned::deterministic(MaxRecord);
                    let handle = interned.handle();
                    let config = interned.config_from_pairs([
                        (
                            Record {
                                value: 1,
                                touched: false,
                            },
                            1,
                        ),
                        (
                            Record {
                                value: 0,
                                touched: false,
                            },
                            n - 1,
                        ),
                    ]);
                    let seed = derive_seed(stream, t);
                    let mut sim = if batched {
                        ConfigSim::batched(interned, config, seed)
                    } else {
                        ConfigSim::sequential(interned, config, seed)
                    };
                    let out = sim.run_until(
                        |c| handle.decode(c).iter().all(|(s, _)| s.value == 1),
                        n / 20,
                        f64::MAX,
                    );
                    assert!(out.converged);
                    out.time
                })
                .sum::<f64>()
                / trials as f64
        };
        let m_seq = mean(false, 0x51);
        let m_bat = mean(true, 0x52);
        assert!(
            (m_seq - m_bat).abs() < 0.25 * m_seq,
            "interned engines diverge: sequential {m_seq} vs batched {m_bat}"
        );
    }

    /// Randomized protocol through the interning layer.
    struct CoinFlip;

    impl Protocol for CoinFlip {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, _sen: &mut Record, rng: &mut SimRng) {
            rec.value = rng.gen_range(0..2);
            rec.touched = true;
        }
    }

    #[test]
    fn randomized_interned_protocol_stays_sequential_and_runs() {
        let interned = Interned::new(CoinFlip);
        let handle = interned.handle();
        let config = interned.uniform_config(10_000);
        let mut sim = ConfigSim::new(interned, config, 11);
        assert!(!sim.is_batched());
        sim.steps(40_000);
        let decoded = handle.decode(&sim.config_view());
        let ones: u64 = decoded
            .iter()
            .filter(|(s, _)| s.value == 1)
            .map(|(_, c)| c)
            .sum();
        assert!(
            (3_000..7_000).contains(&ones),
            "coin flips badly skewed: {ones}"
        );
    }

    /// Counter churner: every interaction mints the receiver a fresh
    /// record state, so dead table entries accumulate without bound — the
    /// interner GC's target workload. Live support stays at the Poisson
    /// spread of the per-agent counts while the table would otherwise grow
    /// linearly with time.
    struct Churner;

    impl Protocol for Churner {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, _sen: &mut Record, _rng: &mut SimRng) {
            rec.value += 1;
        }
    }

    fn sorted_decode(
        handle: &InternerHandle<Record>,
        config: &CountConfiguration<u32>,
    ) -> Vec<(Record, u64)> {
        let mut view = handle.decode(config);
        view.sort_by_key(|(s, _)| (s.value, s.touched));
        view
    }

    #[test]
    fn collection_preserves_decoded_multiset_and_compacts_the_table() {
        let interned = Interned::new(Churner);
        let handle = interned.handle();
        let config = interned.uniform_config(2_000);
        let mut sim = CountSim::new(interned, config, 9);
        sim.steps(400_000); // per-agent counts ≈ Poisson(200): heavy churn
        let before = sorted_decode(&handle, sim.config());
        let table_before = handle.discovered();
        assert!(sim.collect_table(), "interned adapter must collect");
        assert_eq!(handle.generation(), 1);
        assert_eq!(
            sorted_decode(&handle, sim.config()),
            before,
            "collection changed the decoded multiset"
        );
        assert!(
            handle.discovered() < table_before / 2,
            "table {} of {table_before} slots survived a full collection",
            handle.discovered()
        );
        assert_eq!(handle.total_interned(), table_before as u64);
        // The run continues seamlessly on the compacted ids.
        sim.steps(50_000);
        assert_eq!(sim.config().population_size(), 2_000);
    }

    #[test]
    fn gc_is_trajectory_neutral_byte_for_byte() {
        // The full claim behind GC-on-by-default: eviction + compaction
        // preserves the slot layout and consumes no randomness, so the
        // trajectory — not just the law — is identical with and without
        // collection, checkpoint by checkpoint.
        let run = |gc: bool| {
            let interned = Interned::new(Churner);
            let handle = interned.handle();
            let config = interned.uniform_config(1_000);
            let mut sim = ConfigSim::new(interned, config, 77);
            sim.set_gc(gc);
            let mut log = Vec::new();
            for _ in 0..40 {
                sim.steps(50_000);
                log.push((
                    sim.interactions(),
                    sorted_decode(&handle, &sim.config_view()),
                ));
            }
            (
                log,
                sim.gc_collections(),
                handle.discovered(),
                handle.total_interned(),
            )
        };
        let (log_off, collections_off, table_off, total_off) = run(false);
        let (log_on, collections_on, table_on, total_on) = run(true);
        assert_eq!(log_off, log_on, "GC perturbed the trajectory");
        assert_eq!(collections_off, 0);
        assert!(collections_on >= 1, "churner run never triggered GC");
        assert_eq!(total_off, table_off as u64, "no GC → nothing evicted");
        // The GC run re-interns any state revived after its eviction, so
        // its total is at least the GC-off run's.
        assert!(total_on >= total_off);
        assert!(
            table_on < table_off / 2,
            "GC left {table_on} of {table_off} slots"
        );
    }

    /// Epoch counter with a *bounded* live support: equal-valued pairs
    /// advance the receiver by one, unequal pairs max-merge, so the
    /// population tracks the maximum closely (live support stays a handful
    /// of values) while the table accrues one dead entry per epoch. The
    /// deterministic marker keeps it on the batched engine, exercising the
    /// law-table reset half of collection.
    struct EpochMax;

    impl Protocol for EpochMax {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, sen: &mut Record, _rng: &mut SimRng) {
            if rec.value == sen.value {
                rec.value += 1;
            } else {
                let m = rec.value.max(sen.value);
                rec.value = m;
                sen.value = m;
            }
        }
    }

    #[test]
    fn batched_engine_collects_and_resets_its_law_table() {
        let interned = Interned::deterministic(EpochMax);
        let handle = interned.handle();
        let config = interned.uniform_config(4_096);
        let mut sim = ConfigSim::batched(interned, config, 5);
        sim.steps(6_000_000);
        assert!(sim.is_batched(), "pinned engine must not switch");
        assert!(
            sim.gc_collections() >= 1,
            "epoch churn never triggered a batched collection (table {}, total {})",
            handle.discovered(),
            handle.total_interned()
        );
        let view = sim.config_view();
        assert_eq!(view.population_size(), 4_096);
        assert!(
            handle.total_interned() > 1_024,
            "workload too small to exercise GC"
        );
        assert!(
            handle.discovered() < handle.total_interned() as usize / 2,
            "batched GC reclaimed too little: {} of {}",
            handle.discovered(),
            handle.total_interned()
        );
        // The compacted run keeps simulating correctly.
        sim.steps(100_000);
        assert_eq!(sim.config_view().population_size(), 4_096);
    }

    #[test]
    fn seeded_init_collapses_to_multiset() {
        struct Split;
        impl Protocol for Split {
            type State = Record;
            fn initial_state(&self) -> Record {
                Record {
                    value: 0,
                    touched: false,
                }
            }
            fn interact(&self, _r: &mut Record, _s: &mut Record, _rng: &mut SimRng) {}
        }
        impl SeededInit for Split {
            fn init_state(&self, index: usize, n: usize) -> Record {
                Record {
                    value: u64::from(index < n / 4),
                    touched: false,
                }
            }
        }
        let interned = Interned::new(Split);
        let handle = interned.handle();
        let config = interned.initial_config(1000);
        assert_eq!(config.population_size(), 1000);
        assert_eq!(
            handle.count_of(
                &config,
                &Record {
                    value: 1,
                    touched: false
                }
            ),
            250
        );
    }
}
