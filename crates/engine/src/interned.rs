//! State interning: run any agent-level [`Protocol`] on the
//! configuration-vector engines.
//!
//! The count engines ([`CountSim`](crate::count_sim::CountSim),
//! [`crate::batch::BatchedCountSim`], and the
//! [`ConfigSim`](crate::batch::ConfigSim) facade) require a `Copy + Ord`
//! state type because they index configurations by state value. The paper's
//! protocols instead use rich record states (`MainState` and friends) behind
//! the agent-level [`Protocol`] trait. [`Interned`] closes the gap without
//! touching either side: it lazily discovers the *occupied* state space at
//! run time, assigns each distinct state a dense `u32` slot, and exposes the
//! wrapped protocol as a [`CountProtocol`] over those slots. Any existing
//! `Protocol` implementation therefore runs on `CountSim`/`ConfigSim`
//! unchanged — the engine choice becomes an implementation detail instead of
//! a per-protocol decision.
//!
//! Why this is often a big win: a population of `n = 10⁶` agents running
//! `Log-Size-Estimation` occupies far fewer than `n` distinct states
//! (Lemma 3.9 bounds the reachable space by `O(log⁴ n)`), so the
//! configuration vector is tiny compared to the per-agent state array, and
//! convergence predicates cost `O(k)` instead of `O(n)` per check.
//!
//! ## Decoding
//!
//! The id ↔ state mapping lives behind an [`InternerHandle`] (shared `Rc`),
//! so harness code can keep a handle while the simulator owns the protocol
//! and translate ids back into protocol states inside predicates:
//!
//! ```
//! use pp_engine::batch::ConfigSim;
//! use pp_engine::interned::Interned;
//! use pp_engine::protocol::Protocol;
//! use pp_engine::rng::SimRng;
//!
//! struct Epidemic;
//! impl Protocol for Epidemic {
//!     type State = bool;
//!     fn initial_state(&self) -> bool {
//!         false
//!     }
//!     fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
//!         *rec |= *sen;
//!     }
//! }
//!
//! let interned = Interned::new(Epidemic);
//! let handle = interned.handle();
//! let config = interned.config_from_pairs([(false, 999), (true, 1)]);
//! let mut sim = ConfigSim::new(interned, config, 7);
//! // Look states up through the handle per query — raw ids are
//! // invalidated whenever a GC pass compacts the table (see below).
//! let out = sim.run_until(|c| handle.count_of(c, &true) == 1000, 100, f64::MAX);
//! assert!(out.converged);
//! ```
//!
//! ## Non-uniform starts
//!
//! [`Interned`] implements [`CountSeededInit`] whenever the wrapped protocol
//! implements [`SeededInit`], by collapsing the per-index assignment into
//! its multiset (agents are exchangeable, so the interaction process depends
//! on initial states only through their counts). Majority input splits and
//! planted-leader starts thus no longer force the agent simulator.
//!
//! ## Randomness and batching
//!
//! The wrapped `interact` receives the simulation RNG, so randomized
//! protocols are simulated faithfully. Because an arbitrary `interact`
//! cannot enumerate its outcome distribution, `Interned` reports
//! [`CountProtocol::outcomes`] `None` and stays on the sequential engine by
//! default; wrap with [`Interned::deterministic`] to certify that the
//! protocol never reads the RNG, which enables the batched engine through
//! one transition probe per state pair.
//!
//! ## Garbage collection
//!
//! Protocols whose states embed per-interaction counters (the paper's
//! `Log-Size-Estimation` and `Leader-Terminating` record states) mint a
//! fresh state on nearly every interaction, so the table accumulates
//! *dead* entries — states no agent holds any more — without bound on
//! long runs. `Interned` therefore implements the engine GC hooks
//! ([`CountProtocol::table_len`] / [`CountProtocol::collect_table`]):
//! when [`crate::batch::ConfigSim`] observes the table holding several
//! times more slots than the live support at one of its adaptive
//! checkpoints, it asks the adapter to evict every state absent from the
//! configuration and compact the survivors into a dense id prefix,
//! renaming the configuration (and, on the batched engine, resetting the
//! law table) in the same pass. The table is thereby bounded by a small
//! multiple of the *live* support instead of the number of states ever
//! reached — which is what lets the count engines serve counter-churning
//! protocols by default.
//!
//! Collection is invisible to the simulation: eviction preserves the
//! decoded `(state, count)` multiset, renaming preserves the engine's
//! slot layout and relative id order, and no randomness is consumed, so a
//! run with GC is **trajectory-identical** to the same seed without it.
//! The one observable consequence: raw ids obtained from
//! [`InternerHandle::id_of`] are invalidated by a pass (detectable via
//! [`InternerHandle::generation`]). Hold *states* across checkpoints and
//! look ids up per query ([`InternerHandle::count_of`] does exactly
//! that); don't cache raw ids.
//!
//! ## The hot path: slot index, pair cache, dense lane
//!
//! Three layers keep the adapter off the engines' critical path:
//!
//! * The reverse state → id map is an open-addressed
//!   [`SlotIndex`] probing FNV-hashed
//!   slots directly into the id-ordered state array — one flat
//!   power-of-two table instead of the `BTreeMap`'s pointer-chasing
//!   node walk, rebuilt wholesale on compaction.
//! * Zero-randomness transitions are memoized per *id pair* in a small
//!   direct-mapped cache stamped with the table generation: the settled
//!   bulk of a converged run replays `(rec, sen) → out` without
//!   cloning, hashing, or re-running `interact`. Entries are admitted
//!   only when the RNG stream is untouched by the probe, so replay
//!   never desynchronizes seeded runs; a generation bump (GC or lane
//!   collapse) lazily drops the whole cache.
//! * Counter-churning record protocols — support in the hundreds, a
//!   fresh record minted on nearly every interaction — skip the
//!   per-interaction interning economy altogether: once the occupied
//!   support crosses the dense-lane floor, the adapter expands the
//!   configuration into one record per agent, runs the agent
//!   simulator's exact interaction loop in place, and re-interns the
//!   survivors once at the end (see `advance_dense`). The count engine
//!   thereby matches the agent simulator's throughput on exactly the
//!   workloads that used to be ~7× slower, while every quiet phase
//!   stays on the cached configuration path.
//!
//! ## Observability
//!
//! The adapter maintains cumulative tallies at its own decision points and
//! exposes them through [`CountProtocol::telemetry_stats`]; the
//! [`ConfigSim`](crate::batch::ConfigSim) facade flushes deltas into any
//! attached [`pp_telemetry::Metrics`] registry. Counters and the decision
//! points they observe:
//!
//! * `pair_cache_hits` / `pair_cache_misses` — the cache probe at the top
//!   of every `transition` call (hit replays a memoized outcome, miss runs
//!   the full decode/interact path).
//! * `pair_cache_gen_drops` — the generation check in the same probe:
//!   a mismatch (GC pass or dense-lane collapse renumbered the ids) drops
//!   the whole cache before the probe proceeds.
//! * `slot_lookups` / `slot_probes` — every interner reverse lookup
//!   (`id_of` / `intern`) and the open-addressed buckets it walked.
//! * `slot_rebuilds` — index growth doublings plus the wholesale rebuilds
//!   a GC compaction or lane collapse performs.
//!
//! All of these are observation-only: reading or bumping them consumes no
//! randomness and influences no branch, so telemetry-on and telemetry-off
//! runs stay byte-identical (`tests/telemetry_neutrality.rs`).

use std::cell::RefCell;
use std::fmt::Debug;
use std::hash::Hash;
use std::rc::Rc;

use rand::Rng;

use crate::count_sim::{AdapterStats, CountConfiguration, CountProtocol, CountSeededInit};
use crate::protocol::{Protocol, SeededInit};
use crate::rng::SimRng;
use crate::slot_index::{fnv_hash, SlotIndex};

pub use crate::slot_index::FnvHasher;

/// Dense id ↔ state table, grown lazily as states are discovered and
/// compacted (dead entries evicted, survivors renumbered) when the engine
/// triggers a GC pass.
///
/// Struct-of-arrays layout: every record state is stored exactly once, in
/// the id-ordered `states` vec, and the reverse lookup is an open-addressed
/// [`SlotIndex`] probing that vec — no duplicate map keys, so interning
/// touches one dense bucket array plus (on hash hits) the state it is
/// checking against.
#[derive(Debug)]
pub struct StateTable<S> {
    states: Vec<S>,
    ids: SlotIndex,
    /// Bumped by every [`StateTable::compact`]: ids are only meaningful
    /// within one generation.
    generation: u64,
    /// Total states ever assigned an id, across compactions — the
    /// table-growth telemetry the GC tests assert against.
    total_interned: u64,
}

impl<S: Clone + Eq + Hash> StateTable<S> {
    fn new() -> Self {
        Self {
            states: Vec::new(),
            ids: SlotIndex::new(),
            generation: 0,
            total_interned: 0,
        }
    }

    /// The id currently assigned to `state`, if any.
    fn id_of(&self, state: &S) -> Option<u32> {
        self.ids
            .get(fnv_hash(state), |id| self.states[id as usize] == *state)
    }

    /// Returns the id for `state`, assigning the next dense slot if unseen.
    fn intern(&mut self, state: S) -> u32 {
        let hash = fnv_hash(&state);
        if let Some(id) = self.ids.get(hash, |id| self.states[id as usize] == state) {
            return id;
        }
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX distinct states");
        self.states.push(state);
        let Self { ids, states, .. } = self;
        ids.insert(hash, id, |i| fnv_hash(&states[i as usize]));
        self.total_interned += 1;
        id
    }

    fn get(&self, id: u32) -> &S {
        &self.states[id as usize]
    }

    /// Evicts every id not in `live` and compacts the survivors into the
    /// dense prefix `0..live.len()`, preserving their relative order (the
    /// new id is the old id's rank among the live ids). Returns the
    /// old → new renaming and bumps the generation.
    fn compact(&mut self, live: &[u32]) -> Vec<(u32, u32)> {
        let mut ordered: Vec<u32> = live.to_vec();
        ordered.sort_unstable();
        ordered.dedup();
        let mut states = Vec::with_capacity(ordered.len());
        let mut renames = Vec::with_capacity(ordered.len());
        for (rank, &old) in ordered.iter().enumerate() {
            let new = u32::try_from(rank).expect("live support fits the old table");
            states.push(self.states[old as usize].clone());
            renames.push((old, new));
        }
        self.states = states;
        let Self { ids, states, .. } = self;
        ids.rebuild(
            0..u32::try_from(states.len()).expect("live support fits u32"),
            |i| fnv_hash(&states[i as usize]),
        );
        self.generation += 1;
        renames
    }

    /// Replaces the table wholesale: `states` become ids `0..k` in slice
    /// order. The dense lane's episode-ending collapse: unlike
    /// [`StateTable::compact`] the order is the *caller's*, not
    /// ascending-old-id — the lane needs an ordering that is a function of
    /// the record-level trajectory alone (first occurrence in its
    /// per-agent scan), because numeric ids drift between GC-on/GC-off
    /// and original/restored runs of the same trajectory. The caller must
    /// pass value-distinct records. Bumps the generation; the new ids
    /// count toward `total_interned`.
    fn replace_states(&mut self, states: Vec<S>) {
        self.total_interned += states.len() as u64;
        self.states = states;
        let Self { ids, states, .. } = self;
        ids.rebuild(
            0..u32::try_from(states.len()).expect("live support fits u32"),
            |i| fnv_hash(&states[i as usize]),
        );
        self.generation += 1;
    }

    /// Rebuilds a table from checkpoint parts: the id-ordered state list
    /// plus the generation and telemetry counters. The reverse index is
    /// derived, so the restored table interns and decodes exactly like the
    /// snapshotted one.
    fn from_snapshot_parts(states: Vec<S>, generation: u64, total_interned: u64) -> Self {
        let mut ids = SlotIndex::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            let hash = fnv_hash(s);
            assert!(
                ids.get(hash, |c| states[c as usize] == *s).is_none(),
                "snapshot has a duplicate interned state"
            );
            ids.insert(
                hash,
                u32::try_from(i).expect("more than u32::MAX distinct states"),
                |c| fnv_hash(&states[c as usize]),
            );
        }
        Self {
            states,
            ids,
            generation,
            total_interned,
        }
    }
}

/// log2 of the pair-cache entry count: 8192 entries × 16 bytes = 128 KiB,
/// small enough to stay cache-resident next to the configuration tables.
const PAIR_CACHE_BITS: u32 = 13;

/// The unoccupied pair-cache key. Only the pair `(u32::MAX, u32::MAX)`
/// collides with it, and ids that large cannot occur (the table refuses to
/// assign more than `u32::MAX` ids), so no real pair is confused for empty.
const PAIR_EMPTY: u64 = u64::MAX;

/// Direct-mapped memo of *deterministic* pair outcomes: key
/// `(receiver_id, sender_id)`, value the output id pair.
///
/// An entry is written only after one full [`Protocol::interact`] on that
/// pair was observed to consume **zero** random bits (the RNG state is
/// compared before and after — xoshiro256++ advances a bijective state on
/// every draw, so state equality proves nothing was read). Such a
/// transition's control flow is a pure function of the two input states,
/// so replaying its memoized output ids is *exactly* trajectory-neutral:
/// the full path would produce the same ids (both outputs were interned
/// when the entry was written; ids are never removed within a generation)
/// and consume no randomness. Randomized *pairs* — those that do read the
/// RNG — are never cached; randomized *protocols* thus bypass the cache on
/// exactly the pairs where it would be wrong and still hit on their
/// deterministic bulk (e.g. the clock-tick interactions of
/// `Log-Size-Estimation`). A GC pass renumbers ids, so the whole cache is
/// dropped on a generation bump.
#[derive(Debug)]
struct PairCache {
    keys: Vec<u64>,
    outs: Vec<(u32, u32)>,
    /// Table generation the cached ids belong to.
    generation: u64,
    /// Telemetry: probes that returned a memoized outcome.
    hits: u64,
    /// Telemetry: probes that fell through to the full transition path.
    misses: u64,
    /// Telemetry: whole-cache drops on generation bumps (GC passes and
    /// dense-lane collapses both renumber ids and land here lazily).
    gen_drops: u64,
}

impl PairCache {
    fn new() -> Self {
        Self {
            keys: vec![PAIR_EMPTY; 1 << PAIR_CACHE_BITS],
            outs: vec![(0, 0); 1 << PAIR_CACHE_BITS],
            generation: 0,
            hits: 0,
            misses: 0,
            gen_drops: 0,
        }
    }

    #[inline]
    fn slot(key: u64) -> usize {
        // Fibonacci hashing: the top bits of the multiply mix both ids.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - PAIR_CACHE_BITS)) as usize
    }

    #[inline]
    fn get(&self, key: u64) -> Option<(u32, u32)> {
        let slot = Self::slot(key);
        (self.keys[slot] == key).then(|| self.outs[slot])
    }

    #[inline]
    fn put(&mut self, key: u64, out: (u32, u32)) {
        let slot = Self::slot(key);
        self.keys[slot] = key;
        self.outs[slot] = out;
    }

    /// Drops every entry and re-stamps the cache for `generation`.
    fn reset(&mut self, generation: u64) {
        self.keys.fill(PAIR_EMPTY);
        self.generation = generation;
        self.gen_drops += 1;
    }
}

#[inline]
fn pair_key(rec: u32, sen: u32) -> u64 {
    (u64::from(rec) << 32) | u64::from(sen)
}

/// Dense-lane eligibility floor on the occupied support. Below it the
/// configuration machinery is already near-optimal — few states, high
/// counts, pair-cache hits on the settled bulk — and the `O(n)`
/// expand/collapse would be pure overhead. Above it the support is the
/// signature of a churning record protocol (the paper's
/// `Log-Size-Estimation` runs at polylog support, ~10²–10³ distinct
/// records), where per-interaction Fenwick/intern work dwarfs the
/// per-agent execution the lane substitutes.
const LANE_MIN_SUPPORT: usize = 64;

/// Dense-lane population ceiling. The lane materializes one record per
/// agent for the episode, trading the count engine's `O(support)` memory
/// for the agent simulator's `O(n)` — the right trade for a churning
/// record protocol (where the table grows with the step count anyway),
/// but one a count-engine caller at huge `n` did not sign up for. Above
/// this the lane declines and the configuration path keeps its memory
/// contract.
const LANE_MAX_AGENTS: u64 = 1 << 22;

/// A cloneable handle onto an [`Interned`] adapter's id ↔ state table.
///
/// Lets harness code decode slot ids inside `run_until` predicates while the
/// simulator owns the protocol (both share the table through an `Rc`).
#[derive(Debug)]
pub struct InternerHandle<S> {
    table: Rc<RefCell<StateTable<S>>>,
}

impl<S> Clone for InternerHandle<S> {
    fn clone(&self) -> Self {
        Self {
            table: Rc::clone(&self.table),
        }
    }
}

impl<S: Clone + Eq + Hash> InternerHandle<S> {
    /// The state behind `id` (clone).
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been assigned (or was evicted by a GC pass).
    pub fn state_of(&self, id: u32) -> S {
        self.table.borrow().get(id).clone()
    }

    /// The id *currently* assigned to `state`, if it is in the table.
    /// Ids are only stable within one [`InternerHandle::generation`]: a GC
    /// pass renumbers the survivors, so look ids up per query instead of
    /// caching them across run checkpoints.
    pub fn id_of(&self, state: &S) -> Option<u32> {
        self.table.borrow().id_of(state)
    }

    /// Number of distinct states currently in the table (live slots after
    /// the last GC pass, plus everything discovered since).
    pub fn discovered(&self) -> usize {
        self.table.borrow().states.len()
    }

    /// Total states ever assigned an id, across GC passes. The gap to
    /// [`InternerHandle::discovered`] is how much dead weight collection
    /// has reclaimed.
    pub fn total_interned(&self) -> u64 {
        self.table.borrow().total_interned
    }

    /// The table's GC generation: bumped by every collection pass, so
    /// harness code holding raw ids can detect that they went stale.
    pub fn generation(&self) -> u64 {
        self.table.borrow().generation
    }

    /// Decodes a slot-id configuration into `(state, count)` pairs.
    pub fn decode(&self, config: &CountConfiguration<u32>) -> Vec<(S, u64)> {
        let table = self.table.borrow();
        config
            .iter()
            .map(|(&id, &count)| (table.get(id).clone(), count))
            .collect()
    }

    /// The count of agents in `state` within a slot-id configuration
    /// (0 if the state was never discovered).
    pub fn count_of(&self, config: &CountConfiguration<u32>, state: &S) -> u64 {
        self.id_of(state).map_or(0, |id| config.count(&id))
    }
}

/// Adapter exposing an agent-level [`Protocol`] as a [`CountProtocol`] over
/// dense `u32` state ids. See the [module docs](self) for the full story.
#[derive(Debug)]
pub struct Interned<P: Protocol>
where
    P::State: Eq + Hash,
{
    protocol: P,
    table: Rc<RefCell<StateTable<P::State>>>,
    /// Pair-outcome memo (see [`PairCache`]); derivable state, so snapshots
    /// skip it and restores start cold.
    cache: RefCell<PairCache>,
    deterministic: bool,
}

impl<P: Protocol> Interned<P>
where
    P::State: Eq + Hash,
{
    /// Wraps `protocol` for the count engines. The adapter assumes the
    /// transition may read the RNG (always correct); use
    /// [`Interned::deterministic`] to enable batching for RNG-free
    /// protocols.
    pub fn new(protocol: P) -> Self {
        Self {
            protocol,
            table: Rc::new(RefCell::new(StateTable::new())),
            cache: RefCell::new(PairCache::new()),
            deterministic: false,
        }
    }

    /// Wraps a protocol whose `interact` is certified to never read the
    /// RNG: pair outcomes are then probed once and bulk-applied by the
    /// batched engine.
    ///
    /// Certifying a protocol that *does* read the RNG silently freezes each
    /// pair's first sampled outcome into the law table — statistically
    /// wrong, so only use this for genuinely deterministic transitions.
    pub fn deterministic(protocol: P) -> Self {
        Self {
            deterministic: true,
            ..Self::new(protocol)
        }
    }

    /// Pair-cache telemetry: `(hits, misses)` since construction. A miss
    /// is any probe that fell through to the full decode/interact path
    /// (including randomized pairs, which are never admitted).
    #[doc(hidden)]
    pub fn pair_cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.borrow();
        (cache.hits, cache.misses)
    }

    /// A handle for decoding slot ids back into protocol states.
    pub fn handle(&self) -> InternerHandle<P::State> {
        InternerHandle {
            table: Rc::clone(&self.table),
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Interns `state` (idempotent) and returns its id.
    pub fn intern_state(&self, state: P::State) -> u32 {
        self.table.borrow_mut().intern(state)
    }

    /// The all-agents-identical initial configuration of `n` agents in
    /// [`Protocol::initial_state`].
    pub fn uniform_config(&self, n: u64) -> CountConfiguration<u32> {
        CountConfiguration::uniform(self.intern_state(self.protocol.initial_state()), n)
    }

    /// Checkpoint accessor: `(id-ordered states, generation,
    /// total_interned, deterministic)` — everything a snapshot needs to
    /// rebuild the adapter exactly.
    pub(crate) fn snapshot_parts(&self) -> (Vec<P::State>, u64, u64, bool) {
        let table = self.table.borrow();
        (
            table.states.clone(),
            table.generation,
            table.total_interned,
            self.deterministic,
        )
    }

    /// Rebuilds an adapter from checkpoint parts (see
    /// [`Interned::snapshot_parts`]). The state list keeps its exact
    /// id-order layout, so a slot-id configuration captured alongside it
    /// decodes — and interns new states — unchanged.
    pub(crate) fn from_snapshot_parts(
        protocol: P,
        states: Vec<P::State>,
        generation: u64,
        total_interned: u64,
        deterministic: bool,
    ) -> Self {
        let mut cache = PairCache::new();
        cache.generation = generation;
        Self {
            protocol,
            table: Rc::new(RefCell::new(StateTable::from_snapshot_parts(
                states,
                generation,
                total_interned,
            ))),
            cache: RefCell::new(cache),
            deterministic,
        }
    }

    /// Builds a slot-id configuration from protocol-state `(state, count)`
    /// pairs — arbitrary non-uniform starts (planted leaders, input splits).
    pub fn config_from_pairs(
        &self,
        pairs: impl IntoIterator<Item = (P::State, u64)>,
    ) -> CountConfiguration<u32> {
        CountConfiguration::from_pairs(
            pairs
                .into_iter()
                .map(|(state, count)| (self.intern_state(state), count)),
        )
    }
}

impl<P: Protocol> CountProtocol for Interned<P>
where
    P::State: Eq + Hash,
{
    type State = u32;

    fn transition(&self, rec: u32, sen: u32, rng: &mut SimRng) -> (u32, u32) {
        // Pair-cache probe: a hit replays a memoized deterministic outcome
        // — no decode, no `interact`, no hashing, no RNG — which is exactly
        // what the full path below would do for that pair (see [`PairCache`]
        // for why this is trajectory-neutral).
        let key = pair_key(rec, sen);
        let generation = {
            let mut cache = self.cache.borrow_mut();
            let generation = self.table.borrow().generation;
            if cache.generation == generation {
                if let Some(out) = cache.get(key) {
                    cache.hits += 1;
                    return out;
                }
                cache.misses += 1;
            } else {
                // A GC pass renumbered the ids; every entry is stale.
                cache.reset(generation);
            }
            generation
        };
        let (mut r, mut s) = {
            let table = self.table.borrow();
            (table.get(rec).clone(), table.get(sen).clone())
        };
        // For protocols not certified deterministic, capture the RNG state:
        // if `interact` leaves it untouched it consumed zero random bits
        // (xoshiro256++ advances on every draw), so this pair's transition
        // is a pure function of the inputs and its outcome is cacheable.
        let rng_before = (!self.deterministic).then(|| rng.state());
        self.protocol.interact(&mut r, &mut s, rng);
        let read_rng = rng_before.is_some_and(|before| rng.state() != before);
        let out = {
            // Null fast path: an interaction that changed neither state
            // (settled epidemics, frozen terminated pairs) keeps its input
            // ids — no hashing, no table writes.
            let table = self.table.borrow();
            if *table.get(rec) == r && *table.get(sen) == s {
                Some((rec, sen))
            } else {
                None
            }
        };
        let out = out.unwrap_or_else(|| {
            let mut table = self.table.borrow_mut();
            (table.intern(r), table.intern(s))
        });
        if !read_rng && key != PAIR_EMPTY {
            let mut cache = self.cache.borrow_mut();
            debug_assert_eq!(cache.generation, generation);
            cache.put(key, out);
        }
        out
    }

    fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    fn table_len(&self) -> Option<usize> {
        Some(self.table.borrow().states.len())
    }

    fn collect_table(&self, live: &[u32]) -> Option<Vec<(u32, u32)>> {
        Some(self.table.borrow_mut().compact(live))
    }

    /// Observability: the adapter's cumulative pair-cache and interner
    /// slot-index counters (see the module docs' Observability section).
    /// Pure reads of already-maintained tallies — no trajectory effect.
    fn telemetry_stats(&self) -> Option<AdapterStats> {
        let cache = self.cache.borrow();
        let index = self.table.borrow().ids.stats();
        Some(AdapterStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_gen_drops: cache.gen_drops,
            index_lookups: index.lookups,
            index_probes: index.probes,
            index_rebuilds: index.rebuilds,
        })
    }

    /// The dense per-agent lane. A churning record protocol — the paper's
    /// `Log-Size-Estimation` and `Leader-Terminating`, whose receiver
    /// mints a fresh record on nearly every interaction — pays the full
    /// configuration-vector toll per interaction: two Fenwick descents,
    /// two record clones, two intern hashes, and four Fenwick updates
    /// with slot register/release churn. The agent simulator pays two RNG
    /// draws and one in-place transition. This lane gives the count
    /// engine the agent simulator's cost model — *exactly* its cost
    /// model — for those phases:
    ///
    /// * **Expand**: materialize one record per agent by cloning each
    ///   configuration entry's state `count` times, in configuration slot
    ///   order (invariant across GC-renaming and snapshot-restore id
    ///   drift).
    /// * **Run**: execute the whole budget as the agent simulator would —
    ///   draw a uniform ordered pair of distinct agent indices (two RNG
    ///   words, the same draw law as
    ///   [`PairScheduler::next_pair`](crate::scheduler::PairScheduler::next_pair)),
    ///   split
    ///   the slice, and run [`Protocol::interact`] *in place*. No clones,
    ///   no equality probes, no interning — the interaction loop is
    ///   byte-for-byte the agent simulator's.
    /// * **Collapse**: scan the agent array once; each *record value*
    ///   gets the next rank at its first occurrence (a temporary
    ///   [`SlotIndex`] dedupes). `StateTable::replace_states` installs
    ///   the ranked records as the new table `0..k`, bumping the
    ///   generation (which lazily drops the now-stale pair cache), and
    ///   the configuration is rebuilt as `(rank, count)`. At rest the
    ///   adapter is indistinguishable from one that never ran the lane —
    ///   same invariants a GC pass restores — so snapshots, engine
    ///   switches, and observers see a canonical table.
    ///
    /// The expand/collapse bracket is `O(n)` once per episode, and an
    /// episode spans the caller's whole budget — sub-nanosecond per
    /// interaction for any budget a few multiples of `n` (the `budget ≥
    /// n` gate bounds it at a handful of ops per interaction even in the
    /// worst case).
    ///
    /// Determinism across engine histories: table ids don't even exist
    /// during an episode — the trajectory is computed on records, as the
    /// agent simulator computes it. Expansion order (configuration slot
    /// order), the draw stream (independent of table state), and the
    /// collapse order (first occurrence of a record value in the agent
    /// scan) are all functions of the record-level trajectory alone — so
    /// the byte-equivalence suites stay byte-identical whether or not,
    /// and wherever, episodes start and end.
    fn advance_dense(
        &self,
        config: &mut CountConfiguration<u32>,
        rng: &mut SimRng,
        budget: u64,
    ) -> Option<u64> {
        let n = config.population_size();
        if budget < n || !(2..=LANE_MAX_AGENTS).contains(&n) {
            return None;
        }
        if config.support_size() < LANE_MIN_SUPPORT {
            return None;
        }
        let mut table = self.table.borrow_mut();
        // Expand: one record per agent, in configuration slot order — the
        // same agent → record assignment whatever the engine history.
        let mut agents: Vec<P::State> = Vec::with_capacity(n as usize);
        for (&id, &k) in config.iter() {
            let state = &table.states[id as usize];
            for _ in 0..k {
                agents.push(state.clone());
            }
        }
        for _ in 0..budget {
            // The agent simulator's draw: a uniform ordered pair of
            // distinct agent indices from two RNG words.
            let a = rng.gen_range(0..n) as usize;
            let mut b = rng.gen_range(0..n - 1) as usize;
            if b >= a {
                b += 1;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            let (left, right) = agents.split_at_mut(hi);
            let (first, second) = (&mut left[lo], &mut right[0]);
            if a < b {
                self.protocol.interact(first, second, rng);
            } else {
                self.protocol.interact(second, first, rng);
            }
        }
        // Collapse: rank record values by first occurrence in the agent
        // scan; the SlotIndex dedupes value-equal records onto one rank.
        let support_hint = config.support_size();
        let mut canon_index = SlotIndex::with_capacity(support_hint);
        let mut states: Vec<P::State> = Vec::with_capacity(support_hint);
        let mut counts: Vec<u64> = Vec::with_capacity(support_hint);
        for state in &agents {
            let hash = fnv_hash(state);
            let rank = match canon_index.get(hash, |r| states[r as usize] == *state) {
                Some(r) => r,
                None => {
                    let r = u32::try_from(states.len()).expect("support fits u32");
                    canon_index.insert(hash, r, |r2| fnv_hash(&states[r2 as usize]));
                    states.push(state.clone());
                    counts.push(0);
                    r
                }
            };
            counts[rank as usize] += 1;
        }
        table.replace_states(states);
        *config = CountConfiguration::from_pairs(
            counts
                .iter()
                .enumerate()
                .map(|(rank, &k)| (u32::try_from(rank).expect("support fits u32"), k)),
        );
        Some(budget)
    }
}

impl<P: Protocol + SeededInit> CountSeededInit for Interned<P>
where
    P::State: Eq + Hash,
{
    /// Collapses the per-index [`SeededInit`] assignment into its multiset:
    /// agents are exchangeable, so the interaction process depends on the
    /// initial states only through their counts. Slots are registered in
    /// id (= first-seen) order, so the configuration layout — and with it
    /// the whole seeded trajectory — is deterministic across processes
    /// (a `HashMap` iteration here would randomize slot order per run).
    fn initial_config(&self, n: u64) -> CountConfiguration<u32> {
        let n_usize = usize::try_from(n).expect("population exceeds usize");
        let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for i in 0..n_usize {
            let id = self.intern_state(self.protocol.init_state(i, n_usize));
            *counts.entry(id).or_insert(0) += 1;
        }
        CountConfiguration::from_pairs(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ConfigSim;
    use crate::count_sim::CountSim;
    use crate::rng::derive_seed;
    use crate::sim::AgentSim;
    use rand::Rng;

    /// Max-propagation epidemic with a record state (not `Copy`).
    struct MaxRecord;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Record {
        value: u64,
        touched: bool,
    }

    impl Protocol for MaxRecord {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, sen: &mut Record, _rng: &mut SimRng) {
            let m = rec.value.max(sen.value);
            rec.value = m;
            sen.value = m;
            rec.touched = true;
            sen.touched = true;
        }
    }

    #[test]
    fn interned_protocol_runs_on_count_sim() {
        let interned = Interned::new(MaxRecord);
        let handle = interned.handle();
        let config = interned.config_from_pairs([
            (
                Record {
                    value: 9,
                    touched: false,
                },
                1,
            ),
            (
                Record {
                    value: 0,
                    touched: false,
                },
                499,
            ),
        ]);
        let mut sim = CountSim::new(interned, config, 3);
        let out = sim.run_until(
            |c| {
                handle
                    .decode(c)
                    .iter()
                    .all(|(s, _)| s.value == 9 && s.touched)
            },
            100,
            10_000.0,
        );
        assert!(out.converged, "max never propagated");
        assert_eq!(sim.config().population_size(), 500);
    }

    #[test]
    fn deterministic_marker_enables_batching() {
        let interned = Interned::deterministic(MaxRecord);
        let config = interned.uniform_config(100_000);
        let sim = ConfigSim::new(interned, config, 1);
        assert!(sim.is_batched());

        let interned = Interned::new(MaxRecord);
        let config = interned.uniform_config(100_000);
        let sim = ConfigSim::new(interned, config, 1);
        assert!(!sim.is_batched());
    }

    #[test]
    fn batched_interned_run_matches_sequential_statistically() {
        // Completion-time means of the interned max epidemic must agree
        // between engines within sampling error.
        let n = 20_000u64;
        let trials = 30;
        let mean = |batched: bool, stream: u64| -> f64 {
            (0..trials)
                .map(|t| {
                    let interned = Interned::deterministic(MaxRecord);
                    let handle = interned.handle();
                    let config = interned.config_from_pairs([
                        (
                            Record {
                                value: 1,
                                touched: false,
                            },
                            1,
                        ),
                        (
                            Record {
                                value: 0,
                                touched: false,
                            },
                            n - 1,
                        ),
                    ]);
                    let seed = derive_seed(stream, t);
                    let mut sim = if batched {
                        ConfigSim::batched(interned, config, seed)
                    } else {
                        ConfigSim::sequential(interned, config, seed)
                    };
                    let out = sim.run_until(
                        |c| handle.decode(c).iter().all(|(s, _)| s.value == 1),
                        n / 20,
                        f64::MAX,
                    );
                    assert!(out.converged);
                    out.time
                })
                .sum::<f64>()
                / trials as f64
        };
        let m_seq = mean(false, 0x51);
        let m_bat = mean(true, 0x52);
        assert!(
            (m_seq - m_bat).abs() < 0.25 * m_seq,
            "interned engines diverge: sequential {m_seq} vs batched {m_bat}"
        );
    }

    /// Randomized protocol through the interning layer.
    struct CoinFlip;

    impl Protocol for CoinFlip {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, _sen: &mut Record, rng: &mut SimRng) {
            rec.value = rng.gen_range(0..2);
            rec.touched = true;
        }
    }

    #[test]
    fn randomized_interned_protocol_stays_sequential_and_runs() {
        let interned = Interned::new(CoinFlip);
        let handle = interned.handle();
        let config = interned.uniform_config(10_000);
        let mut sim = ConfigSim::new(interned, config, 11);
        assert!(!sim.is_batched());
        sim.steps(40_000);
        let decoded = handle.decode(&sim.config_view());
        let ones: u64 = decoded
            .iter()
            .filter(|(s, _)| s.value == 1)
            .map(|(_, c)| c)
            .sum();
        assert!(
            (3_000..7_000).contains(&ones),
            "coin flips badly skewed: {ones}"
        );
    }

    /// Counter churner: every interaction mints the receiver a fresh
    /// record state, so dead table entries accumulate without bound — the
    /// interner GC's target workload. Live support stays at the Poisson
    /// spread of the per-agent counts while the table would otherwise grow
    /// linearly with time.
    struct Churner;

    impl Protocol for Churner {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, _sen: &mut Record, _rng: &mut SimRng) {
            rec.value += 1;
        }
    }

    impl SeededInit for Churner {
        /// Eight agents per initial value, monotone in the agent index —
        /// so the interned expansion order (configuration slot order)
        /// reproduces the agent simulator's per-index assignment and the
        /// initial support (`n/8`) clears the dense-lane floor at once.
        fn init_state(&self, index: usize, _n: usize) -> Record {
            Record {
                value: (index as u64) / 8,
                touched: false,
            }
        }
    }

    fn sorted_decode(
        handle: &InternerHandle<Record>,
        config: &CountConfiguration<u32>,
    ) -> Vec<(Record, u64)> {
        let mut view = handle.decode(config);
        view.sort_by_key(|(s, _)| (s.value, s.touched));
        view
    }

    #[test]
    fn collection_preserves_decoded_multiset_and_compacts_the_table() {
        let interned = Interned::new(Churner);
        let handle = interned.handle();
        let config = interned.uniform_config(2_000);
        let mut sim = CountSim::new(interned, config, 9);
        sim.steps(400_000); // per-agent counts ≈ Poisson(200): heavy churn
        let before = sorted_decode(&handle, sim.config());
        let table_before = handle.discovered();
        assert!(sim.collect_table(), "interned adapter must collect");
        assert_eq!(handle.generation(), 1);
        assert_eq!(
            sorted_decode(&handle, sim.config()),
            before,
            "collection changed the decoded multiset"
        );
        assert!(
            handle.discovered() < table_before / 2,
            "table {} of {table_before} slots survived a full collection",
            handle.discovered()
        );
        assert_eq!(handle.total_interned(), table_before as u64);
        // The run continues seamlessly on the compacted ids.
        sim.steps(50_000);
        assert_eq!(sim.config().population_size(), 2_000);
    }

    #[test]
    fn gc_is_trajectory_neutral_byte_for_byte() {
        // The full claim behind GC-on-by-default: eviction + compaction
        // preserves the slot layout and consumes no randomness, so the
        // trajectory — not just the law — is identical with and without
        // collection, checkpoint by checkpoint. Stepping in sub-`n`
        // chunks keeps the dense lane disengaged (it needs a budget of at
        // least `n`), pinning this run to the configuration-vector path
        // whose GC machinery the test is about; the lane-active
        // counterpart is `dense_lane_is_trajectory_neutral_under_gc`.
        let run = |gc: bool| {
            let interned = Interned::new(Churner);
            let handle = interned.handle();
            let config = interned.uniform_config(1_000);
            let mut sim = ConfigSim::new(interned, config, 77);
            sim.set_gc(gc);
            let mut log = Vec::new();
            for _ in 0..40 {
                for _ in 0..100 {
                    sim.steps(500);
                }
                log.push((
                    sim.interactions(),
                    sorted_decode(&handle, &sim.config_view()),
                ));
            }
            (
                log,
                sim.gc_collections(),
                handle.discovered(),
                handle.total_interned(),
            )
        };
        let (log_off, collections_off, table_off, total_off) = run(false);
        let (log_on, collections_on, table_on, total_on) = run(true);
        assert_eq!(log_off, log_on, "GC perturbed the trajectory");
        assert_eq!(collections_off, 0);
        assert!(collections_on >= 1, "churner run never triggered GC");
        assert_eq!(total_off, table_off as u64, "no GC → nothing evicted");
        // The GC run re-interns any state revived after its eviction, so
        // its total is at least the GC-off run's.
        assert!(total_on >= total_off);
        assert!(
            table_on < table_off / 2,
            "GC left {table_on} of {table_off} slots"
        );
    }

    #[test]
    fn pair_cache_entries_do_not_survive_a_generation_bump() {
        // A compaction renumbers ids, so a memoized `(rec, sen) → out`
        // pair from the old generation must never replay: here the ids
        // `(0, 1)` mean different records before and after the GC pass,
        // with different correct outcomes.
        let interned = Interned::new(MaxRecord);
        // Already-touched records: a max-merge of two of them lands on an
        // existing record instead of minting, so the pair is memoizable.
        let rec = |value| Record {
            value,
            touched: true,
        };
        let a = interned.intern_state(rec(10));
        let b = interned.intern_state(rec(2));
        let c = interned.intern_state(rec(3));
        assert_eq!((a, b, c), (0, 1, 2));
        let mut rng = crate::rng::rng_from_seed(1);
        // Max-merge of (10, 2): both end at 10 = id 0. The pair reads no
        // randomness, so it is memoized.
        assert_eq!(interned.transition(0, 1, &mut rng), (0, 0));
        let hits_before = interned.cache.borrow().hits;
        assert_eq!(interned.transition(0, 1, &mut rng), (0, 0));
        assert_eq!(interned.cache.borrow().hits, hits_before + 1);

        // Evict record 10: survivors renumber to 2 → id 0, 3 → id 1.
        interned.table.borrow_mut().compact(&[b, c]);
        // The same numeric pair now means (2, 3): max-merge ends at 3 =
        // new id 1 on both sides. A stale replay would answer (0, 0).
        assert_eq!(interned.transition(0, 1, &mut rng), (1, 1));
        assert_eq!(
            interned.cache.borrow().generation,
            interned.table.borrow().generation,
            "cache was not re-stamped for the new generation"
        );
    }

    #[test]
    fn dense_lane_is_trajectory_neutral_under_gc() {
        // Big budgets put the churner on the dense lane (support settles
        // around the Poisson spread of the per-agent counts, well over
        // the lane floor). Numeric ids drift between the GC-on and
        // GC-off runs, but the lane's expansion order, draw stream, and
        // first-occurrence collapse order are record-level invariants —
        // so the decoded checkpoints must stay byte-identical.
        let run = |gc: bool| {
            let interned = Interned::new(Churner);
            let handle = interned.handle();
            let config = interned.uniform_config(1_000);
            let mut sim = ConfigSim::new(interned, config, 77);
            sim.set_gc(gc);
            let mut log = Vec::new();
            for _ in 0..40 {
                sim.steps(50_000);
                log.push((
                    sim.interactions(),
                    sorted_decode(&handle, &sim.config_view()),
                ));
            }
            (log, handle.discovered(), handle.total_interned())
        };
        let (log_off, table_off, total_off) = run(false);
        let (log_on, table_on, total_on) = run(true);
        assert_eq!(log_off, log_on, "GC flag perturbed a lane trajectory");
        // The lane collapses the table to the live support after every
        // episode, in both runs — without it, the GC-off table would hold
        // one entry per interaction (~2M here).
        assert!(table_off < 1_024, "lane never compacted: {table_off} slots");
        assert_eq!(table_off, table_on);
        // Interning telemetry proves the lane actually ran: each of the
        // 40 episode-ending collapses re-interns the live support (~125
        // records), where a pure count-path run of a churner this size
        // would have interned ~one record per interaction (~2M) instead.
        assert!(
            total_off > 1_000 && total_off < 100_000,
            "interning telemetry off the lane profile: {total_off}"
        );
        assert_eq!(total_off, total_on);
    }

    #[test]
    fn dense_lane_matches_the_agent_simulator_exactly() {
        // The lane draws pairs exactly like `PairScheduler::next_pair`,
        // and `Churner::interact` reads no randomness — so with a
        // monotone seeded init (expansion order = agent index order) a
        // single lane episode must reproduce the agent simulator's state
        // multiset *exactly*: same seed, same RNG stream, same per-index
        // assignment. One episode only: the collapse regroups agents by
        // record value, after which the two simulators agree in law but
        // not per index.
        let n = 1_000u64;
        let steps = 3_000u64; // one `ConfigSim::steps` call: one episode spans it
        let mut agent = AgentSim::with_inputs(Churner, n as usize, 4242);
        agent.steps(steps);
        let mut expect: Vec<(Record, u64)> = Vec::new();
        let mut flat = agent.states().to_vec();
        flat.sort_by_key(|s| (s.value, s.touched));
        for s in flat {
            match expect.last_mut() {
                Some((prev, c)) if *prev == s => *c += 1,
                _ => expect.push((s, 1)),
            }
        }

        let interned = Interned::new(Churner);
        let handle = interned.handle();
        let config = interned.initial_config(n);
        let mut sim = ConfigSim::new(interned, config, 4242);
        sim.steps(steps);
        assert_eq!(
            sorted_decode(&handle, &sim.config_view()),
            expect,
            "dense lane diverged from the agent simulator"
        );
    }

    /// Epoch counter with a *bounded* live support: equal-valued pairs
    /// advance the receiver by one, unequal pairs max-merge, so the
    /// population tracks the maximum closely (live support stays a handful
    /// of values) while the table accrues one dead entry per epoch. The
    /// deterministic marker keeps it on the batched engine, exercising the
    /// law-table reset half of collection.
    struct EpochMax;

    impl Protocol for EpochMax {
        type State = Record;

        fn initial_state(&self) -> Record {
            Record {
                value: 0,
                touched: false,
            }
        }

        fn interact(&self, rec: &mut Record, sen: &mut Record, _rng: &mut SimRng) {
            if rec.value == sen.value {
                rec.value += 1;
            } else {
                let m = rec.value.max(sen.value);
                rec.value = m;
                sen.value = m;
            }
        }
    }

    #[test]
    fn batched_engine_collects_and_resets_its_law_table() {
        let interned = Interned::deterministic(EpochMax);
        let handle = interned.handle();
        let config = interned.uniform_config(4_096);
        let mut sim = ConfigSim::batched(interned, config, 5);
        sim.steps(6_000_000);
        assert!(sim.is_batched(), "pinned engine must not switch");
        assert!(
            sim.gc_collections() >= 1,
            "epoch churn never triggered a batched collection (table {}, total {})",
            handle.discovered(),
            handle.total_interned()
        );
        let view = sim.config_view();
        assert_eq!(view.population_size(), 4_096);
        assert!(
            handle.total_interned() > 1_024,
            "workload too small to exercise GC"
        );
        assert!(
            handle.discovered() < handle.total_interned() as usize / 2,
            "batched GC reclaimed too little: {} of {}",
            handle.discovered(),
            handle.total_interned()
        );
        // The compacted run keeps simulating correctly.
        sim.steps(100_000);
        assert_eq!(sim.config_view().population_size(), 4_096);
    }

    #[test]
    fn seeded_init_collapses_to_multiset() {
        struct Split;
        impl Protocol for Split {
            type State = Record;
            fn initial_state(&self) -> Record {
                Record {
                    value: 0,
                    touched: false,
                }
            }
            fn interact(&self, _r: &mut Record, _s: &mut Record, _rng: &mut SimRng) {}
        }
        impl SeededInit for Split {
            fn init_state(&self, index: usize, n: usize) -> Record {
                Record {
                    value: u64::from(index < n / 4),
                    touched: false,
                }
            }
        }
        let interned = Interned::new(Split);
        let handle = interned.handle();
        let config = interned.initial_config(1000);
        assert_eq!(config.population_size(), 1000);
        assert_eq!(
            handle.count_of(
                &config,
                &Record {
                    value: 1,
                    touched: false
                }
            ),
            250
        );
    }
}
