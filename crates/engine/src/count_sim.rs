//! [`CountSim`]: the configuration-vector simulator.
//!
//! For protocols whose reachable state space is small (epidemics, the slow
//! exact backup counter of §3.3, the abstract protocols of the Theorem 4.1
//! experiments), storing a count per state instead of a state per agent makes
//! each interaction O(#states) instead of O(1)-with-huge-constants, and more
//! importantly lets the density experiments scale to millions of agents with
//! O(#states) memory.
//!
//! The simulator maintains the exact same stochastic process as
//! [`crate::sim::AgentSim`]: an ordered pair of distinct agents is drawn
//! uniformly; since agents in the same state are interchangeable, drawing a
//! pair of *states* weighted by counts (without replacement) is an identical
//! distribution.

use std::collections::BTreeMap;

use rand::Rng;

use crate::rng::{rng_from_seed, SimRng};
use crate::scheduler::parallel_time;
use crate::sim::RunOutcome;

/// A protocol over a small copyable state type, expressed as a transition
/// function on (receiver, sender) state values.
pub trait CountProtocol {
    /// Agent state; must be orderable so configurations have a canonical form.
    type State: Copy + Ord + std::fmt::Debug;

    /// Computes the post-interaction states `(rec', sen')`.
    fn transition(
        &self,
        rec: Self::State,
        sen: Self::State,
        rng: &mut SimRng,
    ) -> (Self::State, Self::State);
}

/// A configuration: a multiset of states with total count `n`.
///
/// ```
/// use pp_engine::count_sim::CountConfiguration;
///
/// let c = CountConfiguration::from_pairs([(0u8, 60), (1u8, 40)]);
/// assert_eq!(c.population_size(), 100);
/// assert_eq!(c.count(&0), 60);
/// assert!(c.is_dense(0.4));   // every present state holds ≥ 40% of agents
/// assert!(!c.is_dense(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountConfiguration<S: Copy + Ord> {
    counts: BTreeMap<S, u64>,
    total: u64,
}

impl<S: Copy + Ord + std::fmt::Debug> CountConfiguration<S> {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self {
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Creates a configuration from `(state, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a state appears twice.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (S, u64)>) -> Self {
        let mut c = Self::new();
        for (s, k) in pairs {
            assert!(
                c.counts.insert(s, k).is_none(),
                "duplicate state {s:?} in configuration"
            );
            c.total += k;
        }
        c.prune();
        c
    }

    /// All `n` agents in a single state.
    pub fn uniform(state: S, n: u64) -> Self {
        Self::from_pairs([(state, n)])
    }

    fn prune(&mut self) {
        self.counts.retain(|_, &mut k| k > 0);
    }

    /// Total number of agents.
    pub fn population_size(&self) -> u64 {
        self.total
    }

    /// Count of a particular state (0 if absent).
    pub fn count(&self, state: &S) -> u64 {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// Number of distinct states present.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(state, count)` pairs with positive count.
    pub fn iter(&self) -> impl Iterator<Item = (&S, &u64)> {
        self.counts.iter()
    }

    /// Adds `k` agents in `state`.
    pub fn add(&mut self, state: S, k: u64) {
        if k == 0 {
            return;
        }
        *self.counts.entry(state).or_insert(0) += k;
        self.total += k;
    }

    /// Removes `k` agents in `state`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` agents are in `state`.
    pub fn remove(&mut self, state: S, k: u64) {
        if k == 0 {
            return;
        }
        let c = self
            .counts
            .get_mut(&state)
            .unwrap_or_else(|| panic!("removing {k} of absent state {state:?}"));
        assert!(*c >= k, "removing {k} of state {state:?} with count {c}");
        *c -= k;
        if *c == 0 {
            self.counts.remove(&state);
        }
        self.total -= k;
    }

    /// True if every present state has count at least `alpha * n`.
    ///
    /// This is the paper's α-density: a configuration is α-dense when each
    /// state present occupies at least an α fraction of the population.
    pub fn is_dense(&self, alpha: f64) -> bool {
        let threshold = alpha * self.total as f64;
        self.counts.values().all(|&k| k as f64 >= threshold)
    }

    /// Samples one agent uniformly (returns its state) without removing it.
    fn sample(&self, rng: &mut impl Rng) -> S {
        debug_assert!(self.total > 0);
        let mut u = rng.gen_range(0..self.total);
        for (&s, &k) in &self.counts {
            if u < k {
                return s;
            }
            u -= k;
        }
        unreachable!("sample index exceeded total count")
    }
}

impl<S: Copy + Ord + std::fmt::Debug> Default for CountConfiguration<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Simulator over a [`CountConfiguration`].
pub struct CountSim<P: CountProtocol> {
    protocol: P,
    config: CountConfiguration<P::State>,
    rng: SimRng,
    interactions: u64,
    n: u64,
}

impl<P: CountProtocol> CountSim<P> {
    /// Creates a simulator from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than 2 agents.
    pub fn new(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        let n = config.population_size();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        Self {
            protocol,
            config,
            rng: rng_from_seed(seed),
            interactions: 0,
            n,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &CountConfiguration<P::State> {
        &self.config
    }

    /// Population size.
    pub fn population_size(&self) -> u64 {
        self.n
    }

    /// Parallel time elapsed.
    pub fn time(&self) -> f64 {
        parallel_time(self.interactions, self.n as usize)
    }

    /// Total interactions executed.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Executes one interaction.
    pub fn step(&mut self) {
        self.step_observed();
    }

    /// Executes one interaction and reports it as
    /// `(rec, sen, rec', sen')` — used by the Theorem 4.1 witness
    /// extraction, which needs the actual transitions of an execution.
    pub fn step_observed(&mut self) -> (P::State, P::State, P::State, P::State) {
        // Draw the receiver, remove it, draw the sender from the remaining
        // n-1 agents: exactly the uniform ordered-pair distribution.
        let rec = self.config.sample(&mut self.rng);
        self.config.remove(rec, 1);
        let sen = self.config.sample(&mut self.rng);
        self.config.remove(sen, 1);
        let (rec2, sen2) = self.protocol.transition(rec, sen, &mut self.rng);
        self.config.add(rec2, 1);
        self.config.add(sen2, 1);
        self.interactions += 1;
        (rec, sen, rec2, sen2)
    }

    /// Executes `k` interactions.
    pub fn steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Runs for `t` units of parallel time.
    pub fn run_for_time(&mut self, t: f64) {
        let target = (t * self.n as f64).ceil() as u64;
        self.steps(target);
    }

    /// Runs until `predicate(config)` holds, checking every `check_every`
    /// interactions, within a parallel-time budget.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&CountConfiguration<P::State>) -> bool,
        check_every: u64,
        max_time: f64,
    ) -> RunOutcome {
        assert!(check_every > 0, "check_every must be positive");
        let max_interactions = (max_time * self.n as f64).ceil() as u64;
        if predicate(&self.config) {
            return RunOutcome {
                converged: true,
                time: self.time(),
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let burst = check_every.min(max_interactions - self.interactions);
            self.steps(burst);
            if predicate(&self.config) {
                return RunOutcome {
                    converged: true,
                    time: self.time(),
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome {
            converged: false,
            time: self.time(),
            interactions: self.interactions,
        }
    }
}

impl<P: CountProtocol> std::fmt::Debug for CountSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSim")
            .field("n", &self.n)
            .field("support", &self.config.support_size())
            .field("interactions", &self.interactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way epidemic over {0 = susceptible, 1 = infected}.
    struct Epidemic;

    impl CountProtocol for Epidemic {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, _rng: &mut SimRng) -> (u8, u8) {
            (rec.max(sen & 1), sen)
        }
    }

    #[test]
    fn configuration_bookkeeping() {
        let mut c = CountConfiguration::from_pairs([(0u8, 5), (1u8, 3)]);
        assert_eq!(c.population_size(), 8);
        assert_eq!(c.count(&0), 5);
        assert_eq!(c.count(&2), 0);
        c.add(2, 4);
        c.remove(0, 5);
        assert_eq!(c.population_size(), 7);
        assert_eq!(c.count(&0), 0);
        assert_eq!(c.support_size(), 2);
    }

    #[test]
    #[should_panic(expected = "removing")]
    fn remove_too_many_panics() {
        let mut c = CountConfiguration::from_pairs([(0u8, 2)]);
        c.remove(0, 3);
    }

    #[test]
    #[should_panic(expected = "duplicate state")]
    fn duplicate_states_rejected() {
        CountConfiguration::from_pairs([(0u8, 2), (0u8, 3)]);
    }

    #[test]
    fn density_check() {
        let c = CountConfiguration::from_pairs([(0u8, 50), (1u8, 50)]);
        assert!(c.is_dense(0.5));
        assert!(c.is_dense(0.3));
        let d = CountConfiguration::from_pairs([(0u8, 99), (1u8, 1)]);
        assert!(!d.is_dense(0.1));
        assert!(d.is_dense(0.01));
    }

    #[test]
    fn epidemic_infects_all() {
        let config = CountConfiguration::from_pairs([(0u8, 999), (1u8, 1)]);
        let mut sim = CountSim::new(Epidemic, config, 5);
        let out = sim.run_until(|c| c.count(&1) == 1000, 100, 100.0);
        assert!(out.converged);
        assert_eq!(sim.config().population_size(), 1000);
    }

    #[test]
    fn population_size_is_conserved() {
        let config = CountConfiguration::from_pairs([(0u8, 500), (1u8, 500)]);
        let mut sim = CountSim::new(Epidemic, config, 6);
        for _ in 0..10 {
            sim.steps(100);
            assert_eq!(sim.config().population_size(), 1000);
        }
    }

    #[test]
    fn count_and_agent_sims_agree_statistically() {
        // Epidemic completion time distribution should match between the two
        // simulators (they realize the same process). Compare means loosely.
        let n = 500u64;
        let trials = 12;
        let mut count_mean = 0.0;
        for t in 0..trials {
            let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
            let mut sim = CountSim::new(Epidemic, config, 1000 + t);
            let out = sim.run_until(|c| c.count(&1) == n, 50, 200.0);
            assert!(out.converged);
            count_mean += out.time;
        }
        count_mean /= trials as f64;
        let ln_n = (n as f64).ln();
        // E[T] ≈ 2 H_{n-1} ≈ 2 ln n for the one-way epidemic.
        assert!(
            count_mean > ln_n && count_mean < 4.0 * ln_n,
            "mean {count_mean}, ln n {ln_n}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let config = CountConfiguration::from_pairs([(0u8, 99), (1u8, 1)]);
            let mut sim = CountSim::new(Epidemic, config, seed);
            sim.run_until(|c| c.count(&1) == 100, 10, 100.0).interactions
        };
        assert_eq!(run(42), run(42));
    }

    /// Randomized protocol: receiver flips to sender's state with prob 1/2.
    struct LazyCopy;

    impl CountProtocol for LazyCopy {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, rng: &mut SimRng) -> (u8, u8) {
            if rng.gen::<bool>() {
                (sen, sen)
            } else {
                (rec, sen)
            }
        }
    }

    #[test]
    fn randomized_count_protocol_runs() {
        let config = CountConfiguration::from_pairs([(0u8, 50), (1u8, 50)]);
        let mut sim = CountSim::new(LazyCopy, config, 9);
        // Lazy copying is a consensus process; eventually one opinion wins.
        let out = sim.run_until(
            |c| c.count(&0) == 100 || c.count(&1) == 100,
            100,
            10_000.0,
        );
        assert!(out.converged);
    }
}
