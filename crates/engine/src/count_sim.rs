//! [`CountSim`]: the configuration-vector simulator.
//!
//! For protocols whose reachable state space is small (epidemics, the slow
//! exact backup counter of §3.3, the abstract protocols of the Theorem 4.1
//! experiments), storing a count per state instead of a state per agent makes
//! each interaction O(#states) instead of O(1)-with-huge-constants, and more
//! importantly lets the density experiments scale to millions of agents with
//! O(#states) memory.
//!
//! The simulator maintains the exact same stochastic process as
//! [`crate::sim::AgentSim`]: an ordered pair of distinct agents is drawn
//! uniformly; since agents in the same state are interchangeable, drawing a
//! pair of *states* weighted by counts (without replacement) is an identical
//! distribution.
//!
//! ## Hot-path layout
//!
//! [`CountConfiguration`] stores counts in flat slot-indexed arrays (state
//! table, count vector, and a Fenwick tree mirroring the counts) with an
//! open-addressed [`SlotIndex`] — FNV-seeded,
//! power-of-two capacity, linear probing — for state→slot lookup. One
//! interaction costs a single RNG draw mapped to an ordered agent pair plus
//! two `O(log k)` Fenwick descents, and a mutation costs `O(log k)` point
//! updates plus `O(1)` expected index probes — so even protocols whose
//! every interaction changes both agents (the interned paper protocols,
//! whose states carry interaction counters) pay `O(log k)` per interaction
//! rather than the `O(k)` a rebuilt prefix-sum array would. Slot
//! *assignment* is first-seen order with free-list recycling, and the index
//! is derivable from the slot tables, so snapshots and GC renames rebuild
//! it rather than serialize it. State-ordered views
//! ([`CountConfiguration::iter`]) sort the occupied slots on demand — a
//! checkpoint-level cost, off the per-interaction path. For asymptotically
//! faster simulation at large `n`, see [`crate::batch`].

use std::collections::BTreeMap;
use std::hash::Hash;

use rand::Rng;

use crate::rng::{rng_from_seed, SimRng};
use crate::scheduler::parallel_time;
use crate::sim::RunOutcome;
use crate::slot_index::{fnv_hash, SlotIndex};

/// The outcome law of one interaction for a fixed ordered pair of input
/// states, as exposed to the batched simulator.
///
/// A protocol that can describe `transition(rec, sen, ·)` as an explicit
/// finite distribution lets [`crate::batch::BatchedCountSim`] apply a whole
/// batch of identical input pairs with a single multinomial split over the
/// outcomes (the ppsim treatment of randomized transitions) instead of one
/// RNG round-trip per interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcomes<S> {
    /// The transition always produces `(rec', sen')`.
    Deterministic(S, S),
    /// Finite support: `(rec', sen', probability)` triples. Probabilities
    /// must be non-negative and sum to 1 (within floating-point tolerance);
    /// the batched engine validates and renormalizes.
    Random(Vec<(S, S, f64)>),
}

/// A protocol over a small copyable state type, expressed as a transition
/// function on (receiver, sender) state values.
pub trait CountProtocol {
    /// Agent state; must be orderable so configurations have a canonical
    /// form, and hashable so the engines' open-addressed slot indices can
    /// probe it.
    type State: Copy + Ord + Hash + std::fmt::Debug;

    /// Computes the post-interaction states `(rec', sen')`.
    fn transition(
        &self,
        rec: Self::State,
        sen: Self::State,
        rng: &mut SimRng,
    ) -> (Self::State, Self::State);

    /// The exact outcome distribution of `transition(rec, sen, ·)`, when it
    /// is finite and the protocol can enumerate it.
    ///
    /// Returning `Some` lets [`crate::batch::BatchedCountSim`] bulk-apply
    /// this pair (deterministically or via a multinomial split). Returning
    /// `None` — the default — marks the pair's outcome support as unbounded
    /// or unknown; the batched engine then falls back to sampling each such
    /// interaction individually through [`CountProtocol::transition`], which
    /// is still exact, just not amortized.
    fn outcomes(&self, rec: Self::State, sen: Self::State) -> Option<Outcomes<Self::State>> {
        let _ = (rec, sen);
        None
    }

    /// Whether [`CountProtocol::transition`] is a pure function of the two
    /// states (never reads the RNG). The
    /// [`crate::batch::DeterministicCountProtocol`] blanket impl reports
    /// `true` automatically.
    fn is_deterministic(&self) -> bool {
        false
    }

    /// Whether [`crate::batch::ConfigSim::new`] should pick the batched
    /// engine at large populations. Batching pays off when the *occupied*
    /// state count stays far below `√n` (per-batch work grows with the
    /// square of the occupied support); protocols with large or unbounded
    /// reachable state spaces should stay sequential even when their
    /// outcomes are enumerable. Defaults to [`Self::is_deterministic`].
    fn prefers_batching(&self) -> bool {
        self.is_deterministic()
    }

    /// Number of slots allocated in the protocol's backing state table,
    /// when its `State` values are handles into one (the
    /// [`crate::interned::Interned`] adapter). `None` — the default —
    /// marks self-contained state types, which never need garbage
    /// collection.
    ///
    /// [`crate::batch::ConfigSim`] polls this at its adaptive checkpoints:
    /// once the table holds several times more slots than the live support
    /// it triggers [`CountProtocol::collect_table`], keeping
    /// counter-churning protocols (whose dead interned states would
    /// otherwise accumulate without bound) at live-support size.
    fn table_len(&self) -> Option<usize> {
        None
    }

    /// Interner garbage collection: evicts every backing-table entry not
    /// in `live` and compacts the survivors into a dense prefix,
    /// returning the old → new renaming of the live states (relative
    /// order preserved, so id-ordered iteration sees the same state
    /// sequence before and after). The caller — an engine — applies the
    /// renaming to its configuration in the same pass. `None` (the
    /// default) means the protocol is not table-backed.
    fn collect_table(&self, live: &[Self::State]) -> Option<Vec<(Self::State, Self::State)>> {
        let _ = live;
        None
    }

    /// Bulk per-agent execution: run up to `budget` interactions directly
    /// against `config` and the engine RNG, returning the number executed,
    /// or `None` to decline (the default, and always correct).
    ///
    /// This is the **dense lane** hook for table-backed protocols whose
    /// occupied support approaches `n` (the paper's counter-churning record
    /// states): when nearly every agent holds a unique state, the
    /// configuration-vector machinery — weighted pair draws, state
    /// hash-interning, count bookkeeping — degenerates into pure overhead
    /// over the agent simulator it was supposed to beat. An implementation
    /// may expand the configuration into a per-agent array, execute
    /// interactions at agent granularity (mutating sole-owner backing
    /// records in place, with no hashing at all), and collapse back into a
    /// canonical configuration before returning.
    ///
    /// Contract: the decoded `(state, count)` multiset after the call must
    /// be exactly what per-agent execution of that many interactions
    /// produces; `config` must be left canonical (no duplicate states);
    /// all randomness must come from `rng`; and the executed count must be
    /// in `1..=budget` whenever `Some` is returned. Like the engines
    /// themselves, the lane realizes the uniform ordered-pair process —
    /// only the per-interaction constant may differ.
    fn advance_dense(
        &self,
        config: &mut CountConfiguration<Self::State>,
        rng: &mut SimRng,
        budget: u64,
    ) -> Option<u64> {
        let _ = (config, rng, budget);
        None
    }

    /// Observability: cumulative counters from the protocol's own machinery
    /// (the [`crate::interned::Interned`] adapter's pair cache and interner
    /// index). `None` — the default — for self-contained protocols.
    ///
    /// [`crate::batch::ConfigSim`] polls this at its adaptive checkpoints
    /// and flushes the *deltas* into the attached
    /// [`pp_telemetry::Metrics`] registry, so reading it must be cheap and
    /// must observe nothing the trajectory depends on.
    fn telemetry_stats(&self) -> Option<AdapterStats> {
        None
    }
}

/// Cumulative adapter-level telemetry counters (see
/// [`CountProtocol::telemetry_stats`]). All fields are monotone totals
/// since adapter construction; consumers diff successive reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdapterStats {
    /// Pair-outcome cache probes that replayed a memoized outcome.
    pub cache_hits: u64,
    /// Pair-outcome cache probes that fell through to the full path.
    pub cache_misses: u64,
    /// Whole-cache drops on interner generation bumps.
    pub cache_gen_drops: u64,
    /// Interner state → id index lookups.
    pub index_lookups: u64,
    /// Total probe steps those lookups walked.
    pub index_probes: u64,
    /// Interner index growth/rebuild sweeps.
    pub index_rebuilds: u64,
}

/// A count-space protocol whose initial configuration is input-dependent —
/// the [`crate::protocol::SeededInit`] analogue for the configuration-vector
/// engines.
///
/// `SeededInit` says "the i-th agent of n starts in state f(i)"; since the
/// interaction process depends on the initial states only through their
/// multiset (agents are exchangeable), the count-space counterpart is simply
/// the multiset itself. Majority input splits, planted-leader starts
/// (Theorem 3.13), and seeded-value populations all express their inputs
/// here and run on [`crate::batch::ConfigSim`] instead of being forced onto
/// the agent simulator. This is harness-level initialization (choosing the
/// protocol's *input*), not part of the transition algorithm, so it does not
/// violate uniformity.
pub trait CountSeededInit: CountProtocol {
    /// The initial configuration for a population of `n` agents.
    fn initial_config(&self, n: u64) -> CountConfiguration<Self::State>;
}

/// A configuration: a multiset of states with total count `n`.
///
/// ```
/// use pp_engine::count_sim::CountConfiguration;
///
/// let c = CountConfiguration::from_pairs([(0u8, 60), (1u8, 40)]);
/// assert_eq!(c.population_size(), 100);
/// assert_eq!(c.count(&0), 60);
/// assert!(c.is_dense(0.4));   // every present state holds ≥ 40% of agents
/// assert!(!c.is_dense(0.5));
/// ```
#[derive(Clone)]
pub struct CountConfiguration<S: Copy + Ord + Hash> {
    /// Slot-indexed state table (slots whose count returns to zero are
    /// recycled through `free`, so the table stays at peak-support size
    /// even for protocols whose states churn — e.g. interned record states
    /// carrying interaction counters).
    states: Vec<S>,
    /// Slot-indexed counts.
    counts: Vec<u64>,
    /// Open-addressed state → slot lookup (live states only; probes
    /// against `states`, stores nothing but slot ids).
    index: SlotIndex,
    /// Total number of agents.
    total: u64,
    /// Number of slots with positive count (the support size).
    occupied: usize,
    /// Fenwick (binary indexed) tree over `counts`, 1-indexed with
    /// `tree[0]` unused: node `i` holds the sum of counts over slots
    /// `(i - lowbit(i))..i`. Kept in sync incrementally on every mutation,
    /// so weighted draws and point updates are both `O(log k)`.
    tree: Vec<u64>,
    /// Zero-count slots evicted from `index`, ready for reuse (their
    /// Fenwick weight is already zero, so reuse costs nothing).
    free: Vec<usize>,
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> CountConfiguration<S> {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self {
            states: Vec::new(),
            counts: Vec::new(),
            index: SlotIndex::new(),
            total: 0,
            occupied: 0,
            tree: vec![0],
            free: Vec::new(),
        }
    }

    /// Looks `state` up in the open-addressed index (`None` if not live).
    #[inline]
    fn slot_lookup(&self, state: &S) -> Option<usize> {
        self.index
            .get(fnv_hash(state), |slot| self.states[slot as usize] == *state)
            .map(|slot| slot as usize)
    }

    /// Observability: cumulative lookup/probe/rebuild tallies from the
    /// configuration's own state → slot index (distinct from the interner's
    /// index; this one tracks the engine-side slot table).
    pub(crate) fn index_stats(&self) -> crate::slot_index::SlotIndexStats {
        self.index.stats()
    }

    /// Inserts `slot` (holding `self.states[slot]`) into the index.
    #[inline]
    fn index_insert(&mut self, slot: usize) {
        let Self { index, states, .. } = self;
        index.insert(fnv_hash(&states[slot]), u32::try_from(slot).unwrap(), |s| {
            fnv_hash(&states[s as usize])
        });
    }

    /// Creates a configuration from `(state, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a state appears twice.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (S, u64)>) -> Self {
        let mut c = Self::new();
        for (s, k) in pairs {
            assert!(
                c.slot_lookup(&s).is_none(),
                "duplicate state {s:?} in configuration"
            );
            let slot = c.register(s);
            if k > 0 {
                c.counts[slot] = k;
                c.tree_add(slot, k);
                c.occupied += 1;
                c.total += k;
            }
        }
        c
    }

    /// All `n` agents in a single state.
    pub fn uniform(state: S, n: u64) -> Self {
        Self::from_pairs([(state, n)])
    }

    /// Returns the slot for `state`, creating (or recycling) one if needed.
    fn register(&mut self, state: S) -> usize {
        if let Some(slot) = self.slot_lookup(&state) {
            return slot;
        }
        if let Some(slot) = self.free.pop() {
            debug_assert_eq!(self.counts[slot], 0);
            self.states[slot] = state;
            self.index_insert(slot);
            return slot;
        }
        let slot = self.states.len();
        self.states.push(state);
        self.counts.push(0);
        self.index_insert(slot);
        self.tree_append();
        slot
    }

    /// Evicts a slot whose count just returned to zero, making it available
    /// for reuse. Slots that held a zero count from construction stay
    /// indexed (so `from_pairs` can report duplicates), which is harmless:
    /// they are invisible to iteration and re-addable through the index.
    fn release_if_empty(&mut self, slot: usize) {
        if self.counts[slot] == 0 {
            let Self { index, states, .. } = self;
            index.remove(fnv_hash(&states[slot]), u32::try_from(slot).unwrap(), |s| {
                fnv_hash(&states[s as usize])
            });
            self.free.push(slot);
        }
    }

    /// Appends the Fenwick node for a freshly pushed (zero-count) slot.
    ///
    /// The new node `i` covers slots `(i - lowbit(i))..i`; its value is
    /// computable from the existing tree as a difference of prefix sums, so
    /// appends are `O(log k)` instead of a full rebuild.
    fn tree_append(&mut self) {
        let i = self.tree.len();
        let low = i & (i - 1); // i - lowbit(i)
        let val = self.tree_prefix(i - 1) - self.tree_prefix(low);
        self.tree.push(val);
    }

    /// Sum of counts over slots `0..slots` (Fenwick prefix query).
    #[inline]
    fn tree_prefix(&self, slots: usize) -> u64 {
        let mut i = slots;
        let mut acc = 0;
        while i > 0 {
            acc += self.tree[i];
            i &= i - 1;
        }
        acc
    }

    /// Adds `k` to slot `slot` in the Fenwick tree.
    #[inline]
    fn tree_add(&mut self, slot: usize, k: u64) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] += k;
            i += i & i.wrapping_neg();
        }
    }

    /// Subtracts `k` from slot `slot` in the Fenwick tree.
    #[inline]
    fn tree_sub(&mut self, slot: usize, k: u64) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] -= k;
            i += i & i.wrapping_neg();
        }
    }

    /// Checkpoint accessor: the raw slot tables `(states, counts, free)`.
    /// Everything else — index, totals, Fenwick tree — is a pure function
    /// of these three (see [`Self::from_snapshot_parts`]).
    pub(crate) fn snapshot_parts(&self) -> (&[S], &[u64], &[usize]) {
        (&self.states, &self.counts, &self.free)
    }

    /// Rebuilds a configuration from checkpoint parts, reconstructing the
    /// derived fields deterministically: the index holds every slot not on
    /// the free list, and the Fenwick tree is rebuilt bottom-up. The
    /// incremental maintenance (`tree_add`/`tree_sub`/`tree_append`) keeps
    /// every node at the exact sum of its slot range, so the rebuilt tree
    /// is bit-identical to the one the snapshotted instance carried — a
    /// restored configuration draws the same pairs from the same RNG
    /// stream.
    pub(crate) fn from_snapshot_parts(states: Vec<S>, counts: Vec<u64>, free: Vec<usize>) -> Self {
        assert_eq!(states.len(), counts.len(), "snapshot slot tables disagree");
        let freed: std::collections::BTreeSet<usize> = free.iter().copied().collect();
        let mut index = SlotIndex::with_capacity(states.len());
        for (slot, s) in states.iter().enumerate() {
            if !freed.contains(&slot) {
                let hash = fnv_hash(s);
                assert!(
                    index.get(hash, |c| states[c as usize] == *s).is_none(),
                    "snapshot has duplicate live state {s:?}"
                );
                index.insert(hash, u32::try_from(slot).unwrap(), |c| {
                    fnv_hash(&states[c as usize])
                });
            }
        }
        let total = counts.iter().sum();
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        let k = counts.len();
        let mut tree = vec![0u64; k + 1];
        for i in 1..=k {
            tree[i] += counts[i - 1];
            let j = i + (i & i.wrapping_neg());
            if j <= k {
                let node = tree[i];
                tree[j] += node;
            }
        }
        Self {
            states,
            counts,
            index,
            total,
            occupied,
            tree,
            free,
        }
    }

    /// Total number of agents.
    pub fn population_size(&self) -> u64 {
        self.total
    }

    /// Count of a particular state (0 if absent).
    pub fn count(&self, state: &S) -> u64 {
        self.slot_lookup(state).map_or(0, |slot| self.counts[slot])
    }

    /// Number of distinct states present.
    pub fn support_size(&self) -> usize {
        self.occupied
    }

    /// Iterates over `(state, count)` pairs with positive count, in state
    /// order.
    ///
    /// The open-addressed index has no intrinsic order, so this sorts the
    /// occupied slots by state on each call — `O(k log k)`, a
    /// checkpoint-level cost (predicates, snapshots, equality), never on
    /// the per-interaction path.
    pub fn iter(&self) -> impl Iterator<Item = (&S, &u64)> {
        let mut slots: Vec<usize> = (0..self.counts.len())
            .filter(|&slot| self.counts[slot] > 0)
            .collect();
        slots.sort_unstable_by(|&a, &b| self.states[a].cmp(&self.states[b]));
        slots
            .into_iter()
            .map(move |slot| (&self.states[slot], &self.counts[slot]))
    }

    /// Iterates over every *registered* state — occupied states plus any
    /// zero-count states still holding a slot (possible only for states
    /// given count 0 at construction) — in state order. These are the GC
    /// roots: a registered state's id must survive collection even at
    /// count 0, or a recycled id could collide with its slot.
    pub(crate) fn registered(&self) -> impl Iterator<Item = &S> {
        let freed: std::collections::BTreeSet<usize> = self.free.iter().copied().collect();
        let mut slots: Vec<usize> = (0..self.states.len())
            .filter(|slot| !freed.contains(slot))
            .collect();
        slots.sort_unstable_by(|&a, &b| self.states[a].cmp(&self.states[b]));
        slots.into_iter().map(move |slot| &self.states[slot])
    }

    /// Number of registered states (see [`Self::registered`]).
    pub(crate) fn registered_len(&self) -> usize {
        self.index.len()
    }

    /// Renames every registered state in place through `map`, preserving
    /// the slot layout exactly: slot order, counts, the Fenwick tree, and
    /// the free list are untouched, so the agent-index → slot mapping —
    /// and with it the whole seeded trajectory — is identical before and
    /// after. This is the configuration half of an interner GC pass; `map`
    /// must cover every registered state injectively.
    ///
    /// # Panics
    ///
    /// Panics if a registered state has no entry in `map`.
    pub(crate) fn rename_states(&mut self, map: &BTreeMap<S, S>) {
        let freed: std::collections::BTreeSet<usize> = self.free.iter().copied().collect();
        for slot in 0..self.states.len() {
            if freed.contains(&slot) {
                continue;
            }
            let old = self.states[slot];
            let new = *map
                .get(&old)
                .unwrap_or_else(|| panic!("GC renaming is missing registered state {old:?}"));
            self.states[slot] = new;
        }
        // Slot contents changed wholesale; rebuild the index in slot order
        // (assignment untouched, so the trajectory is too).
        let Self {
            index,
            states,
            free,
            ..
        } = self;
        let freed: std::collections::BTreeSet<usize> = free.iter().copied().collect();
        index.rebuild(
            (0..states.len())
                .filter(|slot| !freed.contains(slot))
                .map(|slot| u32::try_from(slot).unwrap()),
            |s| fnv_hash(&states[s as usize]),
        );
    }

    /// Adds `k` agents in `state`.
    pub fn add(&mut self, state: S, k: u64) {
        if k == 0 {
            return;
        }
        let slot = self.register(state);
        if self.counts[slot] == 0 {
            self.occupied += 1;
        }
        self.counts[slot] += k;
        self.tree_add(slot, k);
        self.total += k;
    }

    /// Removes `k` agents in `state`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` agents are in `state`.
    pub fn remove(&mut self, state: S, k: u64) {
        if k == 0 {
            return;
        }
        let slot = match self.slot_lookup(&state) {
            Some(slot) if self.counts[slot] > 0 => slot,
            _ => panic!("removing {k} of absent state {state:?}"),
        };
        let c = self.counts[slot];
        assert!(c >= k, "removing {k} of state {state:?} with count {c}");
        self.counts[slot] = c - k;
        self.tree_sub(slot, k);
        if c == k {
            self.occupied -= 1;
            self.release_if_empty(slot);
        }
        self.total -= k;
    }

    /// True if every present state has count at least `alpha * n`.
    ///
    /// This is the paper's α-density: a configuration is α-dense when each
    /// state present occupies at least an α fraction of the population.
    pub fn is_dense(&self, alpha: f64) -> bool {
        let threshold = alpha * self.total as f64;
        self.counts.iter().all(|&k| k == 0 || k as f64 >= threshold)
    }

    /// Maps a uniform agent index in `0..total` to its slot via a Fenwick
    /// descent (`O(log k)`).
    #[inline]
    fn slot_of_agent(&self, agent: u64) -> usize {
        debug_assert!(agent < self.total);
        let len = self.tree.len() - 1;
        let mut step = len.next_power_of_two();
        if step > len {
            step >>= 1;
        }
        let mut pos = 0usize;
        let mut rem = agent;
        while step > 0 {
            let next = pos + step;
            if next <= len && self.tree[next] <= rem {
                rem -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // `pos` slots are fully to the left of `agent`, so the agent sits in
        // slot `pos` (its count is positive by construction).
        pos
    }

    /// Draws a uniform ordered pair of distinct agents and returns their
    /// slots `(receiver, sender)` with one RNG draw and two Fenwick descents.
    ///
    /// Interpreting `z ∈ [0, n(n-1))` as `(receiver_index, sender_offset)`
    /// gives every ordered pair of distinct agent indices probability
    /// exactly `1/(n(n-1))` — the same distribution [`crate::sim::AgentSim`]
    /// realizes with explicit agents.
    fn draw_pair_slots(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let n = self.total;
        debug_assert!(n >= 2);
        debug_assert!(
            n <= u32::MAX as u64,
            "pair-index arithmetic requires n(n-1) to fit in u64"
        );
        let z = rng.gen_range(0..n * (n - 1));
        let receiver = z / (n - 1);
        let mut sender = z % (n - 1);
        if sender >= receiver {
            sender += 1;
        }
        (self.slot_of_agent(receiver), self.slot_of_agent(sender))
    }

    /// Applies one interaction's state change at the slot level, skipping
    /// all bookkeeping when the transition was a no-op.
    fn apply_transition(&mut self, rec_slot: usize, sen_slot: usize, rec2: S, sen2: S) {
        if self.states[rec_slot] == rec2 && self.states[sen_slot] == sen2 {
            return;
        }
        self.counts[rec_slot] -= 1;
        self.tree_sub(rec_slot, 1);
        if self.counts[rec_slot] == 0 {
            self.occupied -= 1;
        }
        self.counts[sen_slot] -= 1;
        self.tree_sub(sen_slot, 1);
        if self.counts[sen_slot] == 0 {
            self.occupied -= 1;
        }
        // Release only after both decrements: the two agents may share a
        // slot, and a slot must not be recycled while a decrement on it is
        // still pending.
        self.release_if_empty(rec_slot);
        if sen_slot != rec_slot {
            self.release_if_empty(sen_slot);
        }
        self.total -= 2;
        self.add(rec2, 1);
        self.add(sen2, 1);
    }
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> Default for CountConfiguration<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> std::fmt::Debug for CountConfiguration<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> PartialEq for CountConfiguration<S> {
    /// Configurations are equal when they contain the same multiset of
    /// states, regardless of internal slot order or zero-count slots.
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.occupied == other.occupied && self.iter().eq(other.iter())
    }
}

impl<S: Copy + Ord + Hash + std::fmt::Debug> Eq for CountConfiguration<S> {}

impl<S: Copy + Ord + Hash + std::fmt::Debug> FromIterator<(S, u64)> for CountConfiguration<S> {
    fn from_iter<I: IntoIterator<Item = (S, u64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

/// Simulator over a [`CountConfiguration`].
pub struct CountSim<P: CountProtocol> {
    protocol: P,
    config: CountConfiguration<P::State>,
    rng: SimRng,
    interactions: u64,
    n: u64,
}

impl<P: CountProtocol> CountSim<P> {
    /// Creates a simulator from an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than 2 or more than
    /// `u32::MAX` agents (the single-draw ordered-pair sampling needs
    /// `n(n-1)` to fit in a `u64`).
    pub fn new(protocol: P, config: CountConfiguration<P::State>, seed: u64) -> Self {
        let n = config.population_size();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        assert!(
            n <= u32::MAX as u64,
            "pair-index arithmetic requires n(n-1) to fit in u64, got n = {n}"
        );
        Self {
            protocol,
            config,
            rng: rng_from_seed(seed),
            interactions: 0,
            n,
        }
    }

    /// Rebuilds a simulator mid-run from its constituent parts, carrying the
    /// RNG stream and interaction clock across an engine switch (see
    /// [`crate::batch::ConfigSim`]'s adaptive re-selection).
    pub(crate) fn from_parts(
        protocol: P,
        config: CountConfiguration<P::State>,
        rng: SimRng,
        interactions: u64,
    ) -> Self {
        let n = config.population_size();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        Self {
            protocol,
            config,
            rng,
            interactions,
            n,
        }
    }

    /// Decomposes the simulator into `(protocol, configuration, rng,
    /// interactions)` so an engine switch can hand the run to
    /// [`crate::batch::BatchedCountSim`] without losing state.
    pub(crate) fn into_parts(self) -> (P, CountConfiguration<P::State>, SimRng, u64) {
        (self.protocol, self.config, self.rng, self.interactions)
    }

    /// The protocol being simulated.
    pub(crate) fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Checkpoint accessor: the RNG stream.
    pub(crate) fn rng(&self) -> &SimRng {
        &self.rng
    }

    /// Runs one interner-GC pass ([`CountProtocol::collect_table`]) rooted
    /// at the configuration's registered states, renaming the
    /// configuration in place (slot layout untouched — see
    /// [`CountConfiguration::rename_states`] for why the trajectory is
    /// unaffected). Returns whether the protocol performed a collection.
    /// Consumes no randomness.
    pub(crate) fn collect_table(&mut self) -> bool {
        let roots: Vec<P::State> = self.config.registered().copied().collect();
        match self.protocol.collect_table(&roots) {
            Some(renames) => {
                self.config.rename_states(&renames.into_iter().collect());
                true
            }
            None => false,
        }
    }

    /// Offers the protocol's dense per-agent lane
    /// ([`CountProtocol::advance_dense`]) up to `budget` interactions,
    /// crediting whatever it executes to the interaction clock. `None`
    /// when the protocol declines (not table-backed, support too
    /// concentrated, budget too small for the `O(n)` expand/collapse to
    /// amortize).
    pub(crate) fn advance_dense(&mut self, budget: u64) -> Option<u64> {
        let Self {
            protocol,
            config,
            rng,
            interactions,
            ..
        } = self;
        let executed = protocol.advance_dense(config, rng, budget)?;
        debug_assert!(executed >= 1 && executed <= budget);
        *interactions += executed;
        Some(executed)
    }

    /// Current configuration.
    pub fn config(&self) -> &CountConfiguration<P::State> {
        &self.config
    }

    /// Population size.
    pub fn population_size(&self) -> u64 {
        self.n
    }

    /// Parallel time elapsed.
    pub fn time(&self) -> f64 {
        parallel_time(self.interactions, self.n as usize)
    }

    /// Total interactions executed.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Executes one interaction.
    pub fn step(&mut self) {
        self.step_observed();
    }

    /// Executes one interaction and reports it as
    /// `(rec, sen, rec', sen')` — used by the Theorem 4.1 witness
    /// extraction, which needs the actual transitions of an execution.
    pub fn step_observed(&mut self) -> (P::State, P::State, P::State, P::State) {
        let (rec_slot, sen_slot) = self.config.draw_pair_slots(&mut self.rng);
        let rec = self.config.states[rec_slot];
        let sen = self.config.states[sen_slot];
        let (rec2, sen2) = self.protocol.transition(rec, sen, &mut self.rng);
        self.config.apply_transition(rec_slot, sen_slot, rec2, sen2);
        self.interactions += 1;
        (rec, sen, rec2, sen2)
    }

    /// Executes `k` interactions.
    pub fn steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Runs for `t` units of parallel time.
    pub fn run_for_time(&mut self, t: f64) {
        let target = (t * self.n as f64).ceil() as u64;
        self.steps(target);
    }

    /// Runs until `predicate(config)` holds, checking every `check_every`
    /// interactions, within a parallel-time budget.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&CountConfiguration<P::State>) -> bool,
        check_every: u64,
        max_time: f64,
    ) -> RunOutcome {
        assert!(check_every > 0, "check_every must be positive");
        let max_interactions = (max_time * self.n as f64).ceil() as u64;
        if predicate(&self.config) {
            return RunOutcome {
                converged: true,
                time: self.time(),
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let burst = check_every.min(max_interactions - self.interactions);
            self.steps(burst);
            if predicate(&self.config) {
                return RunOutcome {
                    converged: true,
                    time: self.time(),
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome {
            converged: false,
            time: self.time(),
            interactions: self.interactions,
        }
    }
}

impl<P: CountProtocol> std::fmt::Debug for CountSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSim")
            .field("n", &self.n)
            .field("support", &self.config.support_size())
            .field("interactions", &self.interactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way epidemic over {0 = susceptible, 1 = infected}.
    struct Epidemic;

    impl CountProtocol for Epidemic {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, _rng: &mut SimRng) -> (u8, u8) {
            (rec.max(sen & 1), sen)
        }
    }

    #[test]
    fn configuration_bookkeeping() {
        let mut c = CountConfiguration::from_pairs([(0u8, 5), (1u8, 3)]);
        assert_eq!(c.population_size(), 8);
        assert_eq!(c.count(&0), 5);
        assert_eq!(c.count(&2), 0);
        c.add(2, 4);
        c.remove(0, 5);
        assert_eq!(c.population_size(), 7);
        assert_eq!(c.count(&0), 0);
        assert_eq!(c.support_size(), 2);
    }

    #[test]
    fn zeroed_slots_behave_like_absent_states() {
        let mut c = CountConfiguration::from_pairs([(0u8, 5), (1u8, 3)]);
        c.remove(0, 5);
        // The zeroed slot is invisible to iteration, equality, and density.
        assert_eq!(c.iter().count(), 1);
        assert_eq!(c, CountConfiguration::from_pairs([(1u8, 3)]));
        assert!(c.is_dense(1.0));
        // Re-adding reuses the slot and restores visibility.
        c.add(0, 2);
        assert_eq!(c.count(&0), 2);
        assert_eq!(c.support_size(), 2);
    }

    #[test]
    #[should_panic(expected = "removing")]
    fn remove_too_many_panics() {
        let mut c = CountConfiguration::from_pairs([(0u8, 2)]);
        c.remove(0, 3);
    }

    #[test]
    #[should_panic(expected = "removing")]
    fn remove_from_zeroed_slot_panics() {
        let mut c = CountConfiguration::from_pairs([(0u8, 2), (1u8, 1)]);
        c.remove(0, 2);
        c.remove(0, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate state")]
    fn duplicate_states_rejected() {
        CountConfiguration::from_pairs([(0u8, 2), (0u8, 3)]);
    }

    #[test]
    fn density_check() {
        let c = CountConfiguration::from_pairs([(0u8, 50), (1u8, 50)]);
        assert!(c.is_dense(0.5));
        assert!(c.is_dense(0.3));
        let d = CountConfiguration::from_pairs([(0u8, 99), (1u8, 1)]);
        assert!(!d.is_dense(0.1));
        assert!(d.is_dense(0.01));
    }

    #[test]
    fn fenwick_tree_tracks_counts_through_mutations() {
        // Exercise add/remove/register interleavings and check every prefix
        // sum against the naive recomputation.
        let mut c = CountConfiguration::from_pairs([(0u8, 3), (1u8, 7), (2u8, 1)]);
        c.add(5, 4);
        c.remove(1, 7);
        c.add(1, 2);
        c.add(9, 1);
        c.remove(0, 1);
        let naive: Vec<u64> = c
            .counts
            .iter()
            .scan(0u64, |acc, &k| {
                *acc += k;
                Some(*acc)
            })
            .collect();
        for (j, &want) in naive.iter().enumerate() {
            assert_eq!(c.tree_prefix(j + 1), want, "prefix over {} slots", j + 1);
        }
        // Every agent index maps to a slot whose cumulative range covers it.
        for agent in 0..c.population_size() {
            let slot = c.slot_of_agent(agent);
            let before = c.tree_prefix(slot);
            assert!(
                before <= agent && agent < before + c.counts[slot],
                "agent {agent} mapped to slot {slot}"
            );
        }
    }

    #[test]
    fn pair_draws_are_uniform_over_ordered_state_pairs() {
        // 3 states with counts 2/3/5: the ordered state-pair distribution
        // must match P[(a, b)] = c_a (c_b - [a = b]) / (n (n - 1)).
        let mut config = CountConfiguration::from_pairs([(0u8, 2), (1u8, 3), (2u8, 5)]);
        let mut rng = rng_from_seed(42);
        let n = 10f64;
        let trials = 300_000;
        let mut counts = [[0u64; 3]; 3];
        for _ in 0..trials {
            let (r, s) = config.draw_pair_slots(&mut rng);
            counts[r][s] += 1;
        }
        let c = [2f64, 3.0, 5.0];
        for a in 0..3 {
            for b in 0..3 {
                let same = if a == b { 1.0 } else { 0.0 };
                let p = c[a] * (c[b] - same) / (n * (n - 1.0));
                let observed = counts[a][b] as f64 / trials as f64;
                assert!(
                    (observed - p).abs() < 0.01,
                    "pair ({a},{b}): observed {observed}, expected {p}"
                );
            }
        }
    }

    #[test]
    fn epidemic_infects_all() {
        let config = CountConfiguration::from_pairs([(0u8, 999), (1u8, 1)]);
        let mut sim = CountSim::new(Epidemic, config, 5);
        let out = sim.run_until(|c| c.count(&1) == 1000, 100, 100.0);
        assert!(out.converged);
        assert_eq!(sim.config().population_size(), 1000);
    }

    #[test]
    fn population_size_is_conserved() {
        let config = CountConfiguration::from_pairs([(0u8, 500), (1u8, 500)]);
        let mut sim = CountSim::new(Epidemic, config, 6);
        for _ in 0..10 {
            sim.steps(100);
            assert_eq!(sim.config().population_size(), 1000);
        }
    }

    #[test]
    fn count_and_agent_sims_agree_statistically() {
        // Epidemic completion time distribution should match between the two
        // simulators (they realize the same process). Compare means loosely.
        let n = 500u64;
        let trials = 12;
        let mut count_mean = 0.0;
        for t in 0..trials {
            let config = CountConfiguration::from_pairs([(0u8, n - 1), (1u8, 1)]);
            let mut sim = CountSim::new(Epidemic, config, 1000 + t);
            let out = sim.run_until(|c| c.count(&1) == n, 50, 200.0);
            assert!(out.converged);
            count_mean += out.time;
        }
        count_mean /= trials as f64;
        let ln_n = (n as f64).ln();
        // E[T] ≈ 2 H_{n-1} ≈ 2 ln n for the one-way epidemic.
        assert!(
            count_mean > ln_n && count_mean < 4.0 * ln_n,
            "mean {count_mean}, ln n {ln_n}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let config = CountConfiguration::from_pairs([(0u8, 99), (1u8, 1)]);
            let mut sim = CountSim::new(Epidemic, config, seed);
            sim.run_until(|c| c.count(&1) == 100, 10, 100.0)
                .interactions
        };
        assert_eq!(run(42), run(42));
    }

    /// Randomized protocol: receiver flips to sender's state with prob 1/2.
    struct LazyCopy;

    impl CountProtocol for LazyCopy {
        type State = u8;

        fn transition(&self, rec: u8, sen: u8, rng: &mut SimRng) -> (u8, u8) {
            if rng.gen::<bool>() {
                (sen, sen)
            } else {
                (rec, sen)
            }
        }
    }

    #[test]
    fn randomized_count_protocol_runs() {
        let config = CountConfiguration::from_pairs([(0u8, 50), (1u8, 50)]);
        let mut sim = CountSim::new(LazyCopy, config, 9);
        // Lazy copying is a consensus process; eventually one opinion wins.
        let out = sim.run_until(|c| c.count(&0) == 100 || c.count(&1) == 100, 100, 10_000.0);
        assert!(out.converged);
    }
}
