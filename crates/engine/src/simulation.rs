//! The unified simulation API: one [`Engine`] trait, one [`Simulation`]
//! builder.
//!
//! Every measurement in the paper reduces to the same sentence: *run
//! protocol `P` on `n` agents from initial configuration `C` under engine
//! `E` until predicate `Q`, observing metrics `M`.* This module makes that
//! sentence the API:
//!
//! * [`Engine`] abstracts the four simulators ([`AgentSim`],
//!   [`CountSim`], [`BatchedCountSim`], and
//!   the adaptive [`ConfigSim`] facade) behind one object-safe interface —
//!   advance the interaction clock, decode the occupied-state multiset —
//!   so harness code (and the sweep layer) can select engines dynamically
//!   behind a `Box<dyn Engine<S>>`.
//! * [`Simulation`] owns a boxed engine plus the run policy (checkpoint
//!   cadence, time budget, convergence predicate, observers) and provides
//!   the *single* run driver that used to be quadruplicated across the
//!   simulators' `run_until`/`run_for_time` surfaces.
//! * [`Simulation::builder`] (agent-level [`Protocol`]s) and
//!   [`Simulation::count_builder`] ([`CountProtocol`]s) assemble a
//!   simulation declaratively:
//!
//! ```
//! use pp_engine::epidemic::InfectionEpidemic;
//! use pp_engine::simulation::{count_of, Simulation};
//! use pp_engine::EngineMode;
//!
//! let n = 10_000u64;
//! let mut sim = Simulation::count_builder(InfectionEpidemic)
//!     .config([(false, n - 1), (true, 1)])
//!     .seed(7)
//!     .mode(EngineMode::Auto)
//!     .check_every(n / 10)
//!     .until(move |view| count_of(view, &true) == n)
//!     .build();
//! let out = sim.run();
//! assert!(out.converged);
//! // One-way epidemics complete in ~2 ln n parallel time.
//! assert!(out.time < 40.0);
//! ```
//!
//! ## The observation surface
//!
//! All engines report the population as a **decoded multiset**: a slice of
//! `(state, count)` pairs covering every occupied state. Per-agent engines
//! group equal states (first-seen order: the pair holding agent 0's state
//! comes first); count engines decode their configuration (state order for
//! native count protocols, discovery order for interned ones). Convergence
//! is a property of the occupied support, so every predicate in this
//! repository — "all agents infected", "all outputs agree", "no X left" —
//! is expressible against this view, on any engine.
//!
//! ## Observer contract
//!
//! An [`Observer`] is called once on the initial configuration (time 0,
//! before any interaction) and then at every checkpoint — every
//! `check_every` interactions, plus the final checkpoint at which the run
//! converges or exhausts its budget. At each call it receives the parallel
//! time, the total interaction count (interaction-count telemetry), and
//! the decoded view. Observers fire *before* the convergence predicate is
//! evaluated at the same checkpoint, so a trace recorded by an observer
//! always includes the converged snapshot. Observers see a decoded copy
//! and cannot mutate the simulation; they are never called between
//! checkpoints, so a `check_every` of `k` bounds the observation lag to
//! `k` interactions. Checkpoints never consume engine randomness:
//! attaching observers or predicates cannot perturb a trajectory.
//! Closures attach via `observe_with`; named observers (implementing
//! [`Observer`]) are borrowed mutably via `observe` and can be inspected
//! by the caller after the run.
//!
//! ## Determinism and equivalence
//!
//! A built simulation is a deterministic function of `(protocol, init,
//! seed, mode)`. The builder-vs-legacy equivalence suite
//! (`tests/builder_equivalence.rs`) holds the builder to *byte-identical*
//! outcomes against the pre-builder free-function bodies, and the
//! `Engine`-trait conformance suite
//! (`crates/engine/tests/engine_conformance.rs`) holds all four engines to
//! the trait contract.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::{Path, PathBuf};

use pp_telemetry::{Counter, Hist, Metrics, TraceValue};

use crate::batch::{BatchedCountSim, ConfigSim, EngineMode};
use crate::count_sim::{CountConfiguration, CountProtocol, CountSeededInit, CountSim};
use crate::interned::{Interned, InternerHandle};
use crate::protocol::{Protocol, SeededInit};
use crate::sim::{AgentSim, RunOutcome};
use crate::snapshot::{self, Snapshot, SnapshotError, SnapshotState};

/// Which concrete simulator an [`Engine`] is currently running on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Per-agent state array ([`AgentSim`]).
    Agent,
    /// Sequential configuration vector ([`CountSim`]).
    Sequential,
    /// Batched configuration vector ([`BatchedCountSim`]).
    Batched,
}

/// The unified, object-safe simulator interface.
///
/// One implementation per simulator; the run drivers ([`Simulation::run`],
/// [`Simulation::run_until`]) are written once against this trait instead
/// of once per engine. All methods are object-safe, so the sweep layer can
/// hold a `Box<dyn Engine<S>>` and pick the engine at runtime.
pub trait Engine<S> {
    /// Population size `n`.
    fn population_size(&self) -> u64;

    /// Total interactions executed so far.
    fn interactions(&self) -> u64;

    /// Parallel time elapsed (interactions / `n`).
    fn time(&self) -> f64;

    /// Executes at least one and at most `budget` interactions (the engine
    /// picks its natural granularity: single steps, one batch, one
    /// null-skip run). Returns the number executed. Engines never
    /// overshoot `budget`, so drivers land checkpoints exactly.
    fn advance(&mut self, budget: u64) -> u64;

    /// The decoded occupied-state multiset: `(state, count)` pairs with
    /// positive counts summing to `n`. See the [module docs](self) for
    /// per-engine ordering.
    fn view(&self) -> Vec<(S, u64)>;

    /// The concrete simulator currently executing interactions.
    fn kind(&self) -> EngineKind;

    /// Serializes the engine's full mutable state into a versioned
    /// [`Snapshot`] (see [`crate::snapshot`] for the format guarantees).
    ///
    /// Supported by engines built with checkpointing enabled (the
    /// builders' `checkpoint_to` / `resume`); the default implementation
    /// reports [`SnapshotError::Unsupported`], so existing `Engine`
    /// implementations are unaffected.
    fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        Err(SnapshotError::Unsupported)
    }

    /// Attaches a telemetry counter registry (see [`pp_telemetry`]).
    /// Engines record at their existing decision points — batch lengths,
    /// null-skip runs, mode switches, GC passes, dense-lane episodes —
    /// without consuming randomness or influencing any branch, so
    /// attaching a registry never perturbs the trajectory. The default is
    /// a no-op for engines with nothing engine-specific to record (the
    /// per-agent and plain sequential simulators).
    fn set_metrics(&mut self, metrics: Metrics) {
        let _ = metrics;
    }

    /// Sets the batched engine's fill-thread count: `0` = the classic
    /// serial fill, `k ≥ 1` = the deterministic parallel-fill discipline
    /// with up to `k` scoped workers (see [`crate::parallel`]). The
    /// trajectory depends only on whether the discipline is enabled —
    /// never on `k` — so any `k ≥ 1` is byte-identical to any other.
    /// The default is a no-op for engines with no batch fill (the
    /// per-agent and plain sequential simulators).
    fn set_fill_threads(&mut self, threads: u64) {
        let _ = threads;
    }
}

/// Count of agents in `state` within a decoded view (0 if absent).
pub fn count_of<S: PartialEq>(view: &[(S, u64)], state: &S) -> u64 {
    view.iter()
        .find_map(|(s, c)| (s == state).then_some(*c))
        .unwrap_or(0)
}

/// Total population of a decoded view.
pub fn view_population<S>(view: &[(S, u64)]) -> u64 {
    view.iter().map(|(_, c)| c).sum()
}

impl<P: Protocol> Engine<P::State> for AgentSim<P>
where
    P::State: Eq + Hash,
{
    fn population_size(&self) -> u64 {
        AgentSim::population_size(self) as u64
    }

    fn interactions(&self) -> u64 {
        AgentSim::interactions(self)
    }

    fn time(&self) -> f64 {
        AgentSim::time(self)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        self.steps(budget);
        budget
    }

    /// Groups equal agent states; pairs appear in first-seen agent-index
    /// order, so the first pair always holds agent 0's state.
    fn view(&self) -> Vec<(P::State, u64)> {
        let states = self.states();
        let mut index: HashMap<&P::State, usize> = HashMap::with_capacity(16);
        let mut pairs: Vec<(&P::State, u64)> = Vec::new();
        for s in states {
            match index.entry(s) {
                std::collections::hash_map::Entry::Occupied(e) => pairs[*e.get()].1 += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(pairs.len());
                    pairs.push((s, 1));
                }
            }
        }
        pairs.into_iter().map(|(s, c)| (s.clone(), c)).collect()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Agent
    }
}

impl<P: CountProtocol> Engine<P::State> for CountSim<P> {
    fn population_size(&self) -> u64 {
        CountSim::population_size(self)
    }

    fn interactions(&self) -> u64 {
        CountSim::interactions(self)
    }

    fn time(&self) -> f64 {
        CountSim::time(self)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        self.steps(budget);
        budget
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        self.config().iter().map(|(&s, &c)| (s, c)).collect()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }
}

impl<P: CountProtocol> Engine<P::State> for BatchedCountSim<P> {
    fn population_size(&self) -> u64 {
        BatchedCountSim::population_size(self)
    }

    fn interactions(&self) -> u64 {
        BatchedCountSim::interactions(self)
    }

    fn time(&self) -> f64 {
        BatchedCountSim::time(self)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        BatchedCountSim::advance(self, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        self.config_view().iter().map(|(&s, &c)| (s, c)).collect()
    }

    fn kind(&self) -> EngineKind {
        EngineKind::Batched
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        BatchedCountSim::set_metrics(self, metrics);
    }

    fn set_fill_threads(&mut self, threads: u64) {
        BatchedCountSim::set_fill_threads(self, threads);
    }
}

impl<P: CountProtocol> Engine<P::State> for ConfigSim<P> {
    fn population_size(&self) -> u64 {
        ConfigSim::population_size(self)
    }

    fn interactions(&self) -> u64 {
        ConfigSim::interactions(self)
    }

    fn time(&self) -> f64 {
        ConfigSim::time(self)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        ConfigSim::advance(self, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        self.config_view().iter().map(|(&s, &c)| (s, c)).collect()
    }

    fn kind(&self) -> EngineKind {
        if self.is_batched() {
            EngineKind::Batched
        } else {
            EngineKind::Sequential
        }
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        ConfigSim::set_metrics(self, metrics);
    }

    fn set_fill_threads(&mut self, threads: u64) {
        ConfigSim::set_fill_threads(self, threads);
    }
}

/// An agent-level protocol running interned on the count engines, decoding
/// slot ids back to protocol states at the observation boundary. This is
/// what [`SimulationBuilder`] builds for every non-[`SimMode::Agent`]
/// mode.
struct InternedEngine<P: Protocol>
where
    P::State: Eq + Hash,
{
    sim: ConfigSim<Interned<P>>,
    handle: InternerHandle<P::State>,
}

impl<P: Protocol> Engine<P::State> for InternedEngine<P>
where
    P::State: Eq + Hash,
{
    fn population_size(&self) -> u64 {
        self.sim.population_size()
    }

    fn interactions(&self) -> u64 {
        self.sim.interactions()
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn advance(&mut self, budget: u64) -> u64 {
        ConfigSim::advance(&mut self.sim, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        self.handle.decode(&self.sim.config_view())
    }

    fn kind(&self) -> EngineKind {
        if self.sim.is_batched() {
            EngineKind::Batched
        } else {
            EngineKind::Sequential
        }
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        self.sim.set_metrics(metrics);
    }

    fn set_fill_threads(&mut self, threads: u64) {
        self.sim.set_fill_threads(threads);
    }
}

/// [`AgentSim`] with checkpoint support: delegates every [`Engine`]
/// method and overrides [`Engine::snapshot`] under the [`SnapshotState`]
/// bound. The wrapper (rather than a bound on the plain `Engine` impls)
/// keeps checkpointing opt-in: protocols whose states have no codec build
/// and run exactly as before.
struct CheckpointAgent<P: Protocol>(AgentSim<P>)
where
    P::State: Eq + Hash;

impl<P: Protocol> Engine<P::State> for CheckpointAgent<P>
where
    P::State: Eq + Hash + SnapshotState,
{
    fn population_size(&self) -> u64 {
        Engine::population_size(&self.0)
    }

    fn interactions(&self) -> u64 {
        Engine::interactions(&self.0)
    }

    fn time(&self) -> f64 {
        Engine::time(&self.0)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        Engine::advance(&mut self.0, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        Engine::view(&self.0)
    }

    fn kind(&self) -> EngineKind {
        Engine::kind(&self.0)
    }

    fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        Ok(snapshot::encode_agent(&self.0))
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        Engine::set_metrics(&mut self.0, metrics);
    }
}

/// [`ConfigSim`] with checkpoint support (see [`CheckpointAgent`]).
struct CheckpointConfig<P: CountProtocol>(ConfigSim<P>);

impl<P: CountProtocol> Engine<P::State> for CheckpointConfig<P>
where
    P::State: SnapshotState,
{
    fn population_size(&self) -> u64 {
        Engine::population_size(&self.0)
    }

    fn interactions(&self) -> u64 {
        Engine::interactions(&self.0)
    }

    fn time(&self) -> f64 {
        Engine::time(&self.0)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        Engine::advance(&mut self.0, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        Engine::view(&self.0)
    }

    fn kind(&self) -> EngineKind {
        Engine::kind(&self.0)
    }

    fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        Ok(snapshot::encode_config_sim(&self.0))
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        Engine::set_metrics(&mut self.0, metrics);
    }

    fn set_fill_threads(&mut self, threads: u64) {
        Engine::set_fill_threads(&mut self.0, threads);
    }
}

/// [`InternedEngine`] with checkpoint support (see [`CheckpointAgent`]):
/// the snapshot additionally carries the interner table, its GC
/// generation, and the deterministic certification.
struct CheckpointInterned<P: Protocol>(InternedEngine<P>)
where
    P::State: Eq + Hash;

impl<P: Protocol> Engine<P::State> for CheckpointInterned<P>
where
    P::State: Eq + Hash + SnapshotState,
{
    fn population_size(&self) -> u64 {
        Engine::population_size(&self.0)
    }

    fn interactions(&self) -> u64 {
        Engine::interactions(&self.0)
    }

    fn time(&self) -> f64 {
        Engine::time(&self.0)
    }

    fn advance(&mut self, budget: u64) -> u64 {
        Engine::advance(&mut self.0, budget)
    }

    fn view(&self) -> Vec<(P::State, u64)> {
        Engine::view(&self.0)
    }

    fn kind(&self) -> EngineKind {
        Engine::kind(&self.0)
    }

    fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        Ok(snapshot::encode_interned(&self.0.sim))
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        Engine::set_metrics(&mut self.0, metrics);
    }

    fn set_fill_threads(&mut self, threads: u64) {
        Engine::set_fill_threads(&mut self.0, threads);
    }
}

/// Engine selection for [`Simulation::builder`].
///
/// Agent-level protocols can run either on the per-agent array
/// ([`SimMode::Agent`] — the right choice for the paper's counter-churning
/// record states, whose occupied support is `Θ(n)`) or interned onto the
/// configuration-vector engines (`SimMode::Count` wrapping an
/// [`EngineMode`]). `EngineMode` converts into `SimMode` directly, so
/// `.mode(EngineMode::Auto)` and `.mode(ctx.engine)` both read naturally
/// at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Per-agent state array ([`AgentSim`]).
    Agent,
    /// Interned configuration-vector simulation under the given engine
    /// policy ([`ConfigSim`] over [`Interned`]).
    Count(EngineMode),
}

impl From<EngineMode> for SimMode {
    fn from(mode: EngineMode) -> Self {
        SimMode::Count(mode)
    }
}

/// A checkpoint hook: sampled snapshots, trace recording, convergence
/// telemetry. See the [module docs](self) for the full contract (when
/// observers fire, what they see, and what they must not do).
pub trait Observer<S> {
    /// Called at each checkpoint with the parallel time, total interaction
    /// count, and decoded `(state, count)` view.
    fn observe(&mut self, time: f64, interactions: u64, view: &[(S, u64)]);
}

type BoxedObserver<'a, S> = Box<dyn FnMut(f64, u64, &[(S, u64)]) + 'a>;
type BoxedPredicate<'a, S> = Box<dyn FnMut(&[(S, u64)]) -> bool + 'a>;

/// Run-policy fields shared by both builders.
struct Policy<'a, S> {
    seed: u64,
    check_every: Option<u64>,
    max_time: f64,
    predicate: Option<BoxedPredicate<'a, S>>,
    observers: Vec<BoxedObserver<'a, S>>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<PathBuf>,
    metrics: Option<Metrics>,
    trace_path: Option<PathBuf>,
    threads: Option<u64>,
}

impl<S> Default for Policy<'_, S> {
    fn default() -> Self {
        Self {
            seed: 0,
            check_every: None,
            max_time: f64::INFINITY,
            predicate: None,
            observers: Vec::new(),
            checkpoint_every: None,
            checkpoint_path: None,
            metrics: None,
            trace_path: None,
            threads: None,
        }
    }
}

/// Active checkpoint policy inside a built [`Simulation`].
struct CheckpointPlan {
    /// Snapshot destination (written atomically, see
    /// [`Snapshot::write_atomic`]).
    path: PathBuf,
    /// Minimum interactions between snapshot writes.
    every: u64,
    /// Interaction clock at the last write (0 = none yet).
    last: u64,
}

/// The policy surface shared verbatim by [`SimulationBuilder`] and
/// [`CountSimulationBuilder`].
macro_rules! policy_methods {
    ($state:ty) => {
        /// Seed for all simulation randomness (default 0). Two simulations
        /// with identical protocol, init, seed, and mode realize identical
        /// trajectories.
        pub fn seed(mut self, seed: u64) -> Self {
            self.policy.seed = seed;
            self
        }

        /// Checkpoint cadence in interactions (default: `n`, i.e. once per
        /// unit of parallel time — the cadence every experiment in the
        /// paper uses). Observers and the convergence predicate fire at
        /// every checkpoint.
        pub fn check_every(mut self, interactions: u64) -> Self {
            assert!(interactions > 0, "check_every must be positive");
            self.policy.check_every = Some(interactions);
            self
        }

        /// Parallel-time budget for [`Simulation::run`] (default:
        /// unbounded). The run stops unconverged once `ceil(max_time · n)`
        /// interactions have executed.
        pub fn max_time(mut self, t: f64) -> Self {
            self.policy.max_time = t;
            self
        }

        /// Sets the convergence predicate for [`Simulation::run`]: the run
        /// stops (converged) at the first checkpoint whose decoded view
        /// satisfies it. Evaluated once on the initial configuration too,
        /// so an already-converged start reports `time == 0`.
        pub fn until(mut self, predicate: impl FnMut(&[($state, u64)]) -> bool + 'a) -> Self {
            self.policy.predicate = Some(Box::new(predicate));
            self
        }

        /// Attaches a named [`Observer`], borrowed for the simulation's
        /// lifetime so the caller can read what it accumulated after the
        /// run.
        pub fn observe(mut self, observer: &'a mut impl Observer<$state>) -> Self {
            self.policy
                .observers
                .push(Box::new(move |t, i, v: &[($state, u64)]| {
                    observer.observe(t, i, v)
                }));
            self
        }

        /// Attaches a closure observer `(time, interactions, view)`.
        pub fn observe_with(
            mut self,
            observer: impl FnMut(f64, u64, &[($state, u64)]) + 'a,
        ) -> Self {
            self.policy.observers.push(Box::new(observer));
            self
        }

        /// Minimum interactions between crash-recovery snapshots (default:
        /// the `check_every` cadence). Snapshots fire at the existing
        /// observer checkpoints — never between them, never consuming
        /// engine randomness — so this is rounded up to checkpoint
        /// boundaries. Effective only together with `checkpoint_to`.
        pub fn checkpoint_every(mut self, interactions: u64) -> Self {
            assert!(interactions > 0, "checkpoint_every must be positive");
            self.policy.checkpoint_every = Some(interactions);
            self
        }

        /// Attaches a telemetry counter registry
        /// ([`pp_telemetry::Metrics`]): the engines record batch lengths,
        /// null-skip runs, mode switches, GC passes, dense-lane episodes,
        /// cache/index tallies, and snapshot writes into it. Recording is
        /// observation-only — it never consumes randomness or influences a
        /// decision — so the trajectory is byte-identical with and without
        /// a registry. When no explicit registry is given, builds pick up
        /// the ambient per-thread registry
        /// ([`pp_telemetry::Metrics::install_current`]) if one is
        /// installed; `PP_METRICS=off` suppresses both.
        pub fn metrics(mut self, metrics: &pp_telemetry::Metrics) -> Self {
            self.policy.metrics = Some(metrics.clone());
            self
        }

        /// Writes a structured JSONL event trace (mode switches, GC
        /// passes, dense-lane episodes, checkpoints, final counters) to
        /// `path`, appending if the file exists. Equivalent to setting
        /// `PP_TRACE=path` in the environment for this simulation only.
        /// Implies a metrics registry (one is created if none is attached)
        /// unless `PP_METRICS=off`.
        ///
        /// # Panics
        ///
        /// The build panics if the trace file cannot be opened — a tracing
        /// run that silently drops its trace is worse than none.
        pub fn trace_to(mut self, path: impl Into<std::path::PathBuf>) -> Self {
            self.policy.trace_path = Some(path.into());
            self
        }

        /// Sets the batched engine's fill-thread count, overriding the
        /// ambient setting and the `PP_THREADS` environment knob: `0` =
        /// the classic serial fill (byte-identical to every release before
        /// the knob existed), `k ≥ 1` = the deterministic parallel-fill
        /// discipline with up to `k` scoped worker threads (see
        /// [`crate::parallel`]). The trajectory depends only on whether
        /// the discipline is enabled — never on `k` — so `.threads(1)`
        /// and `.threads(8)` are byte-identical
        /// (`tests/parallel_determinism.rs`). No-op for engines without a
        /// batch fill.
        pub fn threads(mut self, threads: u64) -> Self {
            self.policy.threads = Some(threads);
            self
        }
    };
}

/// A configured simulation: a boxed [`Engine`] plus the run policy.
///
/// Built by [`Simulation::builder`] / [`Simulation::count_builder`]. Run
/// it to completion with [`Simulation::run`], phase by phase with
/// [`Simulation::run_until`], or drive it manually with
/// [`Simulation::run_for_time`] / [`Simulation::advance`] and inspect
/// [`Simulation::view`] between steps.
pub struct Simulation<'a, S> {
    engine: Box<dyn Engine<S> + 'a>,
    check_every: u64,
    max_time: f64,
    predicate: Option<BoxedPredicate<'a, S>>,
    observers: Vec<BoxedObserver<'a, S>>,
    checkpoint: Option<CheckpointPlan>,
    /// The effective telemetry registry ([`Simulation::assemble`] resolves
    /// the builder's `.metrics()` / the ambient per-thread registry /
    /// `PP_TRACE`, gated by `PP_METRICS`). The engine holds a clone; this
    /// copy serves the run driver's snapshot-write instrumentation.
    metrics: Option<Metrics>,
}

impl<'a, S: Clone> Simulation<'a, S> {
    /// Starts a builder for an agent-level [`Protocol`].
    pub fn builder<P>(protocol: P) -> SimulationBuilder<'a, P>
    where
        P: Protocol<State = S>,
        S: Eq + Hash,
    {
        SimulationBuilder::new(protocol)
    }

    /// Starts a builder for a configuration-vector [`CountProtocol`].
    pub fn count_builder<P>(protocol: P) -> CountSimulationBuilder<'a, P>
    where
        P: CountProtocol<State = S>,
    {
        CountSimulationBuilder::new(protocol)
    }

    /// Wraps an existing engine in a simulation with default policy — the
    /// escape hatch for engines constructed outside the builders (e.g. the
    /// `Engine`-trait conformance suite).
    pub fn from_engine(engine: Box<dyn Engine<S> + 'a>) -> Self {
        let n = engine.population_size().max(1);
        Self {
            engine,
            check_every: n,
            max_time: f64::INFINITY,
            predicate: None,
            observers: Vec::new(),
            checkpoint: None,
            metrics: None,
        }
    }

    /// Assembles a simulation from a restored or freshly built engine plus
    /// the builder policy (the single construction path both builders and
    /// both `resume` surfaces share).
    fn assemble(mut engine: Box<dyn Engine<S> + 'a>, policy: Policy<'a, S>) -> Self {
        let n = engine.population_size().max(1);
        let check_every = policy.check_every.unwrap_or(n);
        // Resolve the effective telemetry registry: an explicit `.metrics()`
        // wins, else the ambient per-thread registry (installed by e.g. the
        // sweep runner around each trial); `PP_METRICS=off` suppresses
        // both. A trace destination (`.trace_to()` or `PP_TRACE`) implies a
        // registry, creating one if needed.
        let mut metrics = if crate::env::metrics_enabled() {
            policy.metrics.or_else(Metrics::current)
        } else {
            None
        };
        if crate::env::metrics_enabled() {
            if let Some(path) = policy.trace_path.or_else(crate::env::trace_path) {
                let m = metrics.get_or_insert_with(Metrics::new);
                if !m.is_tracing() {
                    m.trace_to(&path).unwrap_or_else(|e| {
                        panic!("cannot open trace file {}: {e}", path.display())
                    });
                }
            }
        }
        if let Some(m) = &metrics {
            engine.set_metrics(m.clone());
        }
        if let Some(k) = policy.threads {
            engine.set_fill_threads(k);
        }
        Self {
            engine,
            check_every,
            max_time: policy.max_time,
            predicate: policy.predicate,
            observers: policy.observers,
            checkpoint: policy.checkpoint_path.map(|path| CheckpointPlan {
                path,
                every: policy.checkpoint_every.unwrap_or(check_every),
                last: 0,
            }),
            metrics,
        }
    }

    /// Resumes an agent-protocol run from a snapshot file under default
    /// policy — shorthand for `Simulation::builder(protocol).resume(path)`;
    /// use the builder form to configure predicates, budgets, observers,
    /// or continued checkpointing on the resumed run.
    pub fn resume<P>(protocol: P, path: impl AsRef<Path>) -> Result<Self, SnapshotError>
    where
        P: Protocol<State = S> + 'a,
        S: Eq + Hash + SnapshotState + 'a,
    {
        SimulationBuilder::new(protocol).resume(path)
    }

    /// Resumes a count-protocol run from a snapshot file under default
    /// policy (see [`Simulation::resume`]).
    pub fn resume_count<P>(protocol: P, path: impl AsRef<Path>) -> Result<Self, SnapshotError>
    where
        P: CountProtocol<State = S> + 'a,
        S: SnapshotState + 'a,
    {
        CountSimulationBuilder::new(protocol).resume(path)
    }

    /// Writes a snapshot of the engine's current state to `path`
    /// immediately (atomically — see [`Snapshot::write_atomic`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] unless the simulation was built with
    /// checkpoint support (`checkpoint_to` or `resume`); I/O errors pass
    /// through.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.engine.snapshot()?.write_atomic(path.as_ref())
    }

    /// Population size `n`.
    pub fn population_size(&self) -> u64 {
        self.engine.population_size()
    }

    /// Parallel time elapsed.
    pub fn time(&self) -> f64 {
        self.engine.time()
    }

    /// Total interactions executed.
    pub fn interactions(&self) -> u64 {
        self.engine.interactions()
    }

    /// The decoded occupied-state multiset (see [`Engine::view`]).
    pub fn view(&self) -> Vec<(S, u64)> {
        self.engine.view()
    }

    /// Count of agents currently in `state`.
    pub fn count(&self, state: &S) -> u64
    where
        S: PartialEq,
    {
        count_of(&self.engine.view(), state)
    }

    /// The concrete simulator currently executing interactions.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// The effective telemetry registry, if one was attached (explicitly
    /// via the builders' `.metrics()`, ambiently via
    /// [`pp_telemetry::Metrics::install_current`], or implied by a trace
    /// destination). Read counters from it after — or during — the run.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Executes at least one and at most `budget` interactions (no
    /// checkpoints fire). Returns the number executed.
    pub fn advance(&mut self, budget: u64) -> u64 {
        self.engine.advance(budget)
    }

    /// Executes exactly `k` further interactions (no checkpoints fire).
    pub fn steps(&mut self, k: u64) {
        let target = self.engine.interactions() + k;
        while self.engine.interactions() < target {
            self.engine.advance(target - self.engine.interactions());
        }
    }

    /// Runs for `t` further units of parallel time (no checkpoints fire).
    pub fn run_for_time(&mut self, t: f64) {
        self.steps((t * self.engine.population_size() as f64).ceil() as u64);
    }

    /// Runs until the *configured* predicate holds (see the builders'
    /// `until`), checkpointing every `check_every` interactions within the
    /// configured time budget. Without a predicate, runs out the budget.
    ///
    /// # Panics
    ///
    /// Panics if neither a predicate nor a finite `max_time` was
    /// configured — that run could only spin forever.
    pub fn run(&mut self) -> RunOutcome {
        assert!(
            self.predicate.is_some() || self.max_time.is_finite(),
            "Simulation::run needs a stopping condition: configure .until(predicate) \
             and/or a finite .max_time(t)"
        );
        let mut predicate = self.predicate.take();
        let out = self.drive(
            |view| predicate.as_mut().is_some_and(|p| p(view)),
            self.max_time,
        );
        self.predicate = predicate;
        out
    }

    /// Runs until an ad-hoc `predicate` holds — the multi-phase driver
    /// ("until the signal fires, then until everyone froze"). Uses the
    /// configured checkpoint cadence; `max_time` is an **absolute**
    /// parallel-time cap (matching the legacy `run_until` semantics), so
    /// consecutive phases share one budget. Observers fire at every
    /// checkpoint of every phase.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&[(S, u64)]) -> bool,
        max_time: f64,
    ) -> RunOutcome {
        self.drive(&mut predicate, max_time)
    }

    /// The single run driver: initial checkpoint, then bursts of
    /// `check_every` interactions, each followed by a checkpoint, until
    /// the predicate holds or the absolute interaction budget
    /// `ceil(max_time · n)` is exhausted.
    ///
    /// Crash-recovery snapshots (when configured) are written at these
    /// same checkpoints — after the observers, before the predicate — so
    /// they never consume engine randomness and never observe a state
    /// between checkpoints. The `PP_FAULT=kill@<interaction>` fault plan
    /// (see [`crate::env`]) is honored here too: the process aborts —
    /// modelling a SIGKILL — at the first checkpoint whose interaction
    /// clock has reached the planned point, after writing any due
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a configured snapshot cannot be produced or written —
    /// a crash-recovery layer that silently drops checkpoints is worse
    /// than none.
    fn drive(
        &mut self,
        mut predicate: impl FnMut(&[(S, u64)]) -> bool,
        max_time: f64,
    ) -> RunOutcome {
        assert!(self.check_every > 0, "check_every must be positive");
        let n = self.engine.population_size();
        let max_interactions = (max_time * n as f64).ceil() as u64;
        let fault = crate::env::fault_plan();
        loop {
            let view = self.engine.view();
            let (time, interactions) = (self.engine.time(), self.engine.interactions());
            for obs in &mut self.observers {
                obs(time, interactions, &view);
            }
            let exhausted = interactions >= max_interactions;
            if let Some(cp) = &mut self.checkpoint {
                // Due every `cp.every` interactions, and at the final
                // budget boundary so an exhausted phase can be resumed
                // from exactly where it stopped.
                let due =
                    interactions > cp.last && (interactions - cp.last >= cp.every || exhausted);
                if due {
                    // Wall-clock timing of the write is observation-only:
                    // it feeds counters, never a decision.
                    let started = std::time::Instant::now();
                    let snap = self
                        .engine
                        .snapshot()
                        .unwrap_or_else(|e| panic!("checkpoint failed: {e}"));
                    snap.write_atomic(&cp.path).unwrap_or_else(|e| {
                        panic!("checkpoint write to {} failed: {e}", cp.path.display())
                    });
                    if let Some(m) = &self.metrics {
                        let bytes = snap.byte_len();
                        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        m.incr(Counter::SnapshotWrites);
                        m.add(Counter::SnapshotBytes, bytes);
                        m.add(Counter::SnapshotNanos, nanos);
                        m.record(Hist::SnapshotWriteBytes, bytes);
                        m.trace_event(
                            "checkpoint",
                            &[
                                ("bytes", TraceValue::U64(bytes)),
                                ("nanos", TraceValue::U64(nanos)),
                                ("interactions", TraceValue::U64(interactions)),
                            ],
                        );
                    }
                    cp.last = interactions;
                }
            }
            if let Some(plan) = fault {
                if interactions >= plan.kill_at {
                    // Deterministic fault injection: die like a SIGKILL
                    // would — no unwinding, no destructors, nonzero exit.
                    eprintln!(
                        "PP_FAULT: aborting at checkpoint {interactions} >= kill@{}",
                        plan.kill_at
                    );
                    std::process::abort();
                }
            }
            if predicate(&view) {
                self.trace_final_counters();
                return RunOutcome {
                    converged: true,
                    time,
                    interactions,
                };
            }
            if exhausted {
                self.trace_final_counters();
                return RunOutcome {
                    converged: false,
                    time,
                    interactions,
                };
            }
            let target = (interactions + self.check_every).min(max_interactions);
            while self.engine.interactions() < target {
                self.engine.advance(target - self.engine.interactions());
            }
        }
    }

    /// Emits the full counter/histogram snapshot as one `counters` trace
    /// event when a tracer is attached — the line `pp-report` renders its
    /// summary tables from. Fired at the end of every driven phase, so
    /// multi-phase runs carry one counters line per phase (each
    /// cumulative; the last one is the run's total).
    fn trace_final_counters(&self) {
        if let Some(m) = &self.metrics {
            if m.is_tracing() {
                m.trace_counters();
            }
        }
    }
}

impl<S> std::fmt::Debug for Simulation<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.engine.population_size())
            .field("interactions", &self.engine.interactions())
            .field("kind", &self.engine.kind())
            .field("check_every", &self.check_every)
            .field("max_time", &self.max_time)
            .finish_non_exhaustive()
    }
}

/// Initial-configuration policy for agent-level protocols.
enum InitSpec<'a, S> {
    /// All agents in the protocol's initial state.
    Uniform,
    /// Listed agents first (in order), remainder in the initial state —
    /// planted leaders and other sparse non-uniform starts.
    Planted(Vec<(S, u64)>),
    /// The full multiset, explicitly; counts must sum to `n`.
    Config(Vec<(S, u64)>),
    /// Per-index assignment `f(i, n)` — the [`SeededInit`] shape.
    Assign(Box<dyn Fn(usize, usize) -> S + 'a>),
}

/// What [`SimulationBuilder::build`] produces before boxing: the engine
/// value with its concrete type still visible, so the checkpoint wrap
/// closure (installed by [`SimulationBuilder::checkpoint_to`], which
/// carries the [`SnapshotState`] bound `build` itself does not have) can
/// wrap it in the matching snapshot-capable adapter.
#[allow(clippy::large_enum_variant)] // transient: consumed by `build` immediately
enum BuiltAgentEngine<P: Protocol>
where
    P::State: Eq + Hash,
{
    Agent(AgentSim<P>),
    Interned(InternedEngine<P>),
}

/// Boxed closure turning a [`BuiltAgentEngine`] into the final boxed
/// engine — identity boxing by default, checkpoint-adapter boxing when
/// [`SimulationBuilder::checkpoint_to`] was called.
type AgentWrap<'a, P> =
    Box<dyn FnOnce(BuiltAgentEngine<P>) -> Box<dyn Engine<<P as Protocol>::State> + 'a> + 'a>;

/// Builder for agent-level [`Protocol`] simulations. Construct via
/// [`Simulation::builder`]; see the [module docs](self) for the builder
/// walkthrough.
pub struct SimulationBuilder<'a, P: Protocol>
where
    P::State: Eq + Hash,
{
    protocol: P,
    n: u64,
    mode: SimMode,
    deterministic: bool,
    init: InitSpec<'a, P::State>,
    policy: Policy<'a, P::State>,
    wrap: Option<AgentWrap<'a, P>>,
}

impl<'a, P: Protocol> SimulationBuilder<'a, P>
where
    P::State: Eq + Hash,
{
    fn new(protocol: P) -> Self {
        Self {
            protocol,
            n: 0,
            mode: SimMode::Agent,
            deterministic: false,
            init: InitSpec::Uniform,
            policy: Policy::default(),
            wrap: None,
        }
    }

    /// Population size `n` (required).
    pub fn size(mut self, n: u64) -> Self {
        self.n = n;
        self
    }

    /// Engine selection (default [`SimMode::Agent`]). Accepts an
    /// [`EngineMode`] directly (`.mode(EngineMode::Auto)`,
    /// `.mode(ctx.engine)`) for the interned count engines.
    pub fn mode(mut self, mode: impl Into<SimMode>) -> Self {
        self.mode = mode.into();
        self
    }

    /// Certifies that [`Protocol::interact`] never reads its RNG, enabling
    /// batched bulk application under the count modes (see
    /// [`Interned::deterministic`] — certifying a randomized protocol is
    /// statistically wrong).
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Explicit initial configuration as a `(state, count)` multiset; the
    /// counts must sum to the configured size. On the agent engine the
    /// states are laid out in listed order.
    pub fn init_config(mut self, pairs: impl IntoIterator<Item = (P::State, u64)>) -> Self {
        self.init = InitSpec::Config(pairs.into_iter().collect());
        self
    }

    /// Plants the listed agents (in order, starting at index 0) and leaves
    /// the remainder in [`Protocol::initial_state`] — the planted-leader
    /// initialization of Theorem 3.13.
    pub fn init_planted(mut self, pairs: impl IntoIterator<Item = (P::State, u64)>) -> Self {
        self.init = InitSpec::Planted(pairs.into_iter().collect());
        self
    }

    /// Assigns agent `i`'s initial state as `f(i, n)` — harness-level
    /// input assignment with an ad-hoc closure.
    pub fn init_with(mut self, f: impl Fn(usize, usize) -> P::State + 'a) -> Self {
        self.init = InitSpec::Assign(Box::new(f));
        self
    }

    /// Assigns initial states from the protocol's [`SeededInit`]
    /// implementation.
    pub fn init_seeded(self) -> Self
    where
        P: SeededInit + Clone + 'a,
    {
        let p = self.protocol.clone();
        self.init_with(move |i, n| p.init_state(i, n))
    }

    policy_methods!(P::State);

    /// Enables crash-recovery checkpoints: a versioned, checksummed
    /// snapshot of the full engine state is written atomically to `path`
    /// at the cadence set by
    /// [`checkpoint_every`](SimulationBuilder::checkpoint_every)
    /// (default: the observer cadence). Resume later with
    /// [`SimulationBuilder::resume`]; the resumed run continues
    /// byte-for-byte identically to the uninterrupted one. Requires the
    /// state type to implement [`SnapshotState`].
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self
    where
        P: 'a,
        P::State: SnapshotState + 'a,
    {
        self.policy.checkpoint_path = Some(path.into());
        self.wrap = Some(Box::new(|built| match built {
            BuiltAgentEngine::Agent(sim) => Box::new(CheckpointAgent(sim)),
            BuiltAgentEngine::Interned(sim) => Box::new(CheckpointInterned(sim)),
        }));
        self
    }

    /// Resumes a simulation from a snapshot written by a checkpointing
    /// run of the same protocol. The engine state (population, mode,
    /// RNG stream, interaction clock) comes entirely from the snapshot —
    /// `size`/`mode`/`init`/`deterministic` settings on this builder are
    /// ignored — while run policy (predicate, observers, budgets,
    /// checkpoint cadence and destination) is taken from this builder,
    /// so a resumed run can keep checkpointing.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be read, fails its checksum, or holds a
    /// snapshot of a count-protocol engine.
    pub fn resume(self, path: impl AsRef<Path>) -> Result<Simulation<'a, P::State>, SnapshotError>
    where
        P: 'a,
        P::State: SnapshotState + 'a,
    {
        let snap = Snapshot::read(path.as_ref())?;
        let engine: Box<dyn Engine<P::State> + 'a> = match snap.kind {
            snapshot::KIND_AGENT => Box::new(CheckpointAgent(snapshot::decode_agent(
                self.protocol,
                &snap.body,
            )?)),
            snapshot::KIND_INTERNED => {
                let (sim, handle) = snapshot::decode_interned(self.protocol, &snap.body)?;
                Box::new(CheckpointInterned(InternedEngine { sim, handle }))
            }
            k => {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot engine tag {k} cannot resume an agent-protocol simulation"
                )))
            }
        };
        Ok(Simulation::assemble(engine, self.policy))
    }

    /// Builds the configured [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics if the size was not set (or is below 2), an explicit
    /// configuration does not sum to it, or a planted prefix exceeds it.
    pub fn build(self) -> Simulation<'a, P::State>
    where
        P: 'a,
    {
        let n = self.n;
        assert!(n >= 2, "simulation needs .size(n) with n >= 2");
        let n_usize = usize::try_from(n).expect("population exceeds usize");
        let seed = self.policy.seed;
        let built = match self.mode {
            SimMode::Agent => {
                let mut sim = AgentSim::new(self.protocol, n_usize, seed);
                match self.init {
                    InitSpec::Uniform => {}
                    InitSpec::Planted(pairs) => {
                        let mut i = 0usize;
                        for (state, count) in pairs {
                            for _ in 0..count {
                                assert!(i < n_usize, "planted prefix exceeds population size");
                                sim.set_state(i, state.clone());
                                i += 1;
                            }
                        }
                    }
                    InitSpec::Config(pairs) => {
                        let mut i = 0usize;
                        for (state, count) in pairs {
                            for _ in 0..count {
                                assert!(i < n_usize, "init_config counts exceed population size");
                                sim.set_state(i, state.clone());
                                i += 1;
                            }
                        }
                        assert!(
                            i == n_usize,
                            "init_config counts sum to {i}, expected {n_usize}"
                        );
                    }
                    InitSpec::Assign(f) => {
                        for i in 0..n_usize {
                            sim.set_state(i, f(i, n_usize));
                        }
                    }
                }
                BuiltAgentEngine::Agent(sim)
            }
            SimMode::Count(engine_mode) => {
                let interned = if self.deterministic {
                    Interned::deterministic(self.protocol)
                } else {
                    Interned::new(self.protocol)
                };
                let handle = interned.handle();
                let config = match self.init {
                    InitSpec::Uniform => interned.uniform_config(n),
                    InitSpec::Planted(pairs) => {
                        let planted: u64 = pairs.iter().map(|(_, c)| c).sum();
                        assert!(planted <= n, "planted prefix exceeds population size");
                        let rest = n - planted;
                        let initial = interned.protocol().initial_state();
                        // Merge repeats (and a plant equal to the initial
                        // state) into one entry per state, preserving
                        // first-seen order so slot ids — and with them the
                        // seeded trajectory — match the agent layout.
                        let mut merged: Vec<(P::State, u64)> = Vec::new();
                        for (state, count) in pairs
                            .into_iter()
                            .chain((rest > 0).then_some((initial, rest)))
                        {
                            match merged.iter_mut().find(|(s, _)| *s == state) {
                                Some((_, c)) => *c += count,
                                None => merged.push((state, count)),
                            }
                        }
                        interned.config_from_pairs(merged)
                    }
                    InitSpec::Config(pairs) => {
                        let total: u64 = pairs.iter().map(|(_, c)| c).sum();
                        assert!(
                            total == n,
                            "init_config counts sum to {total}, expected {n}"
                        );
                        interned.config_from_pairs(pairs)
                    }
                    InitSpec::Assign(f) => {
                        // Collapse the per-index assignment into its
                        // multiset (agents are exchangeable), interning in
                        // index order so slot ids are deterministic.
                        let mut pairs: Vec<(P::State, u64)> = Vec::new();
                        let mut index: HashMap<P::State, usize> = HashMap::new();
                        for i in 0..n_usize {
                            let s = f(i, n_usize);
                            match index.entry(s) {
                                std::collections::hash_map::Entry::Occupied(e) => {
                                    pairs[*e.get()].1 += 1;
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    pairs.push((e.key().clone(), 1));
                                    e.insert(pairs.len() - 1);
                                }
                            }
                        }
                        interned.config_from_pairs(pairs)
                    }
                };
                let sim = ConfigSim::with_mode(interned, config, seed, engine_mode);
                BuiltAgentEngine::Interned(InternedEngine { sim, handle })
            }
        };
        let engine: Box<dyn Engine<P::State> + 'a> = match self.wrap {
            Some(wrap) => wrap(built),
            None => match built {
                BuiltAgentEngine::Agent(sim) => Box::new(sim),
                BuiltAgentEngine::Interned(sim) => Box::new(sim),
            },
        };
        Simulation::assemble(engine, self.policy)
    }

    /// Builds and runs to the configured stopping condition, returning the
    /// outcome and the finished simulation for inspection.
    pub fn run(self) -> (RunOutcome, Simulation<'a, P::State>)
    where
        P: 'a,
    {
        let mut sim = self.build();
        let out = sim.run();
        (out, sim)
    }
}

/// Initial-configuration policy for count protocols (which have no
/// distinguished initial state, so a start must be given explicitly).
enum CountInit<S: Copy + Ord + std::hash::Hash> {
    /// Not yet specified.
    Unset,
    /// All agents in one state.
    Uniform(S),
    /// Explicit multiset.
    Config(Vec<(S, u64)>),
    /// Captured eagerly from [`CountSeededInit::initial_config`].
    Ready(CountConfiguration<S>),
}

/// Boxed closure turning the built [`ConfigSim`] into the final boxed
/// engine — identity boxing by default, [`CheckpointConfig`] boxing when
/// [`CountSimulationBuilder::checkpoint_to`] was called.
type CountWrap<'a, P> =
    Box<dyn FnOnce(ConfigSim<P>) -> Box<dyn Engine<<P as CountProtocol>::State> + 'a> + 'a>;

/// Builder for [`CountProtocol`] simulations. Construct via
/// [`Simulation::count_builder`]; see the [module docs](self) for the
/// builder walkthrough.
pub struct CountSimulationBuilder<'a, P: CountProtocol> {
    protocol: P,
    n: u64,
    mode: EngineMode,
    init: CountInit<P::State>,
    policy: Policy<'a, P::State>,
    wrap: Option<CountWrap<'a, P>>,
}

impl<'a, P: CountProtocol> CountSimulationBuilder<'a, P> {
    fn new(protocol: P) -> Self {
        Self {
            protocol,
            n: 0,
            mode: EngineMode::Auto,
            init: CountInit::Unset,
            policy: Policy::default(),
            wrap: None,
        }
    }

    /// Population size `n` (required with [`CountSimulationBuilder::uniform`]
    /// and [`CountSimulationBuilder::init_seeded`]; inferred from
    /// [`CountSimulationBuilder::config`]).
    pub fn size(mut self, n: u64) -> Self {
        self.n = n;
        self
    }

    /// Engine policy (default [`EngineMode::Auto`]; accepts
    /// `.mode(ctx.engine)` from the sweep layer directly).
    pub fn mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// All agents start in `state` (requires a prior
    /// [`CountSimulationBuilder::size`]).
    pub fn uniform(mut self, state: P::State) -> Self {
        self.init = CountInit::Uniform(state);
        self
    }

    /// Explicit initial configuration; the population size is its total.
    pub fn config(mut self, pairs: impl IntoIterator<Item = (P::State, u64)>) -> Self {
        let pairs: Vec<(P::State, u64)> = pairs.into_iter().collect();
        self.n = pairs.iter().map(|(_, c)| c).sum();
        self.init = CountInit::Config(pairs);
        self
    }

    /// Starts from a prebuilt [`CountConfiguration`] (the population size
    /// is its total) — for harnesses that assemble configurations through
    /// their own helpers.
    pub fn initial(mut self, config: CountConfiguration<P::State>) -> Self {
        self.n = config.population_size();
        self.init = CountInit::Ready(config);
        self
    }

    /// Initial configuration from the protocol's [`CountSeededInit`]
    /// implementation at the configured size (call
    /// [`CountSimulationBuilder::size`] first).
    pub fn init_seeded(mut self) -> Self
    where
        P: CountSeededInit,
    {
        assert!(
            self.n >= 2,
            "call .size(n) with n >= 2 before .init_seeded()"
        );
        let config = self.protocol.initial_config(self.n);
        assert_eq!(
            config.population_size(),
            self.n,
            "CountSeededInit::initial_config produced the wrong population size"
        );
        self.init = CountInit::Ready(config);
        self
    }

    policy_methods!(P::State);

    /// Enables crash-recovery checkpoints: a versioned, checksummed
    /// snapshot of the full engine state (including the adaptive mode,
    /// batching tables, and RNG streams) is written atomically to `path`
    /// at the cadence set by
    /// [`checkpoint_every`](CountSimulationBuilder::checkpoint_every)
    /// (default: the observer cadence). Resume later with
    /// [`CountSimulationBuilder::resume`]; the resumed run continues
    /// byte-for-byte identically to the uninterrupted one. Requires the
    /// state type to implement [`SnapshotState`].
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self
    where
        P: 'a,
        P::State: SnapshotState + 'a,
    {
        self.policy.checkpoint_path = Some(path.into());
        self.wrap = Some(Box::new(|sim| Box::new(CheckpointConfig(sim))));
        self
    }

    /// Resumes a simulation from a snapshot written by a checkpointing
    /// run of the same protocol. The engine state (population, engine
    /// mode, RNG streams, interaction clock) comes entirely from the
    /// snapshot — `size`/`mode`/init settings on this builder are
    /// ignored — while run policy (predicate, observers, budgets,
    /// checkpoint cadence and destination) is taken from this builder,
    /// so a resumed run can keep checkpointing.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be read, fails its checksum, or holds a
    /// snapshot of an agent-protocol engine.
    pub fn resume(self, path: impl AsRef<Path>) -> Result<Simulation<'a, P::State>, SnapshotError>
    where
        P: 'a,
        P::State: SnapshotState + 'a,
    {
        let snap = Snapshot::read(path.as_ref())?;
        let engine: Box<dyn Engine<P::State> + 'a> = match snap.kind {
            snapshot::KIND_CONFIG => Box::new(CheckpointConfig(snapshot::decode_config_sim(
                self.protocol,
                &snap.body,
            )?)),
            k => {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot engine tag {k} cannot resume a count-protocol simulation"
                )))
            }
        };
        Ok(Simulation::assemble(engine, self.policy))
    }

    /// Builds the configured [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics if no initial configuration was given, or a uniform init has
    /// no size.
    pub fn build(self) -> Simulation<'a, P::State>
    where
        P: 'a,
    {
        let config = match self.init {
            CountInit::Unset => panic!(
                "count simulation needs an initial configuration \
                 (.uniform / .config / .init_seeded)"
            ),
            CountInit::Uniform(state) => {
                assert!(self.n >= 2, "uniform init needs .size(n) with n >= 2");
                CountConfiguration::uniform(state, self.n)
            }
            CountInit::Config(pairs) => CountConfiguration::from_pairs(pairs),
            CountInit::Ready(config) => config,
        };
        let sim = ConfigSim::with_mode(self.protocol, config, self.policy.seed, self.mode);
        let engine: Box<dyn Engine<P::State> + 'a> = match self.wrap {
            Some(wrap) => wrap(sim),
            None => Box::new(sim),
        };
        Simulation::assemble(engine, self.policy)
    }

    /// Builds and runs to the configured stopping condition, returning the
    /// outcome and the finished simulation for inspection.
    pub fn run(self) -> (RunOutcome, Simulation<'a, P::State>)
    where
        P: 'a,
    {
        let mut sim = self.build();
        let out = sim.run();
        (out, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epidemic::InfectionEpidemic;
    use crate::rng::SimRng;

    /// Max epidemic over u64 values, agent-level.
    struct MaxRecord;

    impl Protocol for MaxRecord {
        type State = u64;

        fn initial_state(&self) -> u64 {
            0
        }

        fn interact(&self, rec: &mut u64, sen: &mut u64, _rng: &mut SimRng) {
            let m = (*rec).max(*sen);
            *rec = m;
            *sen = m;
        }
    }

    #[test]
    fn agent_builder_matches_direct_agent_sim() {
        let direct = {
            let mut sim = AgentSim::new(MaxRecord, 100, 5);
            sim.set_state(0, 9);
            sim.run_until_converged(|s| s.iter().all(|&v| v == 9), 500.0)
        };
        let (built, _) = Simulation::builder(MaxRecord)
            .size(100)
            .seed(5)
            .init_planted([(9u64, 1)])
            .max_time(500.0)
            .until(|view: &[(u64, u64)]| view.iter().all(|&(s, _)| s == 9))
            .run();
        assert_eq!(direct, built);
    }

    #[test]
    fn count_mode_runs_the_same_protocol_interned() {
        let (out, sim) = Simulation::builder(MaxRecord)
            .size(500)
            .seed(5)
            .mode(EngineMode::Sequential)
            .init_planted([(9u64, 1)])
            .until(|view: &[(u64, u64)]| view.iter().all(|&(s, _)| s == 9))
            .run();
        assert!(out.converged);
        assert_eq!(sim.engine_kind(), EngineKind::Sequential);
        assert_eq!(sim.count(&9), 500);
    }

    #[test]
    fn count_builder_matches_direct_config_sim() {
        let n = 3_000u64;
        let direct = {
            let config = CountConfiguration::from_pairs([(false, n - 1), (true, 1)]);
            let mut sim = ConfigSim::new(InfectionEpidemic, config, 11);
            sim.run_until(|c| c.count(&true) == n, n, f64::MAX)
        };
        let (built, _) = Simulation::count_builder(InfectionEpidemic)
            .config([(false, n - 1), (true, 1)])
            .seed(11)
            .until(move |view| count_of(view, &true) == n)
            .run();
        assert_eq!(direct, built);
    }

    #[test]
    fn observers_fire_at_every_checkpoint_without_perturbing_the_run() {
        let n = 1_000u64;
        let run = |with_observer: bool| {
            let mut checkpoints = Vec::new();
            let mut builder = Simulation::count_builder(InfectionEpidemic)
                .config([(false, n - 1), (true, 1)])
                .seed(3)
                .check_every(n / 2)
                .until(move |view| count_of(view, &true) == n);
            if with_observer {
                builder = builder.observe_with(|t, i, view| {
                    checkpoints.push((t, i, count_of(view, &true)));
                });
            }
            let (out, _) = builder.run();
            (out, checkpoints)
        };
        let (plain, empty) = run(false);
        let (observed, checkpoints) = run(true);
        assert_eq!(plain, observed, "observer perturbed the trajectory");
        assert!(empty.is_empty());
        // Initial checkpoint at time 0 plus one per burst, infection counts
        // non-decreasing, final checkpoint converged.
        assert_eq!(checkpoints[0], (0.0, 0, 1));
        assert!(checkpoints.windows(2).all(|w| w[0].2 <= w[1].2));
        assert_eq!(checkpoints.last().unwrap().2, n);
        assert_eq!(
            checkpoints.len() as u64 - 1,
            observed.interactions.div_ceil(n / 2)
        );
    }

    #[test]
    fn named_observer_is_readable_after_the_run() {
        struct PeakSupport(usize);
        impl Observer<bool> for PeakSupport {
            fn observe(&mut self, _t: f64, _i: u64, view: &[(bool, u64)]) {
                self.0 = self.0.max(view.len());
            }
        }
        let mut peak = PeakSupport(0);
        let n = 500u64;
        let (out, _) = Simulation::count_builder(InfectionEpidemic)
            .config([(false, n - 1), (true, 1)])
            .seed(4)
            .observe(&mut peak)
            .until(move |view| count_of(view, &true) == n)
            .run();
        assert!(out.converged);
        assert_eq!(peak.0, 2);
    }

    #[test]
    fn run_until_phases_share_an_absolute_budget() {
        let n = 400u64;
        let mut sim = Simulation::count_builder(InfectionEpidemic)
            .config([(false, n - 1), (true, 1)])
            .seed(9)
            .build();
        let half = sim.run_until(move |view| count_of(view, &true) >= n / 2, 1e6);
        assert!(half.converged);
        let full = sim.run_until(move |view| count_of(view, &true) == n, 1e6);
        assert!(full.converged);
        assert!(full.interactions >= half.interactions);
        assert_eq!(sim.count(&true), n);
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let n = 100u64;
        let (out, sim) = Simulation::count_builder(InfectionEpidemic)
            .config([(false, n)])
            .seed(1)
            .max_time(5.0)
            .until(|view| count_of(view, &true) > 0)
            .run();
        assert!(!out.converged);
        assert!(out.time >= 5.0);
        assert_eq!(sim.count(&false), n);
    }

    #[test]
    fn view_groups_agent_states_with_agent_zero_first() {
        let sim = Simulation::builder(MaxRecord)
            .size(10)
            .init_config([(7u64, 4), (1u64, 6)])
            .build();
        let view = sim.view();
        assert_eq!(view, vec![(7, 4), (1, 6)]);
        assert_eq!(view_population(&view), 10);
        assert_eq!(count_of(&view, &1), 6);
        assert_eq!(count_of(&view, &2), 0);
    }

    #[test]
    fn seeded_init_assigns_by_index() {
        #[derive(Clone)]
        struct Split;
        impl Protocol for Split {
            type State = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn interact(&self, _r: &mut u8, _s: &mut u8, _rng: &mut SimRng) {}
        }
        impl SeededInit for Split {
            fn init_state(&self, index: usize, n: usize) -> u8 {
                u8::from(index < n / 3)
            }
        }
        let sim = Simulation::builder(Split).size(9).init_seeded().build();
        assert_eq!(sim.count(&1), 3);
        // The same init collapses to the same multiset on a count engine.
        let sim = Simulation::builder(Split)
            .size(9)
            .init_seeded()
            .mode(EngineMode::Sequential)
            .build();
        assert_eq!(sim.count(&1), 3);
    }

    #[test]
    fn builder_is_deterministic_given_seed() {
        let run = |seed| {
            let (out, _) = Simulation::builder(MaxRecord)
                .size(200)
                .seed(seed)
                .init_planted([(3u64, 1)])
                .until(|view: &[(u64, u64)]| view.iter().all(|&(s, _)| s == 3))
                .run();
            out
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).interactions, run(8).interactions);
    }

    #[test]
    #[should_panic(expected = "initial configuration")]
    fn count_builder_requires_an_init() {
        let _ = Simulation::count_builder(InfectionEpidemic)
            .size(10)
            .build();
    }

    #[test]
    fn planted_state_equal_to_initial_works_on_every_mode() {
        // A plant that coincides with the initial state (or repeats) must
        // merge into the configuration, not trip the duplicate-state
        // assert — the same builder spec has to build under every mode.
        for mode in [SimMode::Agent, SimMode::Count(EngineMode::Sequential)] {
            let sim = Simulation::builder(MaxRecord)
                .size(10)
                .mode(mode)
                .init_planted([(0u64, 2), (9u64, 1), (9u64, 1)])
                .build();
            assert_eq!(sim.count(&0), 8, "{mode:?}");
            assert_eq!(sim.count(&9), 2, "{mode:?}");
        }
    }

    #[test]
    #[should_panic(expected = "stopping condition")]
    fn run_without_predicate_or_budget_is_refused() {
        let mut sim = Simulation::count_builder(InfectionEpidemic)
            .config([(false, 9), (true, 1)])
            .build();
        let _ = sim.run(); // would otherwise spin forever
    }
}
