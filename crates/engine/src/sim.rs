//! [`AgentSim`]: the per-agent-state simulator.
//!
//! Stores one state struct per agent and applies interactions drawn from the
//! uniform pair scheduler. This is the simulator used for the paper's main
//! protocols, whose states are records of `O(log log n)`-bit counters.

use crate::protocol::{Protocol, SeededInit};
use crate::rng::{rng_from_seed, SimRng};
use crate::scheduler::{parallel_time, PairScheduler};

/// Outcome of running a simulation until a predicate holds (or a budget ends).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunOutcome {
    /// Whether the stopping predicate was satisfied within the budget.
    pub converged: bool,
    /// Parallel time (interactions / n) at which the run stopped.
    pub time: f64,
    /// Total interactions executed.
    pub interactions: u64,
}

/// A sequential simulator holding an explicit state per agent.
pub struct AgentSim<P: Protocol> {
    protocol: P,
    states: Vec<P::State>,
    scheduler: PairScheduler,
    rng: SimRng,
    interactions: u64,
}

impl<P: Protocol> AgentSim<P> {
    /// Creates a population of `n` agents, all in the protocol's initial
    /// state, with all randomness derived from `seed`.
    pub fn new(protocol: P, n: usize, seed: u64) -> Self {
        let states = vec![protocol.initial_state(); n];
        Self {
            protocol,
            states,
            scheduler: PairScheduler::new(n),
            rng: rng_from_seed(seed),
            interactions: 0,
        }
    }

    /// Creates a population whose initial states come from
    /// [`SeededInit::init_state`] (harness-level input assignment).
    pub fn with_inputs(protocol: P, n: usize, seed: u64) -> Self
    where
        P: SeededInit,
    {
        let states = (0..n).map(|i| protocol.init_state(i, n)).collect();
        Self {
            protocol,
            states,
            scheduler: PairScheduler::new(n),
            rng: rng_from_seed(seed),
            interactions: 0,
        }
    }

    /// Rebuilds a simulator from checkpoint parts. The pair scheduler is
    /// stateless (rebuilt from the population size), so `(states, rng,
    /// interactions)` is the simulator's entire mutable state: a restored
    /// run continues byte-for-byte identically to the snapshotted one.
    pub(crate) fn from_snapshot_parts(
        protocol: P,
        states: Vec<P::State>,
        rng: SimRng,
        interactions: u64,
    ) -> Self {
        let n = states.len();
        assert!(n >= 2, "population must have at least 2 agents, got {n}");
        Self {
            protocol,
            states,
            scheduler: PairScheduler::new(n),
            rng,
            interactions,
        }
    }

    /// Checkpoint accessor: the RNG stream.
    pub(crate) fn rng(&self) -> &SimRng {
        &self.rng
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.states.len()
    }

    /// Parallel time elapsed so far.
    pub fn time(&self) -> f64 {
        parallel_time(self.interactions, self.states.len())
    }

    /// Total interactions executed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Immutable view of all agent states.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Overwrites the state of agent `index` (used to plant an initial
    /// leader for the Theorem 3.13 variant).
    pub fn set_state(&mut self, index: usize, state: P::State) {
        self.states[index] = state;
    }

    /// Executes a single interaction.
    pub fn step(&mut self) {
        let pair = self.scheduler.next_pair(&mut self.rng);
        // Split the slice so we can hold two disjoint mutable references.
        let (lo, hi) = (
            pair.receiver.min(pair.sender),
            pair.receiver.max(pair.sender),
        );
        let (left, right) = self.states.split_at_mut(hi);
        let (first, second) = (&mut left[lo], &mut right[0]);
        if pair.receiver < pair.sender {
            self.protocol.interact(first, second, &mut self.rng);
        } else {
            self.protocol.interact(second, first, &mut self.rng);
        }
        self.interactions += 1;
    }

    /// Executes `k` interactions.
    pub fn steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Runs until `k` interactions total have been executed (no-op if already
    /// past `k`).
    pub fn run_until_interactions(&mut self, k: u64) {
        while self.interactions < k {
            self.step();
        }
    }

    /// Runs until parallel time `t` has elapsed.
    pub fn run_for_time(&mut self, t: f64) {
        let target = (t * self.states.len() as f64).ceil() as u64;
        self.run_until_interactions(self.interactions + target);
    }

    /// Runs until `predicate` holds over the full state slice, checking every
    /// `check_every` interactions, up to a parallel-time budget `max_time`.
    ///
    /// The predicate is also evaluated once before any interaction, so a
    /// population that starts converged reports `time == 0`.
    pub fn run_until(
        &mut self,
        mut predicate: impl FnMut(&[P::State]) -> bool,
        check_every: u64,
        max_time: f64,
    ) -> RunOutcome {
        assert!(check_every > 0, "check_every must be positive");
        let n = self.states.len();
        let max_interactions = (max_time * n as f64).ceil() as u64;
        if predicate(&self.states) {
            return RunOutcome {
                converged: true,
                time: self.time(),
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let burst = check_every.min(max_interactions - self.interactions);
            self.steps(burst);
            if predicate(&self.states) {
                return RunOutcome {
                    converged: true,
                    time: self.time(),
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome {
            converged: false,
            time: self.time(),
            interactions: self.interactions,
        }
    }

    /// Convenience: runs until convergence checking once per `n` interactions
    /// (once per parallel-time unit), the cadence used by all experiments.
    pub fn run_until_converged(
        &mut self,
        predicate: impl FnMut(&[P::State]) -> bool,
        max_time: f64,
    ) -> RunOutcome {
        let n = self.states.len() as u64;
        self.run_until(predicate, n, max_time)
    }
}

impl<P: Protocol> std::fmt::Debug for AgentSim<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentSim")
            .field("n", &self.states.len())
            .field("interactions", &self.interactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use rand::Rng;

    /// Epidemic: the receiver becomes infected if the sender is.
    struct Epidemic;

    impl Protocol for Epidemic {
        type State = bool;

        fn initial_state(&self) -> bool {
            false
        }

        fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
            if *sen {
                *rec = true;
            }
        }
    }

    #[test]
    fn epidemic_reaches_everyone() {
        let mut sim = AgentSim::new(Epidemic, 200, 42);
        sim.set_state(0, true);
        let outcome = sim.run_until_converged(|s| s.iter().all(|&x| x), 200.0);
        assert!(outcome.converged);
        // Epidemic completes in ~2 ln n expected parallel time; 200 is ample.
        assert!(outcome.time < 100.0);
    }

    #[test]
    fn epidemic_time_scales_logarithmically() {
        // E[T] = (n-1)/n * H_{n-1} ≈ ln n. Check the mean over a few trials
        // sits well below, say, 3 ln n and above 0.5 ln n.
        let n = 1000;
        let mut total = 0.0;
        let trials = 10;
        for t in 0..trials {
            let mut sim = AgentSim::new(Epidemic, n, 100 + t);
            sim.set_state(0, true);
            let out = sim.run_until(|s| s.iter().all(|&x| x), 50, 200.0);
            assert!(out.converged);
            total += out.time;
        }
        let mean = total / trials as f64;
        let ln_n = (n as f64).ln();
        assert!(mean > 0.5 * ln_n && mean < 3.0 * ln_n, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = AgentSim::new(Epidemic, 50, seed);
            sim.set_state(0, true);
            sim.run_until_converged(|s| s.iter().all(|&x| x), 100.0)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.interactions, b.interactions);
        assert_ne!(run(8).interactions, 0);
    }

    #[test]
    fn converged_start_reports_zero_time() {
        let mut sim = AgentSim::new(Epidemic, 10, 0);
        let out = sim.run_until_converged(|s| s.iter().all(|&x| !x), 1.0);
        assert!(out.converged);
        assert_eq!(out.time, 0.0);
        assert_eq!(out.interactions, 0);
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let mut sim = AgentSim::new(Epidemic, 10, 0);
        // Nobody is infected, so full infection never happens.
        let out = sim.run_until_converged(|s| s.iter().all(|&x| x), 5.0);
        assert!(!out.converged);
        assert!(out.time >= 5.0);
    }

    /// Order-sensitive protocol: receiver records that it received.
    struct OrderSensitive;

    impl Protocol for OrderSensitive {
        type State = (u32, u32); // (times as receiver, times as sender)

        fn initial_state(&self) -> (u32, u32) {
            (0, 0)
        }

        fn interact(&self, rec: &mut (u32, u32), sen: &mut (u32, u32), _rng: &mut SimRng) {
            rec.0 += 1;
            sen.1 += 1;
        }
    }

    #[test]
    fn receiver_sender_roles_are_balanced() {
        // Each agent should be receiver and sender roughly equally often —
        // this is the fair coin the synthetic-coin construction relies on.
        let mut sim = AgentSim::new(OrderSensitive, 20, 9);
        sim.steps(100_000);
        let (total_rec, total_sen) = sim.states().iter().fold((0u64, 0u64), |acc, s| {
            (acc.0 + s.0 as u64, acc.1 + s.1 as u64)
        });
        assert_eq!(total_rec, 100_000);
        assert_eq!(total_sen, 100_000);
        for s in sim.states() {
            let tot = (s.0 + s.1) as f64;
            let frac = s.0 as f64 / tot;
            assert!(
                (0.4..=0.6).contains(&frac),
                "receiver fraction {frac} biased"
            );
        }
    }

    /// A protocol that consumes randomness — used to confirm the RNG is
    /// threaded through and deterministic.
    struct RandomWalk;

    impl Protocol for RandomWalk {
        type State = i64;

        fn initial_state(&self) -> i64 {
            0
        }

        fn interact(&self, rec: &mut i64, _sen: &mut i64, rng: &mut SimRng) {
            *rec += if rng.gen::<bool>() { 1 } else { -1 };
        }
    }

    #[test]
    fn random_protocol_is_reproducible() {
        let run = |seed: u64| {
            let mut sim = AgentSim::new(RandomWalk, 10, seed);
            sim.steps(10_000);
            sim.states().to_vec()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn with_inputs_assigns_by_index() {
        struct Majority;
        impl Protocol for Majority {
            type State = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn interact(&self, _r: &mut u8, _s: &mut u8, _rng: &mut SimRng) {}
        }
        impl SeededInit for Majority {
            fn init_state(&self, index: usize, n: usize) -> u8 {
                u8::from(index < n / 3)
            }
        }
        let sim = AgentSim::with_inputs(Majority, 9, 0);
        let ones = sim.states().iter().filter(|&&s| s == 1).count();
        assert_eq!(ones, 3);
    }
}
