//! Telemetry neutrality: the signature invariant of the observability
//! layer. Attaching a [`Metrics`] registry, a JSONL trace, or both must
//! leave every engine's trajectory **byte-for-byte identical** to the
//! uninstrumented run — hooks are observation-only, never consult a
//! counter, and never touch the simulation RNG.
//!
//! The suite drives all four engines through the public builders
//! (`AgentSim` via [`Simulation::builder`]; `CountSim`,
//! `BatchedCountSim`, and the adaptive `ConfigSim` via
//! [`Simulation::count_builder`] under the three [`EngineMode`]s),
//! including the interner-GC and dense-lane paths and a
//! checkpoint/resume cycle, comparing full checkpoint logs — not just
//! final states — between plain, metrics-attached, and traced runs.
//!
//! Instrumentation is configured through the builders only (never via
//! `PP_METRICS`/`PP_TRACE`), so the suite is safe under the parallel
//! test runner.

use std::path::{Path, PathBuf};

use pp_engine::batch::EngineMode;
use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::simulation::{count_of, Simulation};
use pp_engine::{Counter, Metrics, Protocol, SimRng};

// Above the Auto facade's batching threshold, so EngineMode::Auto starts
// on the batched engine.
const N: u64 = 8_192;

/// Checkpoint log: `(interactions, sorted view)` at every observer
/// firing — a full trajectory signature, not just the final state.
type Log<S> = Vec<(u64, Vec<(S, u64)>)>;

/// Unique scratch path per (test, label); removed by each test on success.
fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pp_neutrality_{}_{name}.jsonl", std::process::id()))
}

/// What to attach to a run, besides the default (nothing).
enum Attach<'m> {
    Plain,
    Metrics(&'m Metrics),
    Traced(&'m Metrics, &'m Path),
}

/// One-source epidemic on a count engine, run to completion; returns the
/// checkpoint log.
fn epidemic_run(mode: EngineMode, attach: Attach<'_>) -> Log<bool> {
    let mut log = Vec::new();
    {
        let mut builder = Simulation::count_builder(InfectionEpidemic)
            .config([(false, N - 1), (true, 1)])
            .mode(mode)
            .seed(7)
            .until(|view| count_of(view, &true) == N)
            .observe_with(|_, i, view| {
                let mut v = view.to_vec();
                v.sort();
                log.push((i, v));
            });
        match attach {
            Attach::Plain => {}
            Attach::Metrics(m) => builder = builder.metrics(m),
            Attach::Traced(m, path) => builder = builder.metrics(m).trace_to(path),
        }
        let (out, _sim) = builder.run();
        assert!(out.converged, "epidemic never completed under {mode:?}");
    }
    log
}

#[test]
fn count_engines_are_trajectory_neutral_under_metrics_and_trace() {
    for mode in [
        EngineMode::Sequential,
        EngineMode::Batched,
        EngineMode::Auto,
    ] {
        let plain = epidemic_run(mode, Attach::Plain);

        let metrics = Metrics::new();
        let with_metrics = epidemic_run(mode, Attach::Metrics(&metrics));
        assert_eq!(plain, with_metrics, "{mode:?}: metrics perturbed the run");

        let path = temp(&format!("count_{mode:?}"));
        let _ = std::fs::remove_file(&path);
        let traced_metrics = Metrics::new();
        let traced = epidemic_run(mode, Attach::Traced(&traced_metrics, &path));
        assert_eq!(plain, traced, "{mode:?}: tracing perturbed the run");

        // The trace is CRC-clean and carries the final counter snapshot.
        let lines = pp_telemetry::read_trace(&path).expect("trace must verify");
        assert!(
            lines.iter().any(|l| l.contains("\"event\":\"counters\"")),
            "{mode:?}: no counters event in the trace"
        );
        std::fs::remove_file(&path).ok();

        // The instrumented runs actually counted something: the batched
        // engine executes collision batches, and the epidemic's silent
        // tail (almost everyone infected) engages null skipping.
        if mode == EngineMode::Batched {
            assert!(metrics.counter(Counter::Batches) > 0, "no batches counted");
            assert!(
                metrics.counter(Counter::NullSkipRuns) > 0,
                "completion run never null-skipped"
            );
        }
        if mode == EngineMode::Sequential {
            assert!(
                metrics.counter(Counter::SlotLookups) > 0,
                "sequential engine counted no slot lookups"
            );
        }
    }
}

/// Agent-level epidemic (for the `AgentSim` engine).
struct AgentEpidemic;

impl Protocol for AgentEpidemic {
    type State = bool;

    fn initial_state(&self) -> bool {
        false
    }

    fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
        *rec |= *sen;
    }
}

fn agent_run(attach: Attach<'_>) -> Log<bool> {
    let mut log = Vec::new();
    {
        let mut builder = Simulation::builder(AgentEpidemic)
            .size(2_000)
            .init_planted([(true, 1)])
            .seed(11)
            .until(|view| count_of(view, &true) == 2_000)
            .observe_with(|_, i, view| {
                let mut v = view.to_vec();
                v.sort();
                log.push((i, v));
            });
        match attach {
            Attach::Plain => {}
            Attach::Metrics(m) => builder = builder.metrics(m),
            Attach::Traced(m, path) => builder = builder.metrics(m).trace_to(path),
        }
        let (out, _sim) = builder.run();
        assert!(out.converged, "agent epidemic never completed");
    }
    log
}

#[test]
fn agent_engine_is_trajectory_neutral_under_metrics_and_trace() {
    let plain = agent_run(Attach::Plain);
    let metrics = Metrics::new();
    assert_eq!(
        plain,
        agent_run(Attach::Metrics(&metrics)),
        "metrics perturbed the agent engine"
    );
    let path = temp("agent");
    let _ = std::fs::remove_file(&path);
    let traced_metrics = Metrics::new();
    assert_eq!(
        plain,
        agent_run(Attach::Traced(&traced_metrics, &path)),
        "tracing perturbed the agent engine"
    );
    assert!(
        pp_telemetry::read_trace(&path).is_ok_and(|l| !l.is_empty()),
        "agent trace missing or corrupt"
    );
    std::fs::remove_file(&path).ok();
}

/// Unbounded-state churner: every interaction advances the receiver's
/// counter, so the interner's table grows without bound while the live
/// support stays a narrow band — the workload that exercises interner GC
/// (small advance chunks) and the dense per-agent lane (chunks ≥ n).
#[derive(Clone)]
struct Churner;

impl Protocol for Churner {
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn interact(&self, rec: &mut u64, _sen: &mut u64, _rng: &mut SimRng) {
        *rec += 1;
    }
}

/// Churner run on the interned count path; `check_every` controls
/// whether the dense lane can engage (budget ≥ n) or the run stays on
/// the configuration-vector path whose GC the small-chunk test targets.
fn churner_run(check_every: u64, attach: Attach<'_>) -> Log<u64> {
    let n = 1_000u64;
    let mut log = Vec::new();
    {
        let mut builder = Simulation::builder(Churner)
            .size(n)
            .mode(EngineMode::Auto)
            // Eight agents per initial value: support n/8 = 125 clears
            // the dense-lane floor from the start.
            .init_with(|i, _| (i / 8) as u64)
            .seed(77)
            .check_every(check_every)
            .max_time(2_000.0)
            .observe_with(|_, i, view| {
                let mut v = view.to_vec();
                v.sort();
                log.push((i, v));
            });
        match attach {
            Attach::Plain => {}
            Attach::Metrics(m) => builder = builder.metrics(m),
            Attach::Traced(m, path) => builder = builder.metrics(m).trace_to(path),
        }
        let mut sim = builder.build();
        sim.run();
    }
    log
}

#[test]
fn gc_heavy_run_is_trajectory_neutral() {
    // Sub-n chunks keep the dense lane disengaged, pinning the run to
    // the configuration-vector path where table churn triggers GC.
    let plain = churner_run(500, Attach::Plain);
    let metrics = Metrics::new();
    assert_eq!(
        plain,
        churner_run(500, Attach::Metrics(&metrics)),
        "metrics perturbed the GC path"
    );
    assert!(
        metrics.counter(Counter::GcPasses) > 0,
        "churner run never triggered GC"
    );
    assert!(metrics.counter(Counter::GcEvicted) > 0);
}

#[test]
fn dense_lane_run_is_trajectory_neutral() {
    // Whole-n chunks put the churner on the dense per-agent lane.
    let plain = churner_run(1_000, Attach::Plain);
    let metrics = Metrics::new();
    assert_eq!(
        plain,
        churner_run(1_000, Attach::Metrics(&metrics)),
        "metrics perturbed the dense lane"
    );
    assert!(
        metrics.counter(Counter::DenseLaneEpisodes) > 0,
        "churner run never took the dense lane"
    );

    let path = temp("lane");
    let _ = std::fs::remove_file(&path);
    let traced_metrics = Metrics::new();
    assert_eq!(
        plain,
        churner_run(1_000, Attach::Traced(&traced_metrics, &path)),
        "tracing perturbed the dense lane"
    );
    assert!(pp_telemetry::read_trace(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointed_run_with_metrics_resumes_identically() {
    // Reference: uninstrumented, uninterrupted completion run.
    let (ref_out, ref_sim) = Simulation::count_builder(InfectionEpidemic)
        .config([(false, N - 1), (true, 1)])
        .mode(EngineMode::Auto)
        .seed(7)
        .until(|view| count_of(view, &true) == N)
        .run();
    assert!(ref_out.converged, "reference run never completed");
    let final_interactions = ref_sim.interactions();
    let mut final_view = ref_sim.view();
    final_view.sort();

    // Instrumented, checkpointing run interrupted mid-flight …
    let snap = temp("snap");
    let _ = std::fs::remove_file(&snap);
    let metrics = Metrics::new();
    {
        let mut sim = Simulation::count_builder(InfectionEpidemic)
            .config([(false, N - 1), (true, 1)])
            .mode(EngineMode::Auto)
            .seed(7)
            .metrics(&metrics)
            .checkpoint_to(&snap)
            .checkpoint_every(N)
            .max_time(3.0)
            .build();
        let out = sim.run();
        assert!(!out.converged, "interrupted run must stop on max_time");
    }
    assert!(
        metrics.counter(Counter::SnapshotWrites) > 0,
        "checkpointing run wrote no snapshots"
    );
    assert!(metrics.counter(Counter::SnapshotBytes) > 0);

    // … and resumed from its snapshot, still instrumented: the completed
    // trajectory must land exactly where the uninterrupted plain run did.
    let resume_metrics = Metrics::new();
    let mut resumed = Simulation::count_builder(InfectionEpidemic)
        .until(|view| count_of(view, &true) == N)
        .metrics(&resume_metrics)
        .resume(&snap)
        .expect("snapshot must resume");
    let out = resumed.run();
    assert!(out.converged, "resumed run never completed");
    assert_eq!(
        resumed.interactions(),
        final_interactions,
        "interaction clocks diverged"
    );
    let mut view = resumed.view();
    view.sort();
    assert_eq!(view, final_view, "resumed view diverged from the plain run");
    std::fs::remove_file(&snap).ok();
}
