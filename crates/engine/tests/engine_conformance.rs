//! `Engine`-trait conformance suite: every simulator behind the unified
//! [`Engine`] interface must honor the same contract —
//!
//! * `view()` is the occupied-state multiset: positive counts summing to
//!   the population size;
//! * `advance(budget)` executes between 1 and `budget` interactions and
//!   never overshoots (run drivers rely on landing checkpoints exactly);
//! * `time()` is `interactions / n`;
//! * trajectories are a deterministic function of the seed;
//! * the dynamic dispatch the sweep layer depends on (`Box<dyn Engine>`)
//!   drives every engine to the same convergence result.
//!
//! The suite runs against all four engines: `AgentSim`, `CountSim`,
//! `BatchedCountSim`, and the adaptive `ConfigSim` facade.

use pp_engine::batch::{BatchedCountSim, ConfigSim};
use pp_engine::count_sim::{CountConfiguration, CountSim};
use pp_engine::simulation::{count_of, view_population, Engine, EngineKind, Simulation};
use pp_engine::{AgentSim, Protocol, SimRng};

// Above ConfigSim::BATCH_THRESHOLD so the Auto facade starts batched.
const N: u64 = 8_192;

/// Agent-level one-way epidemic over `bool`, so all four engines share
/// one state type and one conformance harness.
struct AgentEpidemic;

impl Protocol for AgentEpidemic {
    type State = bool;

    fn initial_state(&self) -> bool {
        false
    }

    fn interact(&self, rec: &mut bool, sen: &mut bool, _rng: &mut SimRng) {
        *rec |= *sen;
    }
}

fn config() -> CountConfiguration<bool> {
    CountConfiguration::from_pairs([(false, N - 1), (true, 1)])
}

/// All four engines, seeded, from the same single-source epidemic start.
fn engines(seed: u64) -> Vec<(&'static str, Box<dyn Engine<bool>>)> {
    use pp_engine::epidemic::InfectionEpidemic;
    let mut agent = AgentSim::new(AgentEpidemic, N as usize, seed);
    agent.set_state(0, true);
    vec![
        ("agent", Box::new(agent)),
        (
            "count",
            Box::new(CountSim::new(InfectionEpidemic, config(), seed)),
        ),
        (
            "batched",
            Box::new(BatchedCountSim::new(InfectionEpidemic, config(), seed)),
        ),
        (
            "config_auto",
            Box::new(ConfigSim::new(InfectionEpidemic, config(), seed)),
        ),
        (
            "config_sequential",
            Box::new(ConfigSim::sequential(InfectionEpidemic, config(), seed)),
        ),
    ]
}

#[test]
fn view_is_the_population_multiset() {
    for (name, mut engine) in engines(1) {
        for _ in 0..5 {
            let view = engine.view();
            assert_eq!(view_population(&view), N, "{name}: view does not sum to n");
            assert!(
                view.iter().all(|&(_, c)| c > 0),
                "{name}: zero-count entry in view"
            );
            assert!(
                count_of(&view, &true) >= 1,
                "{name}: infection lost from view"
            );
            engine.advance(N / 4);
        }
    }
}

#[test]
fn advance_lands_within_budget_and_never_overshoots() {
    for (name, mut engine) in engines(2) {
        assert_eq!(engine.interactions(), 0, "{name}: fresh engine not at 0");
        for budget in [1u64, 7, 64, 1_000] {
            let before = engine.interactions();
            let executed = engine.advance(budget);
            assert!(
                (1..=budget).contains(&executed),
                "{name}: advance({budget}) executed {executed}"
            );
            assert_eq!(
                engine.interactions(),
                before + executed,
                "{name}: interaction clock out of sync with advance()"
            );
        }
    }
}

#[test]
fn time_is_interactions_over_n() {
    for (name, mut engine) in engines(3) {
        assert_eq!(engine.population_size(), N, "{name}");
        for _ in 0..4 {
            engine.advance(777);
            let expect = engine.interactions() as f64 / N as f64;
            assert!(
                (engine.time() - expect).abs() < 1e-12,
                "{name}: time {} vs interactions/n {expect}",
                engine.time()
            );
        }
    }
}

#[test]
fn trajectories_are_deterministic_given_seed() {
    let run = |seed: u64| -> Vec<(u64, Vec<(bool, u64)>)> {
        engines(seed)
            .into_iter()
            .map(|(_, mut engine)| {
                let mut executed = 0;
                while executed < 3 * N {
                    executed += engine.advance(3 * N - executed);
                }
                let mut view = engine.view();
                view.sort();
                (engine.interactions(), view)
            })
            .collect()
    };
    assert_eq!(run(42), run(42), "same seed must reproduce all engines");
    assert_ne!(
        run(42),
        run(43),
        "different seeds should (overwhelmingly) differ"
    );
}

#[test]
fn dyn_dispatch_drives_every_engine_to_completion() {
    for (name, engine) in engines(4) {
        let expected_kind = match name {
            "agent" => EngineKind::Agent,
            "batched" | "config_auto" => EngineKind::Batched,
            _ => EngineKind::Sequential,
        };
        assert_eq!(engine.kind(), expected_kind, "{name}");
        // The sweep layer's shape: engine selected at runtime, driven
        // through the one generic run loop.
        let mut sim = Simulation::from_engine(engine);
        let out = sim.run_until(|view| count_of(view, &true) == N, 1e6);
        assert!(out.converged, "{name}: epidemic never completed");
        assert_eq!(sim.count(&true), N, "{name}");
        // ~2 ln n parallel time, with a generous band.
        assert!(out.time < 60.0, "{name}: completion took {}", out.time);
    }
}
