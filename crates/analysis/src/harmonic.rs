//! Harmonic numbers and related constants.
//!
//! The epidemic analysis (Lemma A.1) and Eisenberg's expectation for maxima
//! of geometric random variables (Lemma D.4) are phrased in terms of the
//! harmonic numbers `H_n = sum_{k=1..n} 1/k` and the Euler–Mascheroni
//! constant `γ = lim (H_n − ln n) ≈ 0.5772`.

/// The Euler–Mascheroni constant γ.
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// `H_n = 1 + 1/2 + ... + 1/n`, computed exactly (summed smallest-first for
/// floating-point accuracy). `H_0 = 0`.
pub fn harmonic(n: u64) -> f64 {
    (1..=n).rev().map(|k| 1.0 / k as f64).sum()
}

/// Asymptotic approximation `H_n ≈ ln n + γ + 1/(2n) − 1/(12n²)`.
///
/// Accurate to well under `1e-6` for `n ≥ 10`; used when `n` is too large to
/// sum directly.
pub fn harmonic_approx(n: u64) -> f64 {
    assert!(n >= 1);
    let nf = n as f64;
    nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
}

/// `H_n` via exact summation below a cutoff, asymptotic expansion above.
pub fn harmonic_fast(n: u64) -> f64 {
    if n == 0 {
        0.0
    } else if n <= 100_000 {
        harmonic(n)
    } else {
        harmonic_approx(n)
    }
}

/// Expected epidemic completion time from Lemma A.1:
/// `E[T] = (n-1)/n * H_{n-1}` parallel time.
pub fn expected_epidemic_time(n: u64) -> f64 {
    assert!(n >= 2);
    (n - 1) as f64 / n as f64 * harmonic_fast(n - 1)
}

/// Tail bound of Lemma A.1: `Pr[T > a·ln n] < 4·n^{−a/4+1}`.
pub fn epidemic_upper_tail(n: u64, alpha_u: f64) -> f64 {
    let nf = n as f64;
    (4.0 * nf.powf(-alpha_u / 4.0 + 1.0)).min(1.0)
}

/// Subpopulation-epidemic tail bound of Corollary 3.4: for an epidemic among
/// `a = n/c` agents, `Pr[T > α_u · ln a] < a^{−(α_u − 4c)²/(12c)}`.
pub fn subpopulation_epidemic_tail(a: u64, c: f64, alpha_u: f64) -> f64 {
    assert!(c >= 1.0);
    if alpha_u <= 4.0 * c {
        return 1.0;
    }
    let af = a as f64;
    af.powf(-(alpha_u - 4.0 * c).powi(2) / (12.0 * c)).min(1.0)
}

/// Natural log base-2 conversion helper: `log2(x) = ln(x)/ln(2)`.
#[inline]
pub fn log2(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_harmonics_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - 25.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn approx_close_to_exact() {
        for n in [10u64, 100, 1_000, 100_000] {
            let exact = harmonic(n);
            let approx = harmonic_approx(n);
            assert!(
                (exact - approx).abs() < 1e-6,
                "n={n}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn fast_switches_consistently() {
        assert_eq!(harmonic_fast(0), 0.0);
        let at_cutoff = harmonic_fast(100_000);
        let above = harmonic_fast(100_001);
        assert!(above > at_cutoff);
        assert!((above - at_cutoff) < 1e-4);
    }

    #[test]
    fn harmonic_brackets_log() {
        // ln n ≤ (n-1)/n · H_{n-1} ≤ 1 + ln n  (stated in the paper, §3.2).
        for n in [10u64, 100, 10_000] {
            let nf = n as f64;
            let v = (n - 1) as f64 / nf * harmonic(n - 1);
            assert!(v >= nf.ln() - 1e-9, "lower bracket fails at n={n}");
            assert!(v <= 1.0 + nf.ln(), "upper bracket fails at n={n}");
        }
    }

    #[test]
    fn epidemic_expectation_matches_definition() {
        let n = 50;
        let direct = (n - 1) as f64 / n as f64 * harmonic(n - 1);
        assert!((expected_epidemic_time(n) - direct).abs() < 1e-12);
    }

    #[test]
    fn epidemic_tail_is_a_probability_and_decreasing() {
        let n = 1000;
        let t8 = epidemic_upper_tail(n, 8.0);
        let t16 = epidemic_upper_tail(n, 16.0);
        let t24 = epidemic_upper_tail(n, 24.0);
        assert!(t8 <= 1.0 && t16 < t8 && t24 < t16);
    }

    #[test]
    fn subpopulation_tail_corollary_3_5() {
        // Corollary 3.5: c = 3, α_u = 24 gives Pr < 27 n^{-3}; our general
        // form at a = n/3 gives a^{-(24-12)²/36} = a^{-4}. Both tiny.
        let tail = subpopulation_epidemic_tail(1000 / 3, 3.0, 24.0);
        assert!(tail < 1e-9, "tail {tail}");
        // At or below α_u = 4c the bound is vacuous.
        assert_eq!(subpopulation_epidemic_tail(333, 3.0, 12.0), 1.0);
    }

    #[test]
    fn gamma_constant_sanity() {
        // H_{10^5} − ln(10^5) should be within 1e-5 of γ.
        let diff = harmonic(100_000) - (100_000f64).ln();
        assert!((diff - EULER_MASCHERONI).abs() < 1e-5);
    }
}
