//! Geometric random variables and their maxima (Appendix D.2).
//!
//! A `p`-geometric random variable counts flips up to and including the first
//! heads of a coin with `Pr[H] = p`; the protocol uses `p = 1/2`. The key
//! quantity is `M = max(G_1, ..., G_N)` over `N` i.i.d. geometrics:
//!
//! * `E[M] ≈ log2 N` — Eisenberg's formula (Lemma D.4) pins it between
//!   `log N + 1` and `log N + 3/2` for `p = 1/2`.
//! * Tail bounds — Lemma D.5 (general `p`), Corollary D.6 (the
//!   `3.31 e^{−λ/2}` sub-exponential bound for `p = 1/2`) and Lemma D.7
//!   (`Pr[M ≥ 2 log N] < 1/N`, `Pr[M ≤ log N − log ln N] < 1/N`).
//!
//! These are exactly the bounds that make the maximum of the population's
//! `logSize2` samples a constant-factor estimate of `log n` (Lemma 3.8).

use rand::Rng;

/// Samples the maximum of `n` i.i.d. geometric(1/2) random variables.
///
/// Implemented by inversion on the exact CDF `Pr[M ≤ t] = (1 − 2^{−t})^n`
/// rather than drawing `n` geometrics, so it is O(1) and usable for huge `n`
/// in the Monte-Carlo verifications.
pub fn max_geometric_sample(n: u64, rng: &mut impl Rng) -> u64 {
    assert!(n >= 1);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    // Find the smallest t ≥ 1 with (1 − 2^{−t})^n ≥ u, i.e.
    // t ≥ −log2(1 − u^{1/n}).
    let root = u.powf(1.0 / n as f64);
    let tail = 1.0 - root;
    if tail <= 0.0 {
        // u^{1/n} rounded to 1.0; fall back to the asymptotic scale.
        return ((n as f64).log2().ceil() as u64).max(1) + 64;
    }
    let t = (-tail.log2()).ceil();
    (t as u64).max(1)
}

/// Samples the maximum of `n` geometrics the direct way (only for testing the
/// inversion sampler; O(n)).
pub fn max_geometric_sample_direct(n: u64, rng: &mut impl Rng) -> u64 {
    (0..n)
        .map(|_| pp_geometric_half(rng))
        .max()
        .expect("n >= 1")
}

/// Geometric(1/2) sampler (support `{1, 2, ...}`), duplicated here so the
/// analysis crate has no dependency on the engine.
pub fn pp_geometric_half(rng: &mut impl Rng) -> u64 {
    let mut count = 1;
    loop {
        let block: u64 = rng.gen();
        if block != 0 {
            return count + block.trailing_zeros() as u64;
        }
        count += 64;
    }
}

/// Eisenberg's expectation for the max of `N` geometric(p) RVs (Lemma D.4):
/// `H_N/λ − 0.0006 ≤ E[M] − 1/2 < H_N/λ + 0.0006` with `λ = ln(1/q)`,
/// `q = 1 − p`. Returns the point estimate `H_N/λ + 1/2`, accurate to
/// `±0.0006` for `q ≥ 1/e`.
pub fn expected_max_geometric(n: u64, p: f64) -> f64 {
    assert!(n >= 1);
    assert!(p > 0.0 && p < 1.0);
    let q = 1.0 - p;
    let lambda = (1.0 / q).ln();
    crate::harmonic::harmonic_fast(n) / lambda + 0.5
}

/// The Lemma D.4 bracket for `p = 1/2`:
/// `log N + 1 < E[M] < log N + 3/2`.
pub fn expected_max_geometric_half_bracket(n: u64) -> (f64, f64) {
    let l = (n as f64).log2();
    (l + 1.0, l + 1.5)
}

/// Analytic tail bounds on `M = max of N geometric(1/2)` from the paper.
#[derive(Debug, Clone, Copy)]
pub struct GeometricMaxBounds {
    /// Number of geometrics in the maximum.
    pub n: u64,
}

impl GeometricMaxBounds {
    /// Creates bounds for `N = n` variables.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1);
        Self { n }
    }

    /// Exact CDF: `Pr[M ≤ t] = (1 − 2^{−t})^N` for integer `t ≥ 0`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 1.0 {
            return 0.0;
        }
        let tt = t.floor();
        (1.0 - 2f64.powf(-tt)).powf(self.n as f64)
    }

    /// Lemma D.7 upper tail: `Pr[M ≥ 2 log N] < 2/N`.
    ///
    /// The paper states `1/N`, using `Pr[G ≥ t] = 2^{−t}`; with the paper's
    /// own support convention (`{1, 2, ...}`, so `Pr[G ≥ t] = 2^{−(t−1)}`)
    /// the union bound gives `2/N`. We report the convention-consistent
    /// constant.
    pub fn upper_tail_bound(&self) -> f64 {
        (2.0 / self.n as f64).min(1.0)
    }

    /// Lemma D.7 lower tail: `Pr[M ≤ log N − log ln N] < 1/N`.
    pub fn lower_tail_bound(&self) -> f64 {
        (1.0 / self.n as f64).min(1.0)
    }

    /// Exact probability of the Lemma D.7 upper event `M ≥ 2 log N`.
    pub fn upper_tail_exact(&self) -> f64 {
        let t = 2.0 * (self.n as f64).log2();
        1.0 - self.cdf(t - 1.0)
    }

    /// Exact probability of the Lemma D.7 lower event
    /// `M ≤ log N − log ln N`.
    pub fn lower_tail_exact(&self) -> f64 {
        let nf = self.n as f64;
        let t = nf.log2() - nf.ln().log2();
        self.cdf(t)
    }

    /// Corollary D.6 sub-exponential bound:
    /// `Pr[|M − E[M]| ≥ λ] < 3.31 e^{−λ/2}`.
    pub fn concentration_bound(&self, lambda: f64) -> f64 {
        (3.31 * (-lambda / 2.0).exp()).min(1.0)
    }
}

/// Lemma 3.8's derived band for the protocol's `logSize2` value (after the
/// `+2` adjustment): with probability `≥ 1 − 1/n − e^{−n/18}`,
/// `log n − log ln n ≤ logSize2 ≤ 2 log n + 1`.
pub fn logsize2_band(n: u64) -> (f64, f64) {
    let nf = n as f64;
    (nf.log2() - nf.ln().log2(), 2.0 * nf.log2() + 1.0)
}

/// The general-`p` tail bounds of Lemma D.5 for `M = max of N
/// geometric(p)` RVs, valid for `q = 1 − p ≥ 1/e` and `N ≥ 50`.
///
/// With `λ' = ln(1/q)`, `γ` the Euler–Mascheroni constant, `ε₂ = 0.0006`:
///
/// * lower tail: `Pr[E[M] − M ≥ λ] ≤ exp(−q^{1/2 + ε₂ − (γ+1)/λ' − λ}·...)`
///   — the paper's exact expression is implemented verbatim below;
/// * upper tail: `Pr[M − E[M] ≥ λ] ≤ q^{λ−1/2−ε₂−γ/λ'} +
///   q^{2λ−1−2ε₂−2γ/λ'}`.
#[derive(Debug, Clone, Copy)]
pub struct GeneralGeometricMaxBounds {
    /// Number of geometrics in the maximum.
    pub n: u64,
    /// Success probability `p` (must satisfy `1 − p ≥ 1/e`).
    pub p: f64,
}

impl GeneralGeometricMaxBounds {
    /// Creates the bounds; panics if `q = 1 − p < 1/e` or `n < 50` (the
    /// lemma's hypotheses).
    pub fn new(n: u64, p: f64) -> Self {
        assert!(n >= 50, "Lemma D.5 requires N ≥ 50");
        let q = 1.0 - p;
        assert!(
            q >= 1.0 / std::f64::consts::E,
            "Lemma D.5 requires q = 1 − p ≥ 1/e, got q = {q}"
        );
        Self { n, p }
    }

    fn q(&self) -> f64 {
        1.0 - self.p
    }

    /// Eisenberg point estimate `H_N / ln(1/q) + 1/2`.
    pub fn expectation(&self) -> f64 {
        expected_max_geometric(self.n, self.p)
    }

    /// Exact CDF `Pr[M ≤ t] = (1 − q^t)^N` for integer `t ≥ 0` (support
    /// starts at 1).
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 1.0 {
            return 0.0;
        }
        (1.0 - self.q().powf(t.floor())).powf(self.n as f64)
    }

    /// Lemma D.5 lower tail `Pr[E[M] − M ≥ λ]`.
    pub fn lower_tail(&self, lambda: f64) -> f64 {
        const EPS2: f64 = 0.0006;
        const GAMMA: f64 = crate::harmonic::EULER_MASCHERONI;
        let q = self.q();
        let lam_prime = (1.0 / q).ln();
        let exponent = 0.5 + EPS2 + (GAMMA + 1.0) / lam_prime - lambda;
        (-q.powf(exponent)).exp().min(1.0)
    }

    /// Lemma D.5 upper tail `Pr[M − E[M] ≥ λ]`.
    pub fn upper_tail(&self, lambda: f64) -> f64 {
        const EPS2: f64 = 0.0006;
        const GAMMA: f64 = crate::harmonic::EULER_MASCHERONI;
        let q = self.q();
        let lam_prime = (1.0 / q).ln();
        let t1 = q.powf(lambda - 0.5 - EPS2 - GAMMA / lam_prime);
        let t2 = q.powf(2.0 * lambda - 1.0 - 2.0 * EPS2 - 2.0 * GAMMA / lam_prime);
        (t1 + t2).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn inversion_sampler_matches_direct_mean() {
        let mut r = rng(1);
        let n = 256;
        let trials = 30_000;
        let mean_inv: f64 = (0..trials)
            .map(|_| max_geometric_sample(n, &mut r) as f64)
            .sum::<f64>()
            / trials as f64;
        let mean_dir: f64 = (0..trials)
            .map(|_| max_geometric_sample_direct(n, &mut r) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(
            (mean_inv - mean_dir).abs() < 0.1,
            "inversion {mean_inv} vs direct {mean_dir}"
        );
    }

    #[test]
    fn eisenberg_bracket_holds_empirically() {
        let mut r = rng(2);
        for n in [64u64, 1024, 65_536] {
            let trials = 40_000;
            let mean: f64 = (0..trials)
                .map(|_| max_geometric_sample(n, &mut r) as f64)
                .sum::<f64>()
                / trials as f64;
            let (lo, hi) = expected_max_geometric_half_bracket(n);
            assert!(
                mean > lo - 0.05 && mean < hi + 0.05,
                "n={n}: mean {mean} outside ({lo}, {hi})"
            );
        }
    }

    #[test]
    fn point_estimate_inside_bracket() {
        // Lemma D.4 for p = 1/2: log N + 1 < E[M] < log N + 3/2, and the
        // Eisenberg point estimate is log N + γ/ln 2 + 1/2 ≈ log N + 1.333.
        for n in [50u64, 500, 5_000_000] {
            let est = expected_max_geometric(n, 0.5);
            let (lo, hi) = expected_max_geometric_half_bracket(n);
            assert!(
                est > lo && est < hi,
                "n={n}, est={est}, bracket ({lo},{hi})"
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_proper() {
        let b = GeometricMaxBounds::new(1000);
        assert_eq!(b.cdf(0.5), 0.0);
        let mut prev = 0.0;
        for t in 1..60 {
            let c = b.cdf(t as f64);
            assert!(c >= prev);
            prev = c;
        }
        assert!(prev > 0.999_999);
    }

    #[test]
    fn lemma_d7_exact_below_bound() {
        for n in [64u64, 1024, 1_048_576] {
            let b = GeometricMaxBounds::new(n);
            assert!(
                b.upper_tail_exact() <= b.upper_tail_bound(),
                "upper tail violated at n={n}"
            );
            assert!(
                b.lower_tail_exact() <= b.lower_tail_bound(),
                "lower tail violated at n={n}"
            );
        }
    }

    #[test]
    fn lemma_d7_upper_tail_empirical() {
        let mut r = rng(3);
        let n = 1024u64;
        let threshold = 2.0 * (n as f64).log2(); // 20
        let trials = 100_000;
        let hits = (0..trials)
            .filter(|_| max_geometric_sample(n, &mut r) as f64 >= threshold)
            .count();
        let freq = hits as f64 / trials as f64;
        let bound = GeometricMaxBounds::new(n).upper_tail_bound();
        assert!(
            freq <= bound * 1.5,
            "upper tail frequency {freq} vs bound {bound}"
        );
    }

    #[test]
    fn concentration_bound_shrinks() {
        let b = GeometricMaxBounds::new(100);
        assert_eq!(b.concentration_bound(0.0), 1.0);
        assert!(b.concentration_bound(4.0) < b.concentration_bound(2.0));
        assert!(b.concentration_bound(40.0) < 1e-8);
    }

    #[test]
    fn concentration_holds_empirically() {
        let mut r = rng(4);
        let n = 4096u64;
        let e_m = expected_max_geometric(n, 0.5);
        let trials = 50_000;
        for lambda in [3.0, 5.0, 8.0] {
            let hits = (0..trials)
                .filter(|_| {
                    let m = max_geometric_sample(n, &mut r) as f64;
                    (m - e_m).abs() >= lambda
                })
                .count();
            let freq = hits as f64 / trials as f64;
            let bound = GeometricMaxBounds::new(n).concentration_bound(lambda);
            assert!(
                freq <= bound * 1.2 + 0.005,
                "λ={lambda}: freq {freq} vs bound {bound}"
            );
        }
    }

    #[test]
    fn logsize2_band_is_ordered() {
        for n in [100u64, 10_000, 1_000_000] {
            let (lo, hi) = logsize2_band(n);
            assert!(lo < hi);
            assert!(lo > 0.0);
            assert!(hi < 2.5 * (n as f64).log2());
        }
    }

    #[test]
    fn max_sample_support_starts_at_one() {
        let mut r = rng(5);
        for _ in 0..1000 {
            assert!(max_geometric_sample(1, &mut r) >= 1);
        }
    }

    /// Direct sampler for geometric(p) maxima (test-only, O(n)).
    fn max_geometric_p(n: u64, p: f64, rng: &mut SmallRng) -> u64 {
        use rand::Rng;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
            })
            .max()
            .unwrap()
    }

    #[test]
    fn general_bounds_construction_guards() {
        assert!(std::panic::catch_unwind(|| GeneralGeometricMaxBounds::new(10, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| GeneralGeometricMaxBounds::new(100, 0.8)).is_err());
        let _ok = GeneralGeometricMaxBounds::new(100, 0.5);
    }

    #[test]
    fn general_expectation_matches_monte_carlo() {
        let mut r = rng(21);
        for p in [0.3f64, 0.5, 0.6] {
            let n = 500u64;
            let b = GeneralGeometricMaxBounds::new(n, p);
            let trials = 20_000;
            let mean: f64 = (0..trials)
                .map(|_| max_geometric_p(n, p, &mut r) as f64)
                .sum::<f64>()
                / trials as f64;
            assert!(
                (mean - b.expectation()).abs() < 0.1,
                "p={p}: mc {mean} vs eisenberg {}",
                b.expectation()
            );
        }
    }

    #[test]
    fn general_cdf_is_proper() {
        let b = GeneralGeometricMaxBounds::new(200, 0.3);
        assert_eq!(b.cdf(0.0), 0.0);
        let mut prev = 0.0;
        for t in 1..100 {
            let c = b.cdf(t as f64);
            assert!(c >= prev);
            prev = c;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn general_tails_dominate_monte_carlo() {
        let mut r = rng(22);
        for p in [0.3f64, 0.5] {
            let n = 1000u64;
            let b = GeneralGeometricMaxBounds::new(n, p);
            let e_m = b.expectation();
            let trials = 30_000;
            for lambda in [4.0, 7.0] {
                let (mut up, mut down) = (0u64, 0u64);
                for _ in 0..trials {
                    let m = max_geometric_p(n, p, &mut r) as f64;
                    if m - e_m >= lambda {
                        up += 1;
                    }
                    if e_m - m >= lambda {
                        down += 1;
                    }
                }
                let up_freq = up as f64 / trials as f64;
                let down_freq = down as f64 / trials as f64;
                assert!(
                    up_freq <= b.upper_tail(lambda) + 0.003,
                    "p={p}, λ={lambda}: up {up_freq} vs bound {}",
                    b.upper_tail(lambda)
                );
                assert!(
                    down_freq <= b.lower_tail(lambda) + 0.003,
                    "p={p}, λ={lambda}: down {down_freq} vs bound {}",
                    b.lower_tail(lambda)
                );
            }
        }
    }

    #[test]
    fn general_tails_decrease_in_lambda() {
        let b = GeneralGeometricMaxBounds::new(100, 0.5);
        assert!(b.upper_tail(8.0) < b.upper_tail(4.0));
        assert!(b.lower_tail(8.0) < b.lower_tail(4.0));
        assert!(b.upper_tail(40.0) < 1e-10);
    }
}
