//! Binomial Chernoff bounds used throughout Section 3.
//!
//! Three protocol facts rest on plain binomial concentration:
//!
//! * **Lemma 3.2** — the role partition produces `|A| ∈ [n/2 − a, n/2 + a]`
//!   with probability `≥ 1 − e^{−2a²/n}` (Hoeffding form).
//! * **Lemma 3.6** — in `C ln n` parallel time, no agent has more than
//!   `D ln n` interactions for `D = 2C + √(12C)`, with probability
//!   `≥ 1 − 1/n`. This is what lets an interaction counter act as a
//!   *leaderless phase clock*.
//! * **Corollary 3.7** — the instantiation `C = 24`, `D = 65`: an agent has
//!   `≥ 65 ln n` interactions within `24 ln n` time with probability
//!   `≤ 1/n`.

/// Multiplicative Chernoff upper tail for a sum of independent 0/1 variables
/// with mean `mu`: `Pr[X ≥ (1+δ)μ] ≤ e^{−δ²μ/3}` for `0 < δ ≤ 1`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "δ must be in (0, 1]");
    (-delta * delta * mu / 3.0).exp().min(1.0)
}

/// Multiplicative Chernoff lower tail: `Pr[X ≤ (1−δ)μ] ≤ e^{−δ²μ/2}`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 1.0, "δ must be in (0, 1]");
    (-delta * delta * mu / 2.0).exp().min(1.0)
}

/// Hoeffding bound for a Binomial(n, 1/2):
/// `Pr[B ≥ n/2 + a] ≤ e^{−2a²/n}` (Lemma 3.2's form).
pub fn binomial_half_deviation(n: u64, a: f64) -> f64 {
    assert!(a >= 0.0);
    (-2.0 * a * a / n as f64).exp().min(1.0)
}

/// Lemma 3.2: probability that the role split misses
/// `[n/2 − a, n/2 + a]` is at most `2 e^{−2a²/n}` (two-sided union).
pub fn partition_deviation_bound(n: u64, a: f64) -> f64 {
    (2.0 * binomial_half_deviation(n, a)).min(1.0)
}

/// Corollary 3.3's instantiation: `|A| ∈ [n/3, 2n/3]` fails with probability
/// at most `e^{−n/18}` (a = n/6 in one tail).
pub fn corollary_3_3_bound(n: u64) -> f64 {
    (-(n as f64) / 18.0).exp().min(1.0)
}

/// The interaction-count constant of Lemma 3.6: `D = 2C + √(12C)`.
///
/// In time `C ln n`, every agent has at most `D ln n` interactions with
/// probability `≥ 1 − 1/n` (requires `C ≥ 3`).
pub fn lemma_3_6_d(c: f64) -> f64 {
    assert!(c >= 3.0, "Lemma 3.6 requires C ≥ 3");
    2.0 * c + (12.0 * c).sqrt()
}

/// Per-agent failure probability in Lemma 3.6's proof: `n^{−2}` per agent,
/// `1/n` after the union bound over agents.
pub fn lemma_3_6_bound(n: u64) -> f64 {
    (1.0 / n as f64).min(1.0)
}

/// The leaderless-phase-clock threshold used by the protocol: agents count
/// to `95 · logSize2` interactions per epoch. Corollary 3.7 justifies 95:
/// at most `65 ln n ≤ 94 log n` interactions occur within the `24 ln n`
/// time an epidemic needs, w.h.p., so the paper rounds up to 95.
pub const PHASE_CLOCK_MULTIPLIER: u64 = 95;

/// The epoch-count multiplier: agents run `K = 5 · logSize2` epochs, enough
/// to make `K ≥ 4 log n` w.h.p. (Corollary A.4).
pub const EPOCH_MULTIPLIER: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chernoff_monotone_in_delta_and_mu() {
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(100.0, 0.25));
        assert!(chernoff_upper(200.0, 0.5) < chernoff_upper(100.0, 0.5));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(100.0, 0.25));
    }

    #[test]
    #[should_panic(expected = "δ must be in (0, 1]")]
    fn chernoff_rejects_bad_delta() {
        chernoff_upper(10.0, 1.5);
    }

    #[test]
    fn hoeffding_matches_simulation() {
        // Binomial(n, 1/2) deviations: the bound must dominate the empirical
        // frequency.
        let n = 400u64;
        let a = 30.0;
        let bound = binomial_half_deviation(n, a);
        let mut rng = SmallRng::seed_from_u64(8);
        let trials = 50_000;
        let hits = (0..trials)
            .filter(|_| {
                let heads: u32 = (0..n).map(|_| rng.gen::<bool>() as u32).sum();
                heads as f64 >= n as f64 / 2.0 + a
            })
            .count();
        let freq = hits as f64 / trials as f64;
        assert!(freq <= bound * 1.5 + 0.002, "freq {freq} vs bound {bound}");
    }

    #[test]
    fn partition_bound_at_sqrt_n_log_n() {
        // a = √(n ln n) gives bound 2 e^{−2 ln n} = 2/n² (used in L3.12).
        let n = 10_000u64;
        let a = ((n as f64) * (n as f64).ln()).sqrt();
        let b = partition_deviation_bound(n, a);
        assert!((b - 2.0 / (n as f64 * n as f64)).abs() / b < 1e-9);
    }

    #[test]
    fn corollary_3_3_tiny_for_moderate_n() {
        assert!(corollary_3_3_bound(1000) < 1e-24);
        assert_eq!(corollary_3_3_bound(1), (-1.0f64 / 18.0).exp());
    }

    #[test]
    fn lemma_3_6_constants() {
        // C = 24: D = 48 + √288 ≈ 64.97 ≤ 65 (Corollary 3.7's constant).
        let d = lemma_3_6_d(24.0);
        assert!(d <= 65.0 && d > 64.9, "{d}");
        // C = 3 (the minimum): D = 6 + 6 = 12.
        assert!((lemma_3_6_d(3.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "C ≥ 3")]
    fn lemma_3_6_rejects_small_c() {
        lemma_3_6_d(2.0);
    }

    #[test]
    fn phase_clock_constant_dominates_interaction_bound() {
        // 95 log n ≥ 65 ln n  ⇔  95 ≥ 65 ln 2 ≈ 45.05 — comfortably true;
        // the paper's 94 log n ≥ 65 ln n claim is the same check.
        let required = 65.0 * std::f64::consts::LN_2 + 1.0;
        assert!(PHASE_CLOCK_MULTIPLIER as f64 >= required, "{required}");
        assert_eq!(PHASE_CLOCK_MULTIPLIER, 95);
        assert_eq!(EPOCH_MULTIPLIER, 5);
    }

    #[test]
    fn interaction_counts_concentrate_empirically() {
        // Simulate the count of interactions of one agent over C·n·ln n
        // total interactions, n = 200, C = 3; check Pr[> D ln n] small.
        let n = 200u64;
        let c = 3.0;
        let d = lemma_3_6_d(c);
        let total = (c * n as f64 * (n as f64).ln()) as u64;
        let mut rng = SmallRng::seed_from_u64(15);
        let trials = 4_000;
        let p_hit = 2.0 / n as f64;
        let mut exceed = 0;
        for _ in 0..trials {
            let mut count = 0u64;
            for _ in 0..total {
                if rng.gen::<f64>() < p_hit {
                    count += 1;
                }
            }
            if count as f64 >= d * (n as f64).ln() {
                exceed += 1;
            }
        }
        let freq = exceed as f64 / trials as f64;
        // Per-agent bound is n^{-2} = 2.5e-5; allow simulation noise.
        assert!(freq <= 0.003, "exceed frequency {freq}");
    }
}
