//! Descriptive statistics for trial aggregation.
//!
//! Every experiment harness reports a [`Summary`] per parameter point:
//! mean, standard deviation, min/median/max, and quantiles of the trial
//! results, plus a normal-approximation confidence half-width.

/// Summary statistics of a sample.
///
/// ```
/// use pp_analysis::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// assert_eq!((s.min, s.max), (1.0, 4.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (average of middle two for even counts).
    pub median: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let count = data.len();
        let mean = data.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Self {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[count - 1],
        }
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width (`1.96 · SEM`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.sem()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.3} ± {:.3} (sd {:.3}, min {:.3}, med {:.3}, max {:.3}, n={})",
            self.mean,
            self.ci95_half_width(),
            self.stddev,
            self.min,
            self.median,
            self.max,
            self.count
        )
    }
}

/// Streaming (single-pass) moment accumulator: Welford's online algorithm
/// plus min/max tracking.
///
/// This is the incremental half of trial aggregation: sweep workers push
/// results as they finish (in any order — the accumulated moments are
/// order-insensitive up to floating-point rounding), and progress reports
/// read mean/stddev without waiting for the full sample. Final table
/// statistics (which include order statistics) come from [`Summary::of`]
/// over the complete, deterministically ordered sample.
///
/// ```
/// use pp_analysis::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 4);
/// assert_eq!(r.mean(), 2.5);
/// assert_eq!((r.min(), r.max()), (1.0, 4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Running {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (matching [`Summary::of`]).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "observation is NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al.'s parallel
    /// variance combination) — the reduction step when each worker keeps a
    /// local accumulator.
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Bessel-corrected sample standard deviation (0 for count < 2).
    pub fn stddev(&self) -> f64 {
        if self.count > 1 {
            (self.m2 / (self.count - 1) as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Minimum observation (+∞ for an empty accumulator).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ for an empty accumulator).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width (`1.96 · SEM`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.sem()
    }
}

/// Empirical quantile (linear interpolation between order statistics).
///
/// `q` in `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Fraction of observations satisfying a predicate (an empirical
/// probability).
pub fn empirical_probability(data: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    assert!(!data.is_empty());
    data.iter().filter(|&&x| pred(x)).count() as f64 / data.len() as f64
}

/// Simple fixed-width histogram over `[lo, hi)` with `bins` buckets;
/// out-of-range values clamp to the end buckets.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &x in data {
        let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance with Bessel: 32/7.
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.sem(), 0.0);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn running_matches_batch_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        for &x in &data {
            r.push(x);
        }
        let s = Summary::of(&data);
        assert_eq!(r.count() as usize, s.count);
        assert!((r.mean() - s.mean).abs() < 1e-12);
        assert!((r.stddev() - s.stddev).abs() < 1e-12);
        assert_eq!((r.min(), r.max()), (s.min, s.max));
        assert!((r.ci95_half_width() - s.ci95_half_width()).abs() < 1e-12);
    }

    #[test]
    fn running_merge_matches_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 3 == 0 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        let mut merged = Running::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!((merged.min(), merged.max()), (whole.min(), whole.max()));
        // Merging an empty accumulator is a no-op in both directions.
        merged.merge(&Running::new());
        assert_eq!(merged.count(), whole.count());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn running_rejects_nan() {
        Running::new().push(f64::NAN);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.0), 0.0);
        assert_eq!(quantile(&data, 1.0), 10.0);
        assert_eq!(quantile(&data, 0.5), 5.0);
        let data2 = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data2, 0.5), 3.0);
        assert_eq!(quantile(&data2, 0.25), 2.0);
    }

    #[test]
    fn empirical_probability_counts() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_probability(&data, |x| x > 2.0), 0.5);
        assert_eq!(empirical_probability(&data, |_| true), 1.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let data = [-1.0, 0.5, 1.5, 2.5, 100.0];
        let h = histogram(&data, 0.0, 3.0, 3);
        assert_eq!(h, vec![2, 1, 2]);
    }

    #[test]
    fn display_is_readable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = format!("{s}");
        assert!(text.contains("mean 2.000"));
        assert!(text.contains("n=3"));
    }
}
