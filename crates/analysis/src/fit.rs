//! Least-squares fits for scaling-law checks.
//!
//! Figure 2 plots convergence time against `n` on a log-x axis; the claimed
//! scaling is `Θ(log² n)`. The harness fits the measured times to the models
//! `t = a + b·log n` and `t = a + b·log² n` and compares R² — the quadratic
//! model should explain the data better, and the linear-in-`log n` model
//! should show systematic curvature.

/// Result of an ordinary least-squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Coefficient of determination R² in [0, 1] (1 = perfect).
    pub r_squared: f64,
}

/// Fits `y ≈ a + b·x` by ordinary least squares.
///
/// ```
/// use pp_analysis::fit::linear_fit;
///
/// let f = linear_fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((f.slope - 2.0).abs() < 1e-12);
/// assert!((f.r_squared - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if fewer than 2 points or if all `x` are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "mismatched lengths");
    assert!(xs.len() >= 2, "need at least 2 points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "all x values identical");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).max(0.0)
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Fits `time ≈ a + b·log2(n)` to `(n, time)` points.
pub fn fit_vs_log_n(points: &[(u64, f64)]) -> LinearFit {
    let xs: Vec<f64> = points.iter().map(|&(n, _)| (n as f64).log2()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, t)| t).collect();
    linear_fit(&xs, &ys)
}

/// Fits `time ≈ a + b·log2²(n)` to `(n, time)` points.
pub fn fit_vs_log2_n(points: &[(u64, f64)]) -> LinearFit {
    let xs: Vec<f64> = points
        .iter()
        .map(|&(n, _)| (n as f64).log2().powi(2))
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, t)| t).collect();
    linear_fit(&xs, &ys)
}

/// Compares the log-linear and log-quadratic models; returns
/// `(fit_log, fit_log2)`. The Figure 2 claim is that the second explains
/// the data at least as well.
pub fn compare_scaling_models(points: &[(u64, f64)]) -> (LinearFit, LinearFit) {
    (fit_vs_log_n(points), fit_vs_log2_n(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_good_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                2.0 * x
                    + 1.0
                    + if (x as u64).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn one_point_panics() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    fn quadratic_model_wins_on_quadratic_data() {
        // Synthesize t = 3·log²n (the paper's scaling shape).
        let points: Vec<(u64, f64)> = [100u64, 1_000, 10_000, 100_000, 1_000_000]
            .iter()
            .map(|&n| (n, 3.0 * (n as f64).log2().powi(2)))
            .collect();
        let (lin, quad) = compare_scaling_models(&points);
        assert!(quad.r_squared > 0.999_999);
        assert!((quad.slope - 3.0).abs() < 1e-9);
        assert!(lin.r_squared < quad.r_squared);
    }

    #[test]
    fn linear_model_wins_on_linear_data() {
        let points: Vec<(u64, f64)> = [100u64, 1_000, 10_000, 100_000]
            .iter()
            .map(|&n| (n, 7.0 * (n as f64).log2()))
            .collect();
        let (lin, quad) = compare_scaling_models(&points);
        assert!(lin.r_squared > 0.999_999);
        assert!((lin.slope - 7.0).abs() < 1e-9);
        assert!(quad.r_squared < 1.0);
    }

    #[test]
    fn constant_y_has_r2_one() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.r_squared, 1.0);
        assert!(f.slope.abs() < 1e-12);
    }
}
