//! Sub-exponential random variables and the Chernoff bound for sums of
//! maxima of geometrics (Appendix D.1, Lemmas D.2–D.8, Corollaries D.9–D.10).
//!
//! The protocol averages `K` maxima of geometric random variables. Standard
//! Chernoff bounds for bounded variables do not apply — a max of geometrics
//! has an exponential upper tail — so the paper routes through the theory of
//! sub-exponential random variables:
//!
//! 1. **Definition D.1.** `X` is `α-β`-sub-exponential if
//!    `Pr[|X − E[X]| ≥ λ] ≤ α e^{−λ/β}`.
//! 2. **Lemma D.2.** Such `X` has MGF bound
//!    `E[e^{s(X−E[X])}] ≤ 1 + 2αβ²s²` for `|s| ≤ 1/(2β)`.
//! 3. **Lemma D.3.** For `K` i.i.d. copies,
//!    `Pr[|S − E[S]| ≥ t] ≤ 2(1 + α/2)^K e^{−t/(2β)}`.
//! 4. **Corollary D.6** shows the max of `N` geometric(1/2) RVs is
//!    `3.31`-`2`-sub-exponential, giving **Lemma D.8**:
//!    `Pr[|S − E[S]| ≥ t] ≤ 2 e^{K − t/4}`.
//! 5. **Corollary D.9/D.10.** With `K ≥ 4 log N`, the average is within 4.7
//!    of `log N` with probability `≥ 1 − 2/N`.
//!
//! This module exposes each bound as a function of its parameters, plus the
//! protocol-level error probability of Lemma 3.11 / Theorem 3.1.

use crate::harmonic::EULER_MASCHERONI;

/// Parameters of a sub-exponential random variable (Definition D.1):
/// `Pr[|X − E[X]| ≥ λ] ≤ α e^{−λ/β}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubExponential {
    /// Multiplicative constant α.
    pub alpha: f64,
    /// Scale β.
    pub beta: f64,
}

/// The sub-exponential parameters of a max of `N ≥ 50` geometric(1/2)
/// random variables, per Corollary D.6.
pub const MAX_GEOMETRIC_SUBEXP: SubExponential = SubExponential {
    alpha: 3.31,
    beta: 2.0,
};

impl SubExponential {
    /// The tail bound itself: `min(1, α e^{−λ/β})`.
    pub fn tail(&self, lambda: f64) -> f64 {
        (self.alpha * (-lambda / self.beta).exp()).min(1.0)
    }

    /// Lemma D.2: bound on `E[e^{s(X−E[X])}]` for `|s| ≤ 1/(2β)`.
    ///
    /// # Panics
    ///
    /// Panics if `|s| > 1/(2β)` — the bound is only proven there.
    pub fn mgf_bound(&self, s: f64) -> f64 {
        assert!(
            s.abs() <= 1.0 / (2.0 * self.beta) + 1e-12,
            "Lemma D.2 requires |s| <= 1/(2β)"
        );
        1.0 + 2.0 * self.alpha * self.beta * self.beta * s * s
    }

    /// Lemma D.3: for a sum `S` of `K` i.i.d. copies,
    /// `Pr[|S − E[S]| ≥ t] ≤ 2 (1 + α/2)^K e^{−t/(2β)}`.
    pub fn sum_tail(&self, k: u64, t: f64) -> f64 {
        let log_bound =
            (2.0f64).ln() + k as f64 * (1.0 + self.alpha / 2.0).ln() - t / (2.0 * self.beta);
        log_bound.exp().min(1.0)
    }
}

/// Lemma D.8: for `S` a sum of `K` maxima of `N ≥ 50` geometric(1/2) RVs,
/// `Pr[|S − E[S]| ≥ t] ≤ 2 e^{K − t/4}`.
pub fn lemma_d8_sum_tail(k: u64, t: f64) -> f64 {
    ((k as f64 - t / 4.0).exp() * 2.0).min(1.0)
}

/// The centering constant of Corollary D.9:
/// `δ₀ = 1/2 + γ/ln 2 − ε₂` with `ε₂ = 0.0006`.
pub fn delta0() -> f64 {
    0.5 + EULER_MASCHERONI / std::f64::consts::LN_2 - 0.0006
}

/// Corollary D.9: with `a > 4` and `K ≥ ln N / (a/4 − 1)`,
/// `Pr[|S/K − log N − δ₀| ≥ a] ≤ 2/N`.
///
/// Returns the bound `2/N`; callers check the `K` hypothesis with
/// [`d9_min_k`].
pub fn corollary_d9_bound(n: u64) -> f64 {
    (2.0 / n as f64).min(1.0)
}

/// The minimum `K` required by Corollary D.9 for error `a`.
pub fn d9_min_k(n: u64, a: f64) -> u64 {
    assert!(a > 4.0, "Corollary D.9 needs a > 4");
    ((n as f64).ln() / (a / 4.0 - 1.0)).ceil() as u64
}

/// Corollary D.10's specialization: `a = ln 2 + 4 < 4.7` makes the minimum
/// `K` exactly `4 log2 N`.
pub fn d10_min_k(n: u64) -> u64 {
    (4.0 * (n as f64).log2()).ceil() as u64
}

/// Corollary D.10: with `K ≥ 4 log N`, `Pr[|S/K − log N| ≥ 4.7] ≤ 2/N`.
pub const D10_ADDITIVE_ERROR: f64 = 4.7;

/// Lemma 3.11: the protocol averages over the role-A subpopulation whose
/// size `a ∈ [n/2 − √(n ln n), n/2 + √(n ln n)]`, shifting `log a` at most 2
/// below `log n`; with the output convention `sum/K + 1` this gives
/// `Pr[|sum/K + 1 − log n| ≥ 5.7] ≤ 6/n`.
pub const PROTOCOL_ADDITIVE_ERROR: f64 = 5.7;

/// Lemma 3.11's failure bound `6/n`.
pub fn lemma_3_11_bound(n: u64) -> f64 {
    (6.0 / n as f64).min(1.0)
}

/// Theorem 3.1's overall failure probability for the error event:
/// `Pr[|output − log n| ≥ 5.7] ≤ 9/n`.
pub fn theorem_3_1_error_bound(n: u64) -> f64 {
    (9.0 / n as f64).min(1.0)
}

/// Theorem 3.1's convergence-time guarantee: `O(log² n)` with probability
/// `≥ 1 − 1/n²`. Returns the concrete budget used in Corollary 3.10's proof:
/// `(11 log n + 1) · 24 ln n` parallel time.
pub fn corollary_3_10_time_budget(n: u64) -> f64 {
    let nf = n as f64;
    (11.0 * nf.log2() + 1.0) * 24.0 * nf.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{expected_max_geometric, max_geometric_sample};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tail_is_clamped_and_decreasing() {
        let x = MAX_GEOMETRIC_SUBEXP;
        assert_eq!(x.tail(0.0), 1.0);
        assert!(x.tail(10.0) < x.tail(5.0));
        assert!(x.tail(100.0) < 1e-20);
    }

    #[test]
    fn mgf_bound_at_edge() {
        let x = MAX_GEOMETRIC_SUBEXP;
        // s = 1/(2β) = 0.25: bound = 1 + 2·3.31·4·0.0625 = 2.655
        let b = x.mgf_bound(0.25);
        assert!((b - 2.655).abs() < 1e-9, "{b}");
    }

    #[test]
    #[should_panic(expected = "Lemma D.2")]
    fn mgf_bound_rejects_large_s() {
        MAX_GEOMETRIC_SUBEXP.mgf_bound(0.3);
    }

    #[test]
    fn lemma_d3_reduces_to_d8() {
        // With α = 3.31 < 2e − 2 and β = 2, (1 + α/2) < e, so D.3's bound is
        // below D.8's 2e^{K − t/4}.
        for k in [10u64, 50, 200] {
            for t in [100.0, 500.0, 2000.0] {
                let d3 = MAX_GEOMETRIC_SUBEXP.sum_tail(k, t);
                let d8 = lemma_d8_sum_tail(k, t);
                assert!(d3 <= d8 + 1e-12, "K={k}, t={t}: d3 {d3} > d8 {d8}");
            }
        }
    }

    #[test]
    fn d8_bound_nontrivial_for_large_t() {
        assert_eq!(lemma_d8_sum_tail(10, 0.0), 1.0);
        assert!(lemma_d8_sum_tail(10, 100.0) < 1.0);
        assert!(lemma_d8_sum_tail(10, 400.0) < 1e-30);
    }

    #[test]
    fn d9_k_thresholds() {
        // a = ln2 + 4 => K = ln N / (ln2/4) = 4 log2 N.
        let n = 1024;
        let k_d9 = d9_min_k(n, std::f64::consts::LN_2 + 4.0);
        let k_d10 = d10_min_k(n);
        assert_eq!(k_d10, 40);
        assert!((k_d9 as i64 - k_d10 as i64).abs() <= 1, "{k_d9} vs {k_d10}");
    }

    #[test]
    #[should_panic(expected = "a > 4")]
    fn d9_rejects_small_a() {
        d9_min_k(100, 4.0);
    }

    #[test]
    fn delta0_value() {
        // 1/2 + 0.5772/0.6931 − 0.0006 ≈ 1.3322
        let d = delta0();
        assert!((d - 1.332).abs() < 0.01, "{d}");
    }

    #[test]
    fn d10_holds_empirically() {
        // Average K = 4 log N maxima; the average must be within 4.7 of
        // log N nearly always (bound says failure ≤ 2/N).
        let n = 512u64;
        let k = d10_min_k(n); // 36
        let mut rng = SmallRng::seed_from_u64(77);
        let trials = 2_000;
        let mut failures = 0;
        for _ in 0..trials {
            let sum: u64 = (0..k).map(|_| max_geometric_sample(n, &mut rng)).sum();
            let avg = sum as f64 / k as f64;
            if (avg - (n as f64).log2()).abs() >= D10_ADDITIVE_ERROR {
                failures += 1;
            }
        }
        let freq = failures as f64 / trials as f64;
        assert!(
            freq <= corollary_d9_bound(n) * 2.0 + 0.002,
            "failure frequency {freq}"
        );
    }

    #[test]
    fn empirical_average_is_near_log_plus_delta0() {
        // E[S/K] ≈ log N + δ₀ (Corollary D.9's centering).
        let n = 4096u64;
        let k = 2_000u64;
        let mut rng = SmallRng::seed_from_u64(123);
        let sum: u64 = (0..k).map(|_| max_geometric_sample(n, &mut rng)).sum();
        let avg = sum as f64 / k as f64;
        let predicted = (n as f64).log2() + delta0();
        assert!(
            (avg - predicted).abs() < 0.25,
            "avg {avg} vs predicted {predicted}"
        );
        // Cross-check against Eisenberg's direct expectation.
        let eisenberg = expected_max_geometric(n, 0.5);
        assert!((avg - eisenberg).abs() < 0.35);
    }

    #[test]
    fn protocol_level_bounds_scale() {
        assert!(theorem_3_1_error_bound(9) == 1.0);
        assert!(theorem_3_1_error_bound(1_000) == 0.009);
        assert!(lemma_3_11_bound(600) == 0.01);
        assert!(corollary_3_10_time_budget(1000) > 0.0);
        // Budget grows ~ log² n: ratio between n=10^6 and n=10^3 ≈ 4 (log
        // doubles, ln doubles).
        let r = corollary_3_10_time_budget(1_000_000) / corollary_3_10_time_budget(1_000);
        assert!(r > 3.0 && r < 5.0, "{r}");
    }
}
