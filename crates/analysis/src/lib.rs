//! # pp-analysis — probability and statistics toolkit
//!
//! *A supporting toolkit beside the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! The quantitative backbone of the reproduction of Doty & Eftekhari
//! (PODC 2019). The paper's protocol analysis rests on a chain of
//! probability lemmas; this crate implements each of them as executable
//! code so the experiment harnesses can compare *measured* behaviour against
//! the *claimed* bounds:
//!
//! * [`harmonic`] — harmonic numbers, the Euler–Mascheroni constant, and the
//!   epidemic expectation `E[T] = (n-1)/n * H_{n-1}` (Lemma A.1).
//! * [`geometric`] — geometric random variables and their maxima: Eisenberg's
//!   expectation formula (Lemma D.4), the tail bounds of Lemma D.5 /
//!   Corollary D.6 / Lemma D.7, and Monte-Carlo samplers.
//! * [`subexp`] — sub-exponential random variables (Definition D.1), the
//!   moment-generating-function bound (Lemma D.2), the Chernoff bound for
//!   sums (Lemma D.3, Lemma D.8) and the additive-error corollaries
//!   (Corollary D.9 / D.10) that justify the protocol's `±4.7` averaging
//!   error.
//! * [`chernoff`] — binomial Chernoff bounds used by Lemma 3.2 (role
//!   partition), Lemma 3.6 (per-agent interaction counts, the basis of the
//!   leaderless phase clock) and Corollary 3.4 (subpopulation epidemics).
//! * [`balls_bins`] — the timer lemma of Appendix E: analytic bounds E.1/E.2
//!   and Corollary E.3, plus the balls-into-bins simulator that validates
//!   them.
//! * [`stats`] — descriptive statistics for trial aggregation.
//! * [`fit`] — least-squares fits used to check the `O(log^2 n)` time scaling
//!   of Figure 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls_bins;
pub mod chernoff;
pub mod coupon;
pub mod fit;
pub mod geometric;
pub mod harmonic;
pub mod stats;
pub mod subexp;

pub use geometric::{expected_max_geometric, max_geometric_sample, GeometricMaxBounds};
pub use stats::Summary;
