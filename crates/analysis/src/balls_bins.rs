//! The timer lemma of Appendix E: balls into bins.
//!
//! Theorem 4.1's proof needs to know that a state present in large count
//! cannot be consumed too quickly. The paper reduces consumption to a
//! balls-into-bins process:
//!
//! * **Lemma E.1.** Throwing `m` balls into `n` bins of which `k` start
//!   empty, `Pr[≤ δk bins remain empty] < (2δ e m/n)^{δk}` for `δ ≤ 1/2`.
//! * **Lemma E.2.** For a state with initial count `k`,
//!   `Pr[∃t ∈ [0,T]: count ≤ δk] ≤ (2δ e^{3T})^{δk}` (each interaction is
//!   dominated by throwing three balls).
//! * **Corollary E.3.** With `δ = 1/81`, `T = 1`:
//!   `Pr[count drops to ≤ k/81 within time 1] ≤ 2^{−k/81}`.
//!
//! The module provides the analytic bounds and a simulator for the
//! worst-case consumption process (every interaction touching an agent in
//! state `s` destroys that copy), which is what the bound must dominate.

use rand::Rng;

/// Lemma E.1 bound: `(2 δ e m / n)^{δk}`, clamped to [0, 1].
pub fn lemma_e1_bound(n: u64, k: u64, m: u64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 0.5, "Lemma E.1 needs 0 < δ ≤ 1/2");
    let base = 2.0 * delta * std::f64::consts::E * m as f64 / n as f64;
    if base >= 1.0 {
        return 1.0;
    }
    base.powf(delta * k as f64).min(1.0)
}

/// Lemma E.2 bound: `(2 δ e^{3T})^{δk}`, clamped to [0, 1].
pub fn lemma_e2_bound(k: u64, delta: f64, t: f64) -> f64 {
    assert!(delta > 0.0 && delta <= 0.5);
    let base = 2.0 * delta * (3.0 * t).exp();
    if base >= 1.0 {
        return 1.0;
    }
    base.powf(delta * k as f64).min(1.0)
}

/// Corollary E.3 bound: `2^{−k/81}` for the event "count of a state with
/// initial count `k` drops to ≤ k/81 within parallel time 1".
pub fn corollary_e3_bound(k: u64) -> f64 {
    2f64.powf(-(k as f64) / 81.0)
}

/// Simulates Lemma E.1's process: `n` bins, `k` initially empty, throw `m`
/// balls; returns the number of initially-empty bins that remain empty.
pub fn simulate_balls_bins(n: u64, k: u64, m: u64, rng: &mut impl Rng) -> u64 {
    assert!(k <= n);
    // Bins 0..k are the initially-empty ones; we only track those.
    let mut empty = vec![true; k as usize];
    let mut remaining = k;
    for _ in 0..m {
        let bin = rng.gen_range(0..n);
        if bin < k && empty[bin as usize] {
            empty[bin as usize] = false;
            remaining -= 1;
        }
    }
    remaining
}

/// Simulates the worst-case consumption process of Lemma E.2: a population
/// of `n` agents, `k` of them in state `s`; every interaction destroys any
/// copy of `s` it touches. Runs for `T` parallel time (`T·n` interactions)
/// and returns the *minimum* count of `s` observed (which, as consumption is
/// monotone, is the final count).
pub fn simulate_worst_case_consumption(n: u64, k: u64, t: f64, rng: &mut impl Rng) -> u64 {
    assert!(k <= n && n >= 2);
    let interactions = (t * n as f64).ceil() as u64;
    // Track which agents still hold s. Agents 0..k start with it.
    let mut holds = vec![true; k as usize];
    let mut count = k;
    for _ in 0..interactions {
        // Ordered pair of distinct agents.
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        for idx in [a, b] {
            if idx < k && holds[idx as usize] {
                holds[idx as usize] = false;
                count -= 1;
            }
        }
    }
    count
}

/// The expected surviving fraction after worst-case consumption for time
/// `T`: each agent avoids interacting with probability
/// `≈ e^{−2T}` (it is touched by each interaction with probability `2/n`).
pub fn expected_survival_fraction(t: f64) -> f64 {
    (-2.0 * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn e1_bound_clamps_and_decreases_in_k() {
        // Small m/n: bound decreases as k grows.
        let b1 = lemma_e1_bound(1000, 100, 50, 0.1);
        let b2 = lemma_e1_bound(1000, 200, 50, 0.1);
        assert!(b2 < b1);
        // Huge m: vacuous.
        assert_eq!(lemma_e1_bound(1000, 100, 10_000_000, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "0 < δ ≤ 1/2")]
    fn e1_rejects_large_delta() {
        lemma_e1_bound(10, 5, 5, 0.75);
    }

    #[test]
    fn e3_matches_e2_instantiation() {
        // Corollary E.3 sets δ = 1/81, T = 1; base = 2e³/81 < 1/2, so the
        // E.2 bound is below (1/2)^{k/81} = 2^{−k/81}.
        for k in [81u64, 810, 8100] {
            let e2 = lemma_e2_bound(k, 1.0 / 81.0, 1.0);
            let e3 = corollary_e3_bound(k);
            assert!(e2 <= e3, "k={k}: e2 {e2} > e3 {e3}");
        }
    }

    #[test]
    fn balls_bins_simulation_respects_e1() {
        // n = 500 bins, k = 250 empty, m = 250 balls, δ = 0.2:
        // bound = (2·0.2·e·0.5)^{50} = (0.5436...)^{50} — astronomically
        // small, so the event should never occur in simulation.
        let mut r = rng(1);
        let (n, k, m) = (500, 250, 250);
        let delta = 0.2;
        let bound = lemma_e1_bound(n, k, m, delta);
        assert!(bound < 1e-12);
        for _ in 0..200 {
            let remaining = simulate_balls_bins(n, k, m, &mut r);
            assert!(
                (remaining as f64) > delta * k as f64,
                "event with probability {bound} occurred"
            );
        }
    }

    #[test]
    fn balls_bins_mean_matches_occupancy() {
        // Expected number of empty bins after m throws: k(1 − 1/n)^m.
        let mut r = rng(2);
        let (n, k, m) = (1000u64, 500u64, 2000u64);
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| simulate_balls_bins(n, k, m, &mut r) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = k as f64 * (1.0 - 1.0 / n as f64).powf(m as f64);
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn consumption_survival_matches_expectation() {
        let mut r = rng(3);
        let (n, k, t) = (2000u64, 1000u64, 1.0);
        let trials = 100;
        let mean: f64 = (0..trials)
            .map(|_| simulate_worst_case_consumption(n, k, t, &mut r) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = k as f64 * expected_survival_fraction(t);
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn consumption_never_hits_e3_threshold() {
        // Corollary E.3: dropping to k/81 within time 1 has probability
        // ≤ 2^{−k/81}; with k = 810 that is 2^{−10} ≈ 1e−3, and the *actual*
        // probability is astronomically smaller (expected survival is
        // k·e^{−2} ≈ 0.135k >> k/81). 50 trials should never see it.
        let mut r = rng(4);
        let (n, k) = (1620u64, 810u64);
        for _ in 0..50 {
            let survived = simulate_worst_case_consumption(n, k, 1.0, &mut r);
            assert!(survived > k / 81, "count fell to {survived} ≤ k/81");
        }
    }

    #[test]
    fn e3_bound_shrinks_exponentially() {
        assert!(corollary_e3_bound(81) <= 0.5);
        assert!(corollary_e3_bound(810) <= 0.001);
        let ratio = corollary_e3_bound(162) / corollary_e3_bound(81);
        assert!((ratio - 0.5).abs() < 1e-9);
    }
}
