//! Coupon-collector machinery (Lemma B.1 and the terminating count
//! heuristic).
//!
//! Two places in the reproduction lean on coupon-collector arguments:
//!
//! * **Lemma B.1** — the synthetic-coin variant models "every A agent
//!   finishes generating its geometric variable" as collecting |A| coupons
//!   where coupon `i`'s per-interaction success probability is
//!   `|A−(i−1)|·|F| / (n(n−1))`; the lemma bounds the completion time by
//!   `O(log n)` w.h.p.
//! * **Michail-style exact counting** — the leader knows it has probably
//!   seen everyone once its run of already-marked encounters exceeds the
//!   coupon-collector tail.
//!
//! This module provides the exact expectation, the standard tail bounds,
//! and the Lemma B.1 bound itself.

/// Expected draws to collect all `n` coupons: `n·H_n`.
pub fn expected_draws(n: u64) -> f64 {
    n as f64 * crate::harmonic::harmonic_fast(n)
}

/// Classic upper tail: `Pr[T > β·n ln n] ≤ n^{1−β}` for `β > 1`.
pub fn tail_bound(n: u64, beta: f64) -> f64 {
    assert!(beta > 0.0);
    (n as f64).powf(1.0 - beta).min(1.0)
}

/// Probability that a *specific* coupon is still missing after `m` draws:
/// `(1 − 1/n)^m`.
pub fn missing_one_after(n: u64, m: u64) -> f64 {
    (1.0 - 1.0 / n as f64).powf(m as f64)
}

/// Expected number of distinct coupons after `m` draws:
/// `n(1 − (1 − 1/n)^m)`.
pub fn expected_distinct(n: u64, m: u64) -> f64 {
    n as f64 * (1.0 - missing_one_after(n, m))
}

/// Lemma B.1's bound: with `|A|, |F| ≥ n/3`, all A agents finish generating
/// one geometric variable within `4α·ln n` parallel time with probability
/// `≥ 1 − (3/n)^{α−1} − 2e^{−n/18}`.
pub fn lemma_b1_failure(n: u64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "Lemma B.1 needs α > 1");
    let nf = n as f64;
    ((3.0 / nf).powf(alpha - 1.0) + 2.0 * (-nf / 18.0).exp()).min(1.0)
}

/// The run length after which a leader that has counted `c` agents should
/// have met an unmarked one (if any existed) with probability
/// `≥ 1 − e^{−run/c}` — the justification of the exact-counting
/// termination heuristic: with `run = β·c·ln c`, failure ≤ `c^{−β}`.
pub fn exact_count_confidence(count: u64, run: u64) -> f64 {
    if count == 0 {
        return 1.0;
    }
    1.0 - (-(run as f64) / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn expectation_matches_simulation() {
        let n = 200u64;
        let mut rng = SmallRng::seed_from_u64(1);
        let trials = 400;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut seen = vec![false; n as usize];
            let mut distinct = 0u64;
            let mut draws = 0u64;
            while distinct < n {
                let c = rng.gen_range(0..n) as usize;
                draws += 1;
                if !seen[c] {
                    seen[c] = true;
                    distinct += 1;
                }
            }
            total += draws;
        }
        let mean = total as f64 / trials as f64;
        let expected = expected_draws(n);
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn tail_bound_dominates_simulation() {
        let n = 100u64;
        let beta = 2.0;
        let cutoff = (beta * n as f64 * (n as f64).ln()) as u64;
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 2_000;
        let mut exceed = 0;
        for _ in 0..trials {
            let mut seen = vec![false; n as usize];
            let mut distinct = 0u64;
            let mut draws = 0u64;
            while distinct < n && draws <= cutoff {
                let c = rng.gen_range(0..n) as usize;
                draws += 1;
                if !seen[c] {
                    seen[c] = true;
                    distinct += 1;
                }
            }
            if distinct < n {
                exceed += 1;
            }
        }
        let freq = exceed as f64 / trials as f64;
        assert!(
            freq <= tail_bound(n, beta) * 2.0 + 1e-3,
            "freq {freq} vs bound {}",
            tail_bound(n, beta)
        );
    }

    #[test]
    fn distinct_counts_formula() {
        let n = 1000u64;
        let mut rng = SmallRng::seed_from_u64(3);
        let m = 1500u64;
        let trials = 200;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut seen = vec![false; n as usize];
            for _ in 0..m {
                seen[rng.gen_range(0..n) as usize] = true;
            }
            total += seen.iter().filter(|&&b| b).count() as u64;
        }
        let mean = total as f64 / trials as f64;
        let expected = expected_distinct(n, m);
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn lemma_b1_shrinks_with_alpha_and_n() {
        assert!(lemma_b1_failure(1000, 3.0) < lemma_b1_failure(1000, 2.0));
        assert!(lemma_b1_failure(100_000, 2.0) < lemma_b1_failure(1000, 2.0));
        assert!(lemma_b1_failure(1000, 3.0) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn lemma_b1_rejects_small_alpha() {
        lemma_b1_failure(100, 1.0);
    }

    #[test]
    fn confidence_rises_with_run() {
        assert!(exact_count_confidence(100, 0) < 0.01);
        let beta_run = (3.0 * 100.0 * 100f64.ln()) as u64;
        assert!(exact_count_confidence(100, beta_run) > 0.999);
        assert_eq!(exact_count_confidence(0, 10), 1.0);
    }
}
