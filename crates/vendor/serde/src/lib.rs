//! Vendored stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` *derive macros* (as no-ops) so
//! that `#[derive(serde::Serialize, serde::Deserialize)]` annotations compile
//! without network access. No trait machinery is provided because nothing in
//! the workspace serializes at runtime; swapping in the real crates.io serde
//! requires no call-site changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
