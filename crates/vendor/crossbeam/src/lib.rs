//! Vendored stand-in for the slice of `crossbeam` this workspace uses:
//! [`scope`] for structured borrowing threads, backed by `std::thread::scope`
//! (which landed in std after crossbeam popularized the pattern), and
//! [`channel`] for MPSC result collection, backed by `std::sync::mpsc`.
//!
//! Divergence from real crossbeam: a panicking spawned thread propagates its
//! panic out of [`scope`] (std semantics) instead of surfacing through the
//! returned `Result`; the workspace's callers `.expect()` the `Result`
//! immediately, so observable behaviour — a panic — is the same. The
//! [`channel`] module exposes only the multi-producer/single-consumer slice
//! of crossbeam-channel's API (`unbounded`, `Sender`, `Receiver`), which is
//! exactly what `std::sync::mpsc` provides.

#![forbid(unsafe_code)]

/// The `crossbeam-channel` subset this workspace uses: an unbounded MPSC
/// channel for collecting results from scoped worker threads.
pub mod channel {
    /// Receiving half of an unbounded channel.
    pub use std::sync::mpsc::Receiver;
    /// Sending half of an unbounded channel (clone one per producer).
    pub use std::sync::mpsc::Sender;

    /// Creates an unbounded MPSC channel (crossbeam-channel's `unbounded`
    /// shape; the consumer side is single-receiver, which is all the
    /// workspace's fan-in call sites need).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// The error half of crossbeam's scope result (a boxed panic payload).
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a placeholder argument
    /// (real crossbeam passes the scope again for nested spawns, which this
    /// workspace never does).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Creates a scope in which threads may borrow from the enclosing stack
/// frame. All spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(0u64);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let local: u64 = chunk.iter().sum();
                    *sums.lock().unwrap() += local;
                });
            }
        })
        .unwrap();
        assert_eq!(sums.into_inner().unwrap(), 10);
    }
}
