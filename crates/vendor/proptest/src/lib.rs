//! Vendored stand-in for `proptest`: the subset of the API this workspace's
//! property tests use, with seeded random generation but **no shrinking**.
//!
//! Supported surface:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(N))]`,
//! * strategies: integer and float `Range`s, `any::<T>()` for primitive
//!   integers, tuples of strategies (arity 2–6), and
//!   `proptest::collection::vec(strategy, len_range)`,
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`.
//!
//! Failures report the generated inputs (via `Debug`) and the case's
//! deterministic seed so a run can be reproduced by rerunning the test binary
//! (generation is seeded from the test function's name and the case index —
//! no global entropy).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of random cases to run per property by default.
///
/// Real proptest defaults to 256; this stand-in defaults lower because the
/// workspace's properties drive whole simulations per case.
pub const DEFAULT_CASES: u32 = 64;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a full-domain "arbitrary" strategy ([`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

/// Strategy over a type's full domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the strategy drawing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, 1..10)`: vectors of 1–9 elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "length range must be non-empty");
        VecStrategy { element, len }
    }
}

/// Derives the deterministic RNG for one test case.
///
/// Seeded from the property name and case index, so every case of every
/// property is reproducible without shared global state.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Outcome of a single property case: `Err` carries the failure message,
/// `Ok(false)` means the case was discarded by `prop_assume!`.
pub type CaseResult = Result<(), TestCaseError>;

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case's inputs were rejected by `prop_assume!`.
    Reject,
}

/// Items meant to be glob-imported, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (with input
/// values reported by the harness) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines seeded property tests.
///
/// Each `#[test] fn name(x in strategy, ...) { body }` item becomes a normal
/// `#[test]` that samples its inputs `cases` times and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut executed: u32 = 0;
            // Allow some headroom for prop_assume! rejections.
            let max_attempts = config.cases.saturating_mul(8).max(16);
            for case in 0..max_attempts {
                if executed >= config.cases {
                    break;
                }
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                // Render inputs up front: the body may consume its arguments.
                let __inputs = format!("{:?}", ($(&$arg,)+));
                let __case: $crate::CaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __case {
                    Ok(()) => executed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {case}: {msg}\n  inputs: {__inputs}",
                            stringify!($name)
                        );
                    }
                }
            }
            assert!(
                executed > 0,
                "property {} rejected all {} generated cases",
                stringify!($name),
                max_attempts
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..10, 1..5)) {
            prop_assert!((1..5).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn tuples_sample_componentwise(t in (0u8..4, 4u8..8, 8u8..12, 12u8..16)) {
            let (a, b, c, d) = t;
            prop_assert!(a < 4 && (4..8).contains(&b) && (8..12).contains(&c) && (12..16).contains(&d));
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in any::<u64>()) {
            // Body intentionally trivial; the harness asserts cases ran.
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    #[allow(unnameable_test_items)] // the macro deliberately expands a #[test] fn inline here
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x >= 10, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a = crate::case_rng("t", 3).gen::<u64>();
        let b = crate::case_rng("t", 3).gen::<u64>();
        let c = crate::case_rng("t", 4).gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
