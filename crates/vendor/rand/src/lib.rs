//! Vendored stand-in for the `rand` crate (API-compatible subset of 0.8).
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, integer/float/bool `gen` and `gen_range`, and a
//! small fast seedable generator ([`rngs::SmallRng`], here xoshiro256++).
//!
//! Distributional contracts match upstream `rand` 0.8:
//!
//! * `gen::<f64>()` is uniform on `[0, 1)` with 53 random bits,
//! * `gen_range(a..b)` over integers is unbiased (Lemire's method),
//! * `gen_range(a..b)` over floats is `a + u * (b - a)` with `u ∈ [0, 1)`,
//! * `gen::<bool>()` is a fair coin.
//!
//! Streams are *not* bit-compatible with upstream `rand` (different generator
//! and different range algorithms); everything in this workspace only relies
//! on determinism-given-seed, which holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform random 64-bit words.
pub trait RngCore {
    /// Returns the next uniform random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the analogue of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` using the top 24 bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly (analogue of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift
/// rejection method.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        // Threshold for rejecting the biased low region: (2^64 - span) % span.
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against round-up to the exclusive endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random value interface (analogue of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// 256-bit state, period `2^256 - 1`, passes BigCrush; the conventional
    /// choice for non-cryptographic simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    impl SmallRng {
        /// Returns the raw 256-bit generator state, for checkpointing.
        /// Restoring it with [`SmallRng::from_state`] resumes the stream
        /// exactly where it left off.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`SmallRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not reachable from any
        /// seed and would make xoshiro emit zeros forever.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "the all-zero state is not a valid xoshiro256++ state"
            );
            Self { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Standard xoshiro seeding: expand the seed with SplitMix64 so
            // that even seed 0 yields a non-zero, well-mixed state.
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_unbiased_over_small_span() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0u32; 5];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 20_000.0).abs() < 900.0, "count {c}");
        }
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(7);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 - 50_000.0).abs() < 1_000.0, "heads {heads}");
    }

    #[test]
    fn signed_range() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }
}
