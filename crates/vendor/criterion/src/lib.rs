//! Vendored stand-in for `criterion`: the subset of the API this workspace's
//! benchmarks use, measuring wall-clock time with `std::time::Instant`.
//!
//! Statistical machinery (outlier rejection, bootstrap confidence intervals,
//! HTML reports) is not reproduced: each benchmark runs a calibration pass to
//! pick an iteration count targeting `TARGET_SAMPLE_TIME`, takes
//! `sample_size` samples, and reports the median time per iteration plus
//! derived throughput. Results print to stdout in a stable aligned format.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Wall-clock budget per sample after calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Re-export of the standard black box (criterion's is equivalent on modern
/// toolchains).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched*` (accepted, not acted on: the
/// stand-in always regenerates per sample, not per iteration batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _name: name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark (no group).
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup {
    _name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; drives the measured routine.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured time for the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` back-to-back `iters` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on a mutable value built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched_ref`] but passing the input by value.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: grow the iteration count until one sample costs at least
    // the target sample time (or the count stops mattering).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
            break;
        }
        // Aim directly at the target from the observed per-iter cost.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let goal = (TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.max(1e-12)).ceil();
        iters = (iters * 2).max(goal as u64).min(1 << 24);
    }
    let mut per_iter_ns: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let (lo, hi) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
    let mut line = format!(
        "  {name:<44} {} [{} .. {}]",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(k) => (k, "elem/s"),
            Throughput::Bytes(k) => (k, "B/s"),
        };
        let rate = count as f64 / (median * 1e-9);
        line.push_str(&format!("  {} {unit}", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("counted", |b| {
            b.iter_batched_ref(|| 0u64, |x| *x += 1, BatchSize::SmallInput);
            ran += 1;
        });
        group.finish();
        assert!(ran >= 2, "closure should run for calibration and samples");
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert!(fmt_ns(1.5e4).contains("µs"));
        assert!(fmt_rate(2.5e7).ends_with('M'));
    }
}
