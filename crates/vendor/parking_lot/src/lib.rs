//! Vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot::Mutex` API (no poison
//! `Result` on `lock`). Performance characteristics differ from the real
//! parking_lot, but the workspace only uses the mutex for low-contention
//! work distribution in the trial runner.

#![forbid(unsafe_code)]

use std::sync::MutexGuard as StdGuard;

/// A mutual exclusion primitive with `parking_lot`'s panic-on-poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    ///
    /// Unlike `std`, does not return a poison `Result`: a panic while holding
    /// the lock propagates the inner value as-is (poisoning is ignored).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    inner: StdGuard<'a, T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn contended_counter() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
