//! Vendored stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as inert annotations (no serialization is performed anywhere offline), so
//! the derives expand to nothing. If real serialization is ever needed, swap
//! the vendored `serde`/`serde_derive` for the crates.io versions — call
//! sites will not change.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
