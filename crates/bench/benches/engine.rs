//! Criterion micro-benchmarks for the simulation substrate: raw interaction
//! throughput determines how far the Figure 2 sweep can scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pp_engine::count_sim::{CountConfiguration, CountSim};
use pp_engine::epidemic::{InfectionEpidemic, MaxEpidemic};
use pp_engine::rng::{geometric_half, rng_from_seed};
use pp_engine::scheduler::PairScheduler;
use pp_engine::AgentSim;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(1));
    group.bench_function("next_pair_n=1000", |b| {
        let sched = PairScheduler::new(1000);
        let mut rng = rng_from_seed(1);
        b.iter(|| sched.next_pair(&mut rng));
    });
    group.finish();
}

fn bench_geometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("geometric_half", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| geometric_half(&mut rng));
    });
    group.bench_function("max_geometric_inversion_n=1e6", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| pp_analysis::geometric::max_geometric_sample(1_000_000, &mut rng));
    });
    group.finish();
}

fn bench_agent_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_sim");
    for &n in &[100usize, 10_000] {
        group.throughput(Throughput::Elements(1000));
        group.bench_function(format!("max_epidemic_1k_steps_n={n}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut sim = AgentSim::new(MaxEpidemic, n, 4);
                    sim.set_state(0, 42);
                    sim
                },
                |sim| sim.steps(1000),
                BatchSize::SmallInput,
            );
        });
    }
    group.throughput(Throughput::Elements(1000));
    group.bench_function("log_size_protocol_1k_steps_n=1000", |b| {
        b.iter_batched_ref(
            || AgentSim::new(pp_core::log_size::LogSizeEstimation::paper(), 1000, 5),
            |sim| sim.steps(1000),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_count_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sim");
    group.throughput(Throughput::Elements(1000));
    for &n in &[10_000u64, 1_000_000] {
        group.bench_function(format!("infection_1k_steps_n={n}"), |b| {
            b.iter_batched_ref(
                || {
                    let config = CountConfiguration::from_pairs([(false, n - 1), (true, 1)]);
                    CountSim::new(InfectionEpidemic, config, 6)
                },
                |sim| sim.steps(1000),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scheduler, bench_geometric, bench_agent_sim, bench_count_sim
}
criterion_main!(benches);
