//! Criterion benchmark `batched_vs_sequential`: the two configuration-
//! vector engines head to head on identical workloads.
//!
//! The interesting comparisons:
//! * dense-phase throughput (epidemic started at 10% infected, fixed
//!   interaction budget) — pure batch-fill speed vs per-interaction cost;
//! * full completion runs from a single source — includes the null-
//!   dominated tails where the batched engine's skip mode dominates;
//! * the bulk samplers underneath the batch fill.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pp_engine::batch::BatchedCountSim;
use pp_engine::count_sim::{CountConfiguration, CountSim};
use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::rng::{hypergeometric, rng_from_seed};

fn dense_config(n: u64) -> CountConfiguration<bool> {
    CountConfiguration::from_pairs([(false, n - n / 10), (true, n / 10)])
}

fn single_source(n: u64) -> CountConfiguration<bool> {
    CountConfiguration::from_pairs([(false, n - 1), (true, 1)])
}

fn bench_dense_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_sequential/dense_100k_steps");
    let n = 1_000_000u64;
    let steps = 100_000u64;
    group.throughput(Throughput::Elements(steps));
    group.bench_function("sequential", |b| {
        b.iter_batched_ref(
            || CountSim::new(InfectionEpidemic, dense_config(n), 7),
            |sim| sim.steps(steps),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched_ref(
            || BatchedCountSim::new(InfectionEpidemic, dense_config(n), 7),
            |sim| sim.steps(steps),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_sequential/completion_n=1e5");
    let n = 100_000u64;
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter_batched_ref(
            || CountSim::new(InfectionEpidemic, single_source(n), 11),
            |sim| sim.run_until(|c| c.count(&true) == n, n / 8, f64::MAX),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched_ref(
            || BatchedCountSim::new(InfectionEpidemic, single_source(n), 11),
            |sim| sim.run_until(|c| c.count(&true) == n, n / 8, f64::MAX),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hypergeometric_batch_fill", |b| {
        // Parameters of a mid-epidemic batch fill at n = 10⁶.
        let mut rng = rng_from_seed(13);
        b.iter(|| hypergeometric(1_000_000, 500_000, 626, &mut rng));
    });
    group.bench_function("hypergeometric_pairing", |b| {
        let mut rng = rng_from_seed(17);
        b.iter(|| hypergeometric(626, 313, 300, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_dense_phase, bench_completion, bench_samplers);
criterion_main!(benches);
