//! Criterion benchmarks at the protocol level: end-to-end runs at small `n`
//! and the producibility closure of the Theorem 4.1 machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_termination::experiment::counter_protocol;
use pp_termination::producible_closure;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols");
    group.sample_size(10);
    group.bench_function("log_size_estimation_full_n=100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            pp_core::log_size::estimate_log_size(100, seed, None)
        });
    });
    group.bench_function("weak_estimator_full_n=1000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            pp_baselines::alistarh::weak_estimate(1000, seed)
        });
    });
    group.bench_function("epidemic_completion_n=10000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            pp_engine::epidemic::epidemic_completion_time(10_000, seed)
        });
    });
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("termination");
    group.bench_function("producibility_closure_counter_64", |b| {
        let rel = counter_protocol(64);
        b.iter(|| producible_closure(&rel, [0u16, 1000u16], 1.0, None));
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_runs, bench_closure);
criterion_main!(benches);
