//! Minimal HTTP client for the `pp-server` sweep service.
//!
//! Backs the `sweep submit|status|watch|fetch` subcommands. Hand-rolled
//! on `std::net::TcpStream` like the server itself: one request per
//! connection, `Connection: close`, no external dependencies. Server
//! addresses are accepted as `http://host:port` or bare `host:port`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use pp_sweep::json;

/// Normalizes a server argument to a `host:port` dial string.
pub fn server_addr(url: &str) -> String {
    url.trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// One-shot request; returns `(status code, body)`.
///
/// # Errors
///
/// Connection or protocol failures, described for the CLI user.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn expect_ok(result: (u16, String)) -> Result<String, String> {
    let (status, body) = result;
    if (200..300).contains(&status) {
        Ok(body)
    } else {
        Err(format!("server said {status}: {}", body.trim()))
    }
}

/// Submits a spec file; returns the job id (already-existing jobs count
/// as success — submission is idempotent on the grid fingerprint).
///
/// # Errors
///
/// Unreadable spec files, connection failures, or server rejections.
pub fn submit(addr: &str, spec_path: &str) -> Result<String, String> {
    let spec =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let body = expect_ok(request(addr, "POST", "/jobs", &spec)?)?;
    let doc = json::parse(&body)?;
    doc.get("id")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("response has no job id: {body}"))
}

/// Fetches a job's status document (raw JSON).
///
/// # Errors
///
/// Connection failures or unknown jobs.
pub fn status(addr: &str, id: &str) -> Result<String, String> {
    expect_ok(request(addr, "GET", &format!("/jobs/{id}"), "")?)
}

/// Follows a job's SSE stream until the terminal event, echoing frames
/// to stderr. Returns the job's final state (`done`, `failed`,
/// `cancelled`).
///
/// # Errors
///
/// Connection failures or a stream that ends without a terminal event.
pub fn watch(addr: &str, id: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Status line + headers.
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if !line.contains("200") {
        return Err(format!("server refused the stream: {}", line.trim()));
    }
    loop {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read headers: {e}"))?;
        if line.trim_end().is_empty() {
            break;
        }
    }
    // SSE frames: `event:` names the frame, `data:` carries its payload.
    let mut event = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("stream read failed: {e}"))?;
        if n == 0 {
            return Err("stream closed without a terminal event".into());
        }
        let trimmed = line.trim_end();
        if let Some(name) = trimmed.strip_prefix("event: ") {
            event = name.to_string();
            continue;
        }
        let Some(data) = trimmed.strip_prefix("data: ") else {
            continue; // blank separators and `: hb` heartbeats
        };
        eprintln!("[{event}] {data}");
        if event == "done" {
            let doc = json::parse(data)?;
            return doc
                .get("state")
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("terminal event has no state: {data}"));
        }
    }
}

/// Downloads a finished job's report artifacts into `out_dir`
/// (`summary.csv`, `trials.csv`, `report.json`, and `counters.csv` when
/// the job carried telemetry). Returns the written paths.
///
/// # Errors
///
/// Connection failures, jobs that are not done yet (`409`), or IO.
pub fn fetch(addr: &str, id: &str, out_dir: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let mut written = Vec::new();
    for (file, required) in [
        ("summary.csv", true),
        ("trials.csv", true),
        ("report.json", true),
        ("counters.csv", false),
    ] {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}/{file}"), "")?;
        if !(200..300).contains(&code) {
            if required {
                return Err(format!("cannot fetch {file}: server said {code}: {body}"));
            }
            continue; // counters are optional (PP_METRICS=off jobs)
        }
        let path = out_dir.join(file);
        std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}
