//! **§3.3**: the probability-1 upper bound.
//!
//! Claims: the reported `max(k_fast + 4, kex + 1)` is `≥ log n` with
//! probability 1 (the `l_i/f_i` backup computes `kex = ⌊log2 n⌋` exactly),
//! and stays `≤ log n + 9.7` w.h.p.
//!
//! Runs as a `pp-sweep` grid over the registry's `prob1_upper`
//! experiment: trials fan out over `--threads` workers, `--journal`
//! makes the run resumable, and each trial's engine telemetry counters
//! land in the journal alongside its metrics.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 10);
    let spec = args.sweep_spec("table_prob1_upper");
    println!(
        "Section 3.3 probability-1 upper bound (trials={})",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["prob1_upper"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let point = report.point("prob1_upper", n);
        let logn = (n as f64).log2();
        let reports = point.values("report");
        let kexes = point.values("kex");
        let at_least = reports.iter().filter(|&&r| r >= logn).count();
        let within = reports.iter().filter(|&&r| r <= logn + 10.0).count();
        let kex_ok = kexes.iter().filter(|&&k| k == logn.floor()).count();
        let s = pp_analysis::stats::Summary::of(&reports);
        rows.push(vec![
            n.to_string(),
            fmt(logn),
            fmt(s.mean),
            fmt(s.min),
            fmt(s.max),
            format!("{}/{}", at_least, reports.len()),
            format!("{}/{}", within, reports.len()),
            format!("{}/{}", kex_ok, kexes.len()),
        ]);
        for (r, k) in reports.iter().zip(&kexes) {
            csv.push(vec![n.to_string(), format!("{r}"), format!("{k}")]);
        }
    }
    print_table(
        &[
            "n",
            "log n",
            "mean_report",
            "min",
            "max",
            ">=log n",
            "<=log n+10",
            "kex exact",
        ],
        &rows,
    );
    println!("\n(>=log n must be ALL trials — it is the probability-1 guarantee)");
    write_csv("table_prob1_upper", &["n", "report", "kex"], &csv);
}
