//! **§3.3**: the probability-1 upper bound.
//!
//! Claims: the reported `max(k_fast + 4, kex + 1)` is `≥ log n` with
//! probability 1 (the `l_i/f_i` backup computes `kex = ⌊log2 n⌋` exactly),
//! and stays `≤ log n + 9.7` w.h.p.

use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::upper_bound::estimate_upper_bound;
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 10);
    println!(
        "Section 3.3 probability-1 upper bound (trials={})",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        // The backup needs O(n) extra time after the fast part converges.
        let extra = 30.0 * n as f64;
        let outcomes = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            estimate_upper_bound(n as usize, seed, extra)
        });
        let logn = (n as f64).log2();
        let reports: Vec<f64> = outcomes.iter().map(|o| o.value.report as f64).collect();
        let at_least = reports.iter().filter(|&&r| r >= logn).count();
        let within = reports.iter().filter(|&&r| r <= logn + 10.0).count();
        let kex_ok = outcomes
            .iter()
            .filter(|o| o.value.kex == logn.floor() as u64)
            .count();
        let s = pp_analysis::stats::Summary::of(&reports);
        rows.push(vec![
            n.to_string(),
            fmt(logn),
            fmt(s.mean),
            fmt(s.min),
            fmt(s.max),
            format!("{}/{}", at_least, reports.len()),
            format!("{}/{}", within, reports.len()),
            format!("{}/{}", kex_ok, reports.len()),
        ]);
        for o in &outcomes {
            csv.push(vec![
                n.to_string(),
                o.value.report.to_string(),
                o.value.kex.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "log n",
            "mean_report",
            "min",
            "max",
            ">=log n",
            "<=log n+10",
            "kex exact",
        ],
        &rows,
    );
    println!("\n(>=log n must be ALL trials — it is the probability-1 guarantee)");
    write_csv("table_prob1_upper", &["n", "report", "kex"], &csv);
}
