//! **L E.1/E.3**: the timer lemma (balls into bins).
//!
//! Claims: throwing `m` balls into `n` bins with `k` initially empty,
//! `Pr[≤ δk remain empty] < (2δem/n)^{δk}` (E.1); and a state with initial
//! count `k` keeps count > `k/81` through one unit of time except with
//! probability `≤ 2^{−k/81}` (E.3). Measured: survival statistics of the
//! worst-case consumption process against the bounds.
//!
//! Runs on the sweep registry (`timer_lemma` experiment): one trial
//! produces both the E.1 remaining-bin count (`k = m = n/2`) and the E.3
//! survivor count; trials fan out over the seeded worker pool and
//! `--journal PATH` makes runs resumable.

use pp_analysis::balls_bins::{corollary_e3_bound, expected_survival_fraction, lemma_e1_bound};
use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[1000, 10_000, 100_000], 300);
    let spec = args.sweep_spec("table_timer_lemma");
    println!(
        "Appendix E timer lemma (trials={})",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["timer_lemma"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    println!("\nLemma E.1: balls into bins (k = n/2 empty, m = n/2 balls, delta = 0.2)");
    let mut rows = Vec::new();
    for point in report.points_for("timer_lemma") {
        let n = point.n;
        let k = n / 2;
        let delta = 0.2;
        let remaining = point.values("e1_remaining");
        let hits = remaining.iter().filter(|&&r| r <= delta * k as f64).count();
        let min_remaining = remaining.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            n.to_string(),
            format!("{min_remaining}"),
            fmt(delta * k as f64),
            format!("{}/{}", hits, remaining.len()),
            format!("{:.1e}", lemma_e1_bound(n, k, k, delta)),
        ]);
    }
    print_table(
        &["n", "min_remaining", "delta*k", "event_hits", "E.1_bound"],
        &rows,
    );

    println!("\nCorollary E.3: worst-case consumption for time 1 (k = n/2)");
    let mut rows2 = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("timer_lemma") {
        let n = point.n;
        let k = n / 2;
        let survivors = point.values("e3_survivors");
        let hits = survivors.iter().filter(|&&s| s <= (k / 81) as f64).count();
        let fractions: Vec<f64> = survivors.iter().map(|&s| s / k as f64).collect();
        let sm = pp_analysis::stats::Summary::of(&fractions);
        rows2.push(vec![
            n.to_string(),
            fmt(sm.mean),
            fmt(expected_survival_fraction(1.0)),
            fmt(sm.min),
            format!("1/81={:.4}", 1.0 / 81.0),
            format!("{}/{}", hits, survivors.len()),
            format!("{:.1e}", corollary_e3_bound(k)),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", sm.mean),
            format!("{}", sm.min),
        ]);
    }
    print_table(
        &[
            "n",
            "mean_surv_frac",
            "e^{-2}",
            "min_surv_frac",
            "threshold",
            "event_hits",
            "E.3_bound",
        ],
        &rows2,
    );
    println!("\n(mean survival ~ e^-2 = 0.135 >> 1/81: the E.3 event never fires in simulation,");
    println!(" consistent with its 2^(-k/81) bound being astronomically small at these k)");
    write_csv(
        "table_timer_lemma",
        &["n", "mean_survival_fraction", "min_survival_fraction"],
        &csv,
    );
}
