//! **L E.1/E.3**: the timer lemma (balls into bins).
//!
//! Claims: throwing `m` balls into `n` bins with `k` initially empty,
//! `Pr[≤ δk remain empty] < (2δem/n)^{δk}` (E.1); and a state with initial
//! count `k` keeps count > `k/81` through one unit of time except with
//! probability `≤ 2^{−k/81}` (E.3). Measured: survival statistics of the
//! worst-case consumption process against the bounds.

use pp_analysis::balls_bins::{
    corollary_e3_bound, expected_survival_fraction, lemma_e1_bound, simulate_balls_bins,
    simulate_worst_case_consumption,
};
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_engine::rng::rng_from_seed;

fn main() {
    let args = HarnessArgs::parse(&[1000, 10_000, 100_000], 300);
    println!("Appendix E timer lemma (trials={})", args.trials);

    println!("\nLemma E.1: balls into bins (k = n/2 empty, m = n/2 balls, delta = 0.2)");
    let mut rows = Vec::new();
    for &n in &args.sizes {
        let k = n / 2;
        let m = n / 2;
        let delta = 0.2;
        let mut rng = rng_from_seed(args.seed ^ n);
        let mut hits = 0u64;
        let mut min_remaining = u64::MAX;
        for _ in 0..args.trials {
            let remaining = simulate_balls_bins(n, k, m, &mut rng);
            min_remaining = min_remaining.min(remaining);
            if remaining as f64 <= delta * k as f64 {
                hits += 1;
            }
        }
        rows.push(vec![
            n.to_string(),
            format!("{}", min_remaining),
            fmt(delta * k as f64),
            format!("{}/{}", hits, args.trials),
            format!("{:.1e}", lemma_e1_bound(n, k, m, delta)),
        ]);
    }
    print_table(
        &["n", "min_remaining", "delta*k", "event_hits", "E.1_bound"],
        &rows,
    );

    println!("\nCorollary E.3: worst-case consumption for time 1 (k = n/2)");
    let mut rows2 = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let k = n / 2;
        let mut rng = rng_from_seed(args.seed ^ n ^ 7);
        let mut survivals = Vec::new();
        let mut hits = 0u64;
        for _ in 0..args.trials {
            let s = simulate_worst_case_consumption(n, k, 1.0, &mut rng);
            if s <= k / 81 {
                hits += 1;
            }
            survivals.push(s as f64 / k as f64);
        }
        let sm = pp_analysis::stats::Summary::of(&survivals);
        rows2.push(vec![
            n.to_string(),
            fmt(sm.mean),
            fmt(expected_survival_fraction(1.0)),
            fmt(sm.min),
            format!("1/81={:.4}", 1.0 / 81.0),
            format!("{}/{}", hits, args.trials),
            format!("{:.1e}", corollary_e3_bound(k)),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", sm.mean),
            format!("{}", sm.min),
        ]);
    }
    print_table(
        &[
            "n",
            "mean_surv_frac",
            "e^{-2}",
            "min_surv_frac",
            "threshold",
            "event_hits",
            "E.3_bound",
        ],
        &rows2,
    );
    println!("\n(mean survival ~ e^-2 = 0.135 >> 1/81: the E.3 event never fires in simulation,");
    println!(" consistent with its 2^(-k/81) bound being astronomically small at these k)");
    write_csv(
        "table_timer_lemma",
        &["n", "mean_survival_fraction", "min_survival_fraction"],
        &csv,
    );
}
