//! Crash-recovery demo: checkpoint a run, kill it, resume it, and prove
//! the resumed trajectory is byte-identical to an uninterrupted one.
//!
//! ```text
//! resume_demo run <snapshot>      # fresh run, checkpointing to <snapshot>
//! resume_demo resume <snapshot>   # continue a killed run from <snapshot>
//! ```
//!
//! Both subcommands drive the same fixed scenario (an infection epidemic
//! on the adaptive count engine, `n = 2000`, seed 11, 60 units of
//! parallel time, then 5 more units past the budget so the digest is
//! sensitive to the RNG stream, not just the converged configuration)
//! and print one line:
//!
//! ```text
//! digest=8f3a2c91 interactions=130000
//! ```
//!
//! The CI smoke job runs `run` under `PP_FAULT=kill@60000` (the engine
//! aborts mid-run at the first checkpoint past 60 000 interactions,
//! modelling a SIGKILL), then `resume`, then an uninterrupted `run` into
//! a scratch snapshot, and asserts the two printed lines are identical.

use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::{crc32, Simulation};

const N: u64 = 2000;
const SEED: u64 = 11;
const MAX_TIME: f64 = 60.0;
const EXTRA_TIME: f64 = 5.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1).map(String::as_str), args.get(2)) {
        (Some(cmd @ ("run" | "resume")), Some(path)) => (cmd, path.clone()),
        _ => {
            eprintln!("usage: resume_demo <run|resume> <snapshot-path>");
            std::process::exit(1);
        }
    };

    let mut sim = match cmd {
        "run" => Simulation::count_builder(InfectionEpidemic)
            .config([(true, 1), (false, N - 1)])
            .seed(SEED)
            .max_time(MAX_TIME)
            .checkpoint_to(&path)
            .build(),
        _ => Simulation::count_builder(InfectionEpidemic)
            .max_time(MAX_TIME)
            .resume(&path)
            .unwrap_or_else(|e| {
                eprintln!("resume_demo: cannot resume from {path}: {e}");
                std::process::exit(1);
            }),
    };
    // Under PP_FAULT=kill@K the run aborts inside run() at the first
    // checkpoint with >= K interactions, right after writing the snapshot.
    sim.run();
    // Past-budget steps consume RNG with no checkpoints: the digest below
    // certifies the whole engine state survived the crash, RNG included.
    sim.run_for_time(EXTRA_TIME);
    println!(
        "digest={:08x} interactions={}",
        digest(&sim),
        sim.interactions()
    );
}

/// CRC-32 over the interaction clock, the time bits, and the sorted
/// final configuration.
fn digest(sim: &Simulation<bool>) -> u32 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&sim.interactions().to_le_bytes());
    buf.extend_from_slice(&sim.time().to_bits().to_le_bytes());
    let mut view = sim.view();
    view.sort();
    for (state, count) in view {
        buf.push(state as u8);
        buf.extend_from_slice(&count.to_le_bytes());
    }
    crc32(&buf)
}
