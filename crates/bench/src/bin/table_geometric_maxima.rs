//! **D.4/D.10**: maxima of geometric random variables and their averages.
//!
//! Claims: `log N + 1 < E[max of N geometrics] < log N + 3/2` (Lemma D.4);
//! the average of `K ≥ 4 log N` such maxima is within 4.7 of `log N` with
//! probability `≥ 1 − 2/N` (Corollary D.10); and the max is
//! `3.31`-`2`-sub-exponential (Corollary D.6).

use pp_analysis::geometric::{
    expected_max_geometric, expected_max_geometric_half_bracket, max_geometric_sample,
    GeometricMaxBounds,
};
use pp_analysis::subexp::{d10_min_k, delta0, D10_ADDITIVE_ERROR};
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_engine::rng::rng_from_seed;

fn main() {
    let args = HarnessArgs::parse(&[64, 1024, 65_536, 1_048_576], 50_000);
    println!(
        "Appendix D geometric maxima (Monte-Carlo samples per N = {})",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let mut rng = rng_from_seed(args.seed ^ n);
        let samples: Vec<f64> = (0..args.trials)
            .map(|_| max_geometric_sample(n, &mut rng) as f64)
            .collect();
        let s = pp_analysis::stats::Summary::of(&samples);
        let (lo, hi) = expected_max_geometric_half_bracket(n);
        let eis = expected_max_geometric(n, 0.5);
        // Corollary D.10: average K maxima, check the 4.7 band.
        let k = d10_min_k(n);
        let d10_trials = 2_000;
        let mut fails = 0;
        for _ in 0..d10_trials {
            let sum: u64 = (0..k).map(|_| max_geometric_sample(n, &mut rng)).sum();
            let avg = sum as f64 / k as f64;
            if (avg - (n as f64).log2()).abs() >= D10_ADDITIVE_ERROR {
                fails += 1;
            }
        }
        // Corollary D.6 at λ = 6.
        let lam = 6.0;
        let exceed = samples.iter().filter(|&&m| (m - eis).abs() >= lam).count();
        rows.push(vec![
            n.to_string(),
            fmt(s.mean),
            format!("({},{})", fmt(lo), fmt(hi)),
            fmt(eis),
            format!("{k}"),
            format!(
                "{:.4} (<= {:.4})",
                fails as f64 / d10_trials as f64,
                2.0 / n as f64
            ),
            format!(
                "{:.4} (<= {:.4})",
                exceed as f64 / samples.len() as f64,
                GeometricMaxBounds::new(n).concentration_bound(lam)
            ),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", s.mean),
            format!("{eis}"),
            format!("{}", fails as f64 / d10_trials as f64),
        ]);
    }
    print_table(
        &[
            "N",
            "mc_E[M]",
            "D.4_bracket",
            "Eisenberg",
            "K=4logN",
            "D.10_fail (bound)",
            "D.6_tail@6 (bound)",
        ],
        &rows,
    );
    println!(
        "\n(delta0 = {:.4}: the centering constant E[M] - log N)",
        delta0()
    );
    write_csv(
        "table_geometric_maxima",
        &["N", "mc_mean", "eisenberg", "d10_fail_rate"],
        &csv,
    );
}
