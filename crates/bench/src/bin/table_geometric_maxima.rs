//! **D.4/D.10**: maxima of geometric random variables and their averages.
//!
//! Claims: `log N + 1 < E[max of N geometrics] < log N + 3/2` (Lemma D.4);
//! the average of `K ≥ 4 log N` such maxima is within 4.7 of `log N` with
//! probability `≥ 1 − 2/N` (Corollary D.10); and the max is
//! `3.31`-`2`-sub-exponential (Corollary D.6).
//!
//! Runs on the sweep registry (`geometric_maxima` experiment): each trial
//! draws one max-of-N-geometrics sample plus one Corollary-D.10 average,
//! fanned out over the seeded worker pool (`--journal PATH` resumes).

use pp_analysis::geometric::{
    expected_max_geometric, expected_max_geometric_half_bracket, GeometricMaxBounds,
};
use pp_analysis::subexp::{d10_min_k, delta0, D10_ADDITIVE_ERROR};
use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[64, 1024, 65_536, 1_048_576], 20_000);
    let spec = args.sweep_spec("table_geometric_maxima");
    println!(
        "Appendix D geometric maxima (Monte-Carlo samples per N = {})",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["geometric_maxima"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("geometric_maxima") {
        let n = point.n;
        let samples = point.values("max");
        let s = pp_analysis::stats::Summary::of(&samples);
        let (lo, hi) = expected_max_geometric_half_bracket(n);
        let eis = expected_max_geometric(n, 0.5);
        // Corollary D.10: average of K = ⌈4 log N⌉ maxima, check the 4.7 band.
        let k = d10_min_k(n);
        let d10 = point.values("d10_avg");
        let fails = d10
            .iter()
            .filter(|&&avg| (avg - (n as f64).log2()).abs() >= D10_ADDITIVE_ERROR)
            .count();
        // Corollary D.6 at λ = 6.
        let lam = 6.0;
        let exceed = samples.iter().filter(|&&m| (m - eis).abs() >= lam).count();
        rows.push(vec![
            n.to_string(),
            fmt(s.mean),
            format!("({},{})", fmt(lo), fmt(hi)),
            fmt(eis),
            format!("{k}"),
            format!(
                "{:.4} (<= {:.4})",
                fails as f64 / d10.len() as f64,
                2.0 / n as f64
            ),
            format!(
                "{:.4} (<= {:.4})",
                exceed as f64 / samples.len() as f64,
                GeometricMaxBounds::new(n).concentration_bound(lam)
            ),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", s.mean),
            format!("{eis}"),
            format!("{}", fails as f64 / d10.len() as f64),
        ]);
    }
    print_table(
        &[
            "N",
            "mc_E[M]",
            "D.4_bracket",
            "Eisenberg",
            "K=4logN",
            "D.10_fail (bound)",
            "D.6_tail@6 (bound)",
        ],
        &rows,
    );
    println!(
        "\n(delta0 = {:.4}: the centering constant E[M] - log N)",
        delta0()
    );
    write_csv(
        "table_geometric_maxima",
        &["N", "mc_mean", "eisenberg", "d10_fail_rate"],
        &csv,
    );
}
