//! **T3.13**: terminating size estimation with an initial leader.
//!
//! Claim: with one leader, the protocol terminates w.h.p. *after* the
//! estimate has converged, in `O(log² n)` time overall, with the same
//! accuracy band. Measured: termination times, freeze times, accuracy and
//! agreement at the freeze.
//!
//! Runs as a `pp-sweep` grid over the `leader_termination` registry
//! experiment, resumable via `--journal`.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 8);
    let spec = args.sweep_spec("table_leader_termination");
    println!(
        "Theorem 3.13 leader-driven termination (trials={})",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["leader_termination"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let point = report.point("leader_termination", n);
        // `term_time` is NaN for trials whose signal never fired, so the
        // summary covers exactly the terminated runs.
        let st = point.summary("term_time");
        let sa = point.summary("agreement");
        rows.push(vec![
            n.to_string(),
            format!("{}/{}", point.count_true("terminated"), point.trials.len()),
            fmt(st.mean),
            fmt(st.mean / (n as f64).log2().powi(2)),
            format!("{}/{}", point.count_true("correct"), point.trials.len()),
            fmt(sa.mean),
        ]);
        for (trial, (time, output)) in point
            .raw_values("term_time")
            .into_iter()
            .zip(point.raw_values("output"))
            .enumerate()
        {
            csv.push(vec![
                n.to_string(),
                if time.is_nan() {
                    String::new()
                } else {
                    format!("{time}")
                },
                format!("{}", if output.is_nan() { 0 } else { output as u64 }),
                point.trials[trial].seed.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "terminated",
            "mean_term_time",
            "time/log^2 n",
            "correct(5.7)",
            "mean_agreement",
        ],
        &rows,
    );
    println!("\n(time/log^2 n should be ~constant: the termination clock is O(log^2 n);");
    println!(" contrast with the flat O(1) signal times of table_termination_impossibility)");
    write_csv(
        "table_leader_termination",
        &["n", "termination_time", "output", "seed"],
        &csv,
    );
}
