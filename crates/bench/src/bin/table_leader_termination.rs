//! **T3.13**: terminating size estimation with an initial leader.
//!
//! Claim: with one leader, the protocol terminates w.h.p. *after* the
//! estimate has converged, in `O(log² n)` time overall, with the same
//! accuracy band. Measured: termination times, freeze times, accuracy and
//! agreement at the freeze.

use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::leader::run_terminating;
use pp_engine::runner::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 8);
    println!(
        "Theorem 3.13 leader-driven termination (trials={})",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let outcomes = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            run_terminating(n as usize, seed, 1e8)
        });
        let terminated = outcomes.iter().filter(|o| o.value.terminated).count();
        let times: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.value.terminated)
            .map(|o| o.value.termination_time)
            .collect();
        let correct = outcomes
            .iter()
            .filter(|o| {
                o.value
                    .output
                    .map(|k| (k as f64 - (n as f64).log2()).abs() <= 5.7)
                    .unwrap_or(false)
            })
            .count();
        let agreement: Vec<f64> = outcomes.iter().map(|o| o.value.agreement).collect();
        let st = pp_analysis::stats::Summary::of(&times);
        let sa = pp_analysis::stats::Summary::of(&agreement);
        rows.push(vec![
            n.to_string(),
            format!("{}/{}", terminated, outcomes.len()),
            fmt(st.mean),
            fmt(st.mean / (n as f64).log2().powi(2)),
            format!("{}/{}", correct, outcomes.len()),
            fmt(sa.mean),
        ]);
        for o in &outcomes {
            csv.push(vec![
                n.to_string(),
                format!("{}", o.value.termination_time),
                format!("{:?}", o.value.output.unwrap_or(0)),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "terminated",
            "mean_term_time",
            "time/log^2 n",
            "correct(5.7)",
            "mean_agreement",
        ],
        &rows,
    );
    println!("\n(time/log^2 n should be ~constant: the termination clock is O(log^2 n);");
    println!(" contrast with the flat O(1) signal times of table_termination_impossibility)");
    write_csv(
        "table_leader_termination",
        &["n", "termination_time", "output"],
        &csv,
    );
}
