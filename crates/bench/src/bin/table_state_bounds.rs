//! **T3.1-states**: the `O(log⁴ n)` state bound of Lemma 3.9.
//!
//! Claim (w.p. ≥ 1 − O(log n)/n), fields stay in:
//! `logSize2 ≤ 2 log n + 1`, `gr ≤ 2 log n`, `time ≤ 191 log n`,
//! `epoch ≤ 11 log n`, `sum ≤ 22 log² n`; with space multiplexing the
//! number of states is `O(log⁴ n)`. This harness reports the observed
//! maxima and the implied state-count estimate.
//!
//! Runs as a `pp-sweep` grid over the registry's `state_bounds`
//! experiment, so trials fan out over `--threads` workers, `--journal`
//! makes the run resumable, and the same measurement is servable by
//! `pp-server`. The across-trial field maxima are folded back into a
//! `FieldMaxima` here, so the reported state estimate is computed from
//! the componentwise maxima (an upper bound on any single trial's).

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};
use pp_core::log_size::FieldMaxima;

fn main() {
    let args = HarnessArgs::parse(&[100, 1000, 10_000], 10);
    let spec = args.sweep_spec("table_state_bounds");
    println!(
        "Lemma 3.9 field ranges and O(log^4 n) state bound (trials={})",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["state_bounds"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let point = report.point("state_bounds", n);
        let field_max = |metric: &str| {
            point
                .values(metric)
                .into_iter()
                .fold(0.0f64, f64::max)
                .round() as u64
        };
        let max = FieldMaxima {
            log_size2: field_max("log_size2"),
            gr: field_max("gr"),
            time: field_max("time"),
            epoch: field_max("epoch"),
            sum: field_max("sum"),
        };
        let logn = (n as f64).log2();
        let states = max.state_count_estimate() as f64;
        let log4 = logn.powi(4);
        rows.push(vec![
            n.to_string(),
            format!("{} (<={})", max.log_size2, fmt(2.0 * logn + 1.0)),
            format!("{} (<={})", max.gr, fmt(2.0 * logn)),
            format!("{} (<={})", max.time, fmt(191.0 * logn)),
            format!("{} (<={})", max.epoch, fmt(11.0 * logn)),
            format!("{} (<={})", max.sum, fmt(22.0 * logn * logn)),
            format!("{:.2e} ({:.1}x log^4)", states, states / log4),
        ]);
        csv.push(vec![
            n.to_string(),
            max.log_size2.to_string(),
            max.gr.to_string(),
            max.time.to_string(),
            max.epoch.to_string(),
            max.sum.to_string(),
            format!("{states}"),
        ]);
    }
    print_table(
        &[
            "n",
            "logSize2",
            "gr",
            "time",
            "epoch",
            "sum",
            "state_estimate",
        ],
        &rows,
    );
    println!("\n(ranges in parentheses are Lemma 3.9's w.h.p. bounds; the state estimate");
    println!(" should grow ~log^4 n, i.e. the trailing multiplier stays roughly flat)");
    write_csv(
        "table_state_bounds",
        &["n", "logSize2", "gr", "time", "epoch", "sum", "states"],
        &csv,
    );
}
