//! **T3.1-states**: the `O(log⁴ n)` state bound of Lemma 3.9.
//!
//! Claim (w.p. ≥ 1 − O(log n)/n), fields stay in:
//! `logSize2 ≤ 2 log n + 1`, `gr ≤ 2 log n`, `time ≤ 191 log n`,
//! `epoch ≤ 11 log n`, `sum ≤ 22 log² n`; with space multiplexing the
//! number of states is `O(log⁴ n)`. This harness reports the observed
//! maxima and the implied state-count estimate.

use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::log_size::estimate_log_size;
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[100, 1000, 10_000], 10);
    println!(
        "Lemma 3.9 field ranges and O(log^4 n) state bound (trials={})",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let outcomes = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            estimate_log_size(n as usize, seed, None).maxima
        });
        let max = outcomes
            .iter()
            .fold(pp_core::log_size::FieldMaxima::default(), |mut acc, o| {
                acc.log_size2 = acc.log_size2.max(o.value.log_size2);
                acc.gr = acc.gr.max(o.value.gr);
                acc.time = acc.time.max(o.value.time);
                acc.epoch = acc.epoch.max(o.value.epoch);
                acc.sum = acc.sum.max(o.value.sum);
                acc
            });
        let logn = (n as f64).log2();
        let states = max.state_count_estimate() as f64;
        let log4 = logn.powi(4);
        rows.push(vec![
            n.to_string(),
            format!("{} (<={})", max.log_size2, fmt(2.0 * logn + 1.0)),
            format!("{} (<={})", max.gr, fmt(2.0 * logn)),
            format!("{} (<={})", max.time, fmt(191.0 * logn)),
            format!("{} (<={})", max.epoch, fmt(11.0 * logn)),
            format!("{} (<={})", max.sum, fmt(22.0 * logn * logn)),
            format!("{:.2e} ({:.1}x log^4)", states, states / log4),
        ]);
        csv.push(vec![
            n.to_string(),
            max.log_size2.to_string(),
            max.gr.to_string(),
            max.time.to_string(),
            max.epoch.to_string(),
            max.sum.to_string(),
            format!("{states}"),
        ]);
    }
    print_table(
        &[
            "n",
            "logSize2",
            "gr",
            "time",
            "epoch",
            "sum",
            "state_estimate",
        ],
        &rows,
    );
    println!("\n(ranges in parentheses are Lemma 3.9's w.h.p. bounds; the state estimate");
    println!(" should grow ~log^4 n, i.e. the trailing multiplier stays roughly flat)");
    write_csv(
        "table_state_bounds",
        &["n", "logSize2", "gr", "time", "epoch", "sum", "states"],
        &csv,
    );
}
