//! **Ablation**: how much slack do the paper's constants carry?
//!
//! The protocol hardwires two constants: the phase-clock multiplier 95
//! (Corollary 3.7: `65 ln n ≤ 94 log n` interactions per epidemic) and the
//! epoch multiplier 5 (Corollary A.4: `K ≥ 4 log n` samples for the D.10
//! averaging bound). This harness sweeps both and reports accuracy and
//! time: too-small clocks break epoch/epidemic synchronization (error
//! grows); too-small epoch counts break the averaging (variance grows);
//! larger values only cost time.
//!
//! Runs on the sweep registry (`ablation` experiment). The population is
//! fixed at `experiments::ABLATION_N`; the sweep's size axis carries the
//! `(clock, epochs)` pair encoded as `clock·100 + epochs`
//! (`experiments::ablation_code`), so `--sizes` takes encoded pairs and
//! `--journal PATH` makes runs resumable.

use pp_bench::experiments::{ablation_code, ablation_decode, ABLATION_N};
use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let grid: Vec<u64> = [
        (10u64, 5u64),
        (30, 5),
        (60, 5),
        (95, 5),
        (190, 5),
        (95, 1),
        (95, 2),
        (95, 3),
        (95, 10),
    ]
    .into_iter()
    .map(|(clock, epochs)| ablation_code(clock, epochs))
    .collect();
    let args = HarnessArgs::parse(&grid, 20);
    let spec = args.sweep_spec("table_ablation");
    println!(
        "Constant ablation at n={ABLATION_N} (trials={}): paper uses clock=95, epochs=5",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["ablation"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("ablation") {
        let (clock, epochs) = ablation_decode(point.n);
        let errors: Vec<f64> = point
            .values("err")
            .into_iter()
            .filter(|e| !e.is_nan())
            .collect();
        let times = point.values("time");
        let converged = point
            .values("converged")
            .iter()
            .filter(|&&c| c == 1.0)
            .count();
        let (mean_abs, max_abs) = if errors.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (
                errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64,
                errors.iter().fold(0.0f64, |a, e| a.max(e.abs())),
            )
        };
        let within = errors.iter().filter(|e| e.abs() <= 5.7).count();
        let ts = pp_analysis::stats::Summary::of(&times);
        rows.push(vec![
            clock.to_string(),
            epochs.to_string(),
            format!("{}/{}", converged, times.len()),
            fmt(mean_abs),
            fmt(max_abs),
            format!("{}/{}", within, errors.len().max(1)),
            fmt(ts.mean),
        ]);
        csv.push(vec![
            clock.to_string(),
            epochs.to_string(),
            format!("{mean_abs}"),
            format!("{}", ts.mean),
        ]);
    }
    print_table(
        &[
            "clock_mult",
            "epoch_mult",
            "converged",
            "mean_|err|",
            "max_|err|",
            "in_band",
            "mean_time",
        ],
        &rows,
    );
    println!("\n(the paper's 95/5 should sit on the accuracy plateau; small clock multipliers");
    println!(" let epochs lap the epidemics and should visibly degrade accuracy)");
    write_csv(
        "table_ablation",
        &["clock_mult", "epoch_mult", "mean_abs_err", "mean_time"],
        &csv,
    );
}
