//! **Ablation**: how much slack do the paper's constants carry?
//!
//! The protocol hardwires two constants: the phase-clock multiplier 95
//! (Corollary 3.7: `65 ln n ≤ 94 log n` interactions per epidemic) and the
//! epoch multiplier 5 (Corollary A.4: `K ≥ 4 log n` samples for the D.10
//! averaging bound). This harness sweeps both and reports accuracy and
//! time: too-small clocks break epoch/epidemic synchronization (error
//! grows); too-small epoch counts break the averaging (variance grows);
//! larger values only cost time.

use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::log_size::{estimate_with, LogSizeEstimation};
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[1000], 20);
    let n = args.sizes[0];
    println!(
        "Constant ablation at n={n} (trials={}): paper uses clock=95, epochs=5",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (clock, epochs) in [
        (10u64, 5u64),
        (30, 5),
        (60, 5),
        (95, 5),
        (190, 5),
        (95, 1),
        (95, 2),
        (95, 3),
        (95, 10),
    ] {
        let protocol = LogSizeEstimation::with_constants(clock, epochs, 2);
        let outcomes = run_trials_threaded(
            args.seed ^ clock ^ (epochs << 32),
            args.trials,
            args.threads,
            |_, seed| estimate_with(protocol, n as usize, seed, Some(1e7)),
        );
        let errors: Vec<f64> = outcomes.iter().filter_map(|o| o.value.error(n)).collect();
        let times: Vec<f64> = outcomes.iter().map(|o| o.value.time).collect();
        let converged = outcomes.iter().filter(|o| o.value.converged).count();
        let (mean_abs, max_abs) = if errors.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (
                errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64,
                errors.iter().fold(0.0f64, |a, e| a.max(e.abs())),
            )
        };
        let within = errors.iter().filter(|e| e.abs() <= 5.7).count();
        let ts = pp_analysis::stats::Summary::of(&times);
        rows.push(vec![
            clock.to_string(),
            epochs.to_string(),
            format!("{}/{}", converged, outcomes.len()),
            fmt(mean_abs),
            fmt(max_abs),
            format!("{}/{}", within, errors.len().max(1)),
            fmt(ts.mean),
        ]);
        csv.push(vec![
            clock.to_string(),
            epochs.to_string(),
            format!("{mean_abs}"),
            format!("{}", ts.mean),
        ]);
    }
    print_table(
        &[
            "clock_mult",
            "epoch_mult",
            "converged",
            "mean_|err|",
            "max_|err|",
            "in_band",
            "mean_time",
        ],
        &rows,
    );
    println!("\n(the paper's 95/5 should sit on the accuracy plateau; small clock multipliers");
    println!(" let epochs lap the epidemics and should visibly degrade accuracy)");
    write_csv(
        "table_ablation",
        &["clock_mult", "epoch_mult", "mean_abs_err", "mean_time"],
        &csv,
    );
}
