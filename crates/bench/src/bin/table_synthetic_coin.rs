//! **§B**: the synthetic-coin variant — same band, no random bits.
//!
//! Claims: with a deterministic transition function (all randomness from
//! the scheduler's receiver/sender choice), the protocol keeps the same
//! time and error behaviour, using `O(log⁶ n)` states (Lemma B.5).
//! Measured: per-agent output spread, error band, and convergence time
//! side by side with the randomized main protocol.
//!
//! Runs on the sweep registry (`synthetic_coin` experiment): each trial
//! runs the synthetic and the main protocol on disjoint seed streams,
//! fanned out over the seeded worker pool (`--journal PATH` resumes,
//! `--shard k/N` splits across machines).

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 10);
    let spec = args.sweep_spec("table_synthetic_coin");
    println!(
        "Appendix B synthetic-coin variant vs main protocol (trials={})",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["synthetic_coin"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("synthetic_coin") {
        let n = point.n;
        let logn = (n as f64).log2();
        let st = pp_analysis::stats::Summary::of(&point.values("synth_time"));
        let mt = pp_analysis::stats::Summary::of(&point.values("main_time"));
        // Per-trial (min, max) pairs: raw_values keeps trial order, and
        // the two output metrics are present or absent together.
        let mins = point.raw_values("min_output");
        let maxs = point.raw_values("max_output");
        let pairs: Vec<(f64, f64)> = mins
            .iter()
            .zip(&maxs)
            .filter(|(lo, hi)| !lo.is_nan() && !hi.is_nan())
            .map(|(&lo, &hi)| (lo, hi))
            .collect();
        let in_band = pairs
            .iter()
            .filter(|(lo, hi)| (lo - logn).abs() <= 6.7 && (hi - logn).abs() <= 6.7)
            .count();
        let max_spread = pairs
            .iter()
            .map(|(lo, hi)| (hi - lo) as u64)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            n.to_string(),
            fmt(st.mean),
            fmt(mt.mean),
            fmt(st.mean / mt.mean),
            format!("{}/{}", in_band, pairs.len()),
            max_spread.to_string(),
        ]);
        let times = point.raw_values("synth_time");
        for ((lo, hi), time) in mins.iter().zip(&maxs).zip(&times) {
            if lo.is_nan() || hi.is_nan() {
                continue;
            }
            csv.push(vec![
                n.to_string(),
                (*lo as u64).to_string(),
                (*hi as u64).to_string(),
                format!("{time}"),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "synth_time",
            "main_time",
            "ratio",
            "in_band",
            "max_spread",
        ],
        &rows,
    );
    println!("\n(ratio should be a small constant: coin harvesting costs one extra epidemic's");
    println!(" worth of time per geometric; outputs are per-agent, so a small spread is expected)");
    write_csv(
        "table_synthetic_coin",
        &["n", "min_output", "max_output", "time"],
        &csv,
    );
}
