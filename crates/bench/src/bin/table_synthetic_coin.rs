//! **§B**: the synthetic-coin variant — same band, no random bits.
//!
//! Claims: with a deterministic transition function (all randomness from
//! the scheduler's receiver/sender choice), the protocol keeps the same
//! time and error behaviour, using `O(log⁶ n)` states (Lemma B.5).
//! Measured: per-agent output spread, error band, and convergence time
//! side by side with the randomized main protocol.

use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::log_size::estimate_log_size;
use pp_core::synthetic::estimate_log_size_synthetic;
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[100, 300, 1000], 10);
    println!(
        "Appendix B synthetic-coin variant vs main protocol (trials={})",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let logn = (n as f64).log2();
        let synth = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            estimate_log_size_synthetic(n as usize, seed, 1e8)
        });
        let main = run_trials_threaded(args.seed ^ n ^ 5, args.trials, args.threads, |_, seed| {
            estimate_log_size(n as usize, seed, None)
        });
        let s_times: Vec<f64> = synth.iter().map(|o| o.value.time).collect();
        let m_times: Vec<f64> = main.iter().map(|o| o.value.time).collect();
        let s_in_band = synth
            .iter()
            .filter(|o| {
                (o.value.min_output as f64 - logn).abs() <= 6.7
                    && (o.value.max_output as f64 - logn).abs() <= 6.7
            })
            .count();
        let max_spread = synth
            .iter()
            .map(|o| o.value.max_output - o.value.min_output)
            .max()
            .unwrap_or(0);
        let st = pp_analysis::stats::Summary::of(&s_times);
        let mt = pp_analysis::stats::Summary::of(&m_times);
        rows.push(vec![
            n.to_string(),
            fmt(st.mean),
            fmt(mt.mean),
            fmt(st.mean / mt.mean),
            format!("{}/{}", s_in_band, synth.len()),
            max_spread.to_string(),
        ]);
        for o in &synth {
            csv.push(vec![
                n.to_string(),
                o.value.min_output.to_string(),
                o.value.max_output.to_string(),
                format!("{}", o.value.time),
            ]);
        }
    }
    print_table(
        &[
            "n",
            "synth_time",
            "main_time",
            "ratio",
            "in_band",
            "max_spread",
        ],
        &rows,
    );
    println!("\n(ratio should be a small constant: coin harvesting costs one extra epidemic's");
    println!(" worth of time per geometric; outputs are per-agent, so a small spread is expected)");
    write_csv(
        "table_synthetic_coin",
        &["n", "min_output", "max_output", "time"],
        &csv,
    );
}
