//! `pp-report`: renders telemetry artifacts into human-readable tables.
//!
//! ```text
//! pp-report <file.jsonl | job-dir> [...]
//! ```
//!
//! Accepts, in any mix:
//!
//! * **event traces** written via `PP_TRACE=path.jsonl` (or the builders'
//!   `.trace_to(path)`) — rendered as an event census, the final
//!   cumulative counter snapshot, and histogram summaries;
//! * **sweep trial journals** (version 2, the CRC-checked format) —
//!   rendered as a per-point trial census plus per-point counter
//!   aggregates from the optional `counters` field the runner records;
//! * **`pp-server` job directories** (`pp-report jobs/<id>`) — rendered
//!   as the job's identity and lifecycle history from `meta.jsonl`,
//!   followed by the job's trial journal.
//!
//! All the file formats share the same line discipline (one JSON document
//! per line, fixed-width CRC-32 suffix), so one verifying reader serves
//! them all; a file's kind is detected from its first line, and a
//! directory argument is treated as a job directory. Section headers
//! start with `== ` so CI can grep for expected sections.

use std::collections::BTreeMap;
use std::path::Path;

use pp_bench::{print_table, table_string};
use pp_sweep::json::{self, Value};

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        die("usage: pp-report <file.jsonl | job-dir> [...]\nrenders PP_TRACE event traces, sweep trial journals, and pp-server job directories as summary tables");
    }
    for (i, path) in files.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if Path::new(path).is_dir() {
            report_job_dir(path);
        } else {
            report_file(path);
        }
    }
}

/// Renders a `pp-server` job directory: the `meta.jsonl` identity and
/// lifecycle section, then the trial journal (when the job has one).
fn report_job_dir(path: &str) {
    let dir = Path::new(path);
    print!("{}", job_section(dir).unwrap_or_else(|e| die(&e)));
    let journal = dir.join("journal.jsonl");
    if journal.is_file() {
        report_file(journal.to_str().expect("utf-8 path"));
    } else {
        println!("(no journal yet — the job has not started)");
    }
}

/// The `== job` section of a job directory, rendered from `meta.jsonl`:
/// identity fields from the header line, then the recorded lifecycle
/// transitions in order.
fn job_section(dir: &Path) -> Result<String, String> {
    let meta = dir.join("meta.jsonl");
    let lines = pp_telemetry::read_trace(&meta)?;
    let mut docs = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        docs.push(
            json::parse(line).map_err(|e| format!("{}: line {}: {e}", meta.display(), i + 1))?,
        );
    }
    let Some(header) = docs
        .first()
        .filter(|d| d.get("event").and_then(Value::as_str) == Some("job"))
    else {
        return Err(format!("{}: no job header line", meta.display()));
    };
    let field = |name: &str| {
        header
            .get(name)
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let mut out = format!("== job {}\n", dir.display());
    let total = header.get("total").and_then(Value::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "  id {}  name {:?}  fingerprint {}  spec {}  total trials {}\n",
        field("id"),
        field("name"),
        field("fingerprint"),
        field("spec"),
        total
    ));
    out.push_str("== lifecycle\n");
    let rows: Vec<Vec<String>> = docs[1..]
        .iter()
        .filter(|d| d.get("event").and_then(Value::as_str) == Some("state"))
        .map(|d| {
            vec![
                d.get("state")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                d.get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or("-")
                    .to_string(),
            ]
        })
        .collect();
    out.push_str(&table_string(&["state", "detail"], &rows));
    Ok(out)
}

fn report_file(path: &str) {
    // Traces and v2 journals share the CRC'd-JSONL discipline, so the
    // trace reader verifies both (torn final lines dropped, earlier
    // corruption fatal).
    let lines = pp_telemetry::read_trace(path).unwrap_or_else(|e| die(&e));
    let docs: Vec<Value> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            json::parse(line).unwrap_or_else(|e| die(&format!("{path}: line {}: {e}", i + 1)))
        })
        .collect();
    if docs.is_empty() {
        die(&format!("{path}: empty file"));
    }
    if docs[0].get("sweep").is_some() {
        render_journal(path, &docs);
    } else if docs[0].get("ts_us").is_some() {
        render_trace(path, &docs);
    } else {
        die(&format!(
            "{path}: neither a trace (no \"ts_us\") nor a v2 sweep journal (no \"sweep\" header)"
        ));
    }
}

/// Renders a `PP_TRACE` event trace: event census, final counters, final
/// histogram summaries.
fn render_trace(path: &str, docs: &[Value]) {
    println!("== trace {path} ({} events)", docs.len());

    let mut census: BTreeMap<&str, u64> = BTreeMap::new();
    for doc in docs {
        let event = doc.get("event").and_then(Value::as_str).unwrap_or("?");
        *census.entry(event).or_default() += 1;
    }
    println!("== events");
    let rows: Vec<Vec<String>> = census
        .iter()
        .map(|(event, count)| vec![(*event).to_string(), count.to_string()])
        .collect();
    print_table(&["event", "count"], &rows);

    // The last `counters` line is the run's cumulative snapshot (the
    // driver emits one per driven phase; later lines subsume earlier
    // ones for the same registry).
    let Some(last) = docs
        .iter()
        .rev()
        .find(|d| d.get("event").and_then(Value::as_str) == Some("counters"))
    else {
        println!("(no counters event — was the run driven to completion?)");
        return;
    };
    println!("== counters (final)");
    let rows = obj_fields(last.get("counters"))
        .iter()
        .filter_map(|(name, v)| Some(vec![name.clone(), v.as_u64()?.to_string()]))
        .collect::<Vec<_>>();
    print_table(&["counter", "value"], &rows);

    let hists = obj_fields(last.get("hists"));
    if !hists.is_empty() {
        println!("== histograms (final)");
        let rows: Vec<Vec<String>> = hists
            .iter()
            .filter_map(|(name, h)| {
                let count = h.get("count")?.as_u64()?;
                let sum = h.get("sum")?.as_u64()?;
                let max = h.get("max")?.as_u64()?;
                let mean = if count > 0 {
                    format!("{:.1}", sum as f64 / count as f64)
                } else {
                    "-".into()
                };
                Some(vec![
                    name.clone(),
                    count.to_string(),
                    sum.to_string(),
                    mean,
                    max.to_string(),
                ])
            })
            .collect();
        print_table(&["histogram", "count", "sum", "mean", "max"], &rows);
    }
}

/// Renders a sweep journal: the trial census per grid point, then the
/// per-point aggregates of the optional per-trial counter snapshots.
fn render_journal(path: &str, docs: &[Value]) {
    let header = &docs[0];
    let sweep = header.get("sweep").and_then(Value::as_str).unwrap_or("?");
    println!(
        "== journal {path} (sweep {sweep:?}, {} entries)",
        docs.len() - 1
    );

    // Per (exp, n): trial/failure census and summed counters.
    #[derive(Default)]
    struct Acc {
        trials: u64,
        failed: u64,
        instrumented: u64,
        counters: BTreeMap<String, u64>,
    }
    let mut points: BTreeMap<(String, u64), Acc> = BTreeMap::new();
    for doc in &docs[1..] {
        let exp = doc
            .get("exp")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let n = doc.get("n").and_then(Value::as_u64).unwrap_or(0);
        let acc = points.entry((exp, n)).or_default();
        acc.trials += 1;
        if doc.get("failed").is_some() {
            acc.failed += 1;
            continue;
        }
        let counters = obj_fields(doc.get("counters"));
        if counters.is_empty() {
            continue;
        }
        acc.instrumented += 1;
        for (name, v) in counters {
            if let Some(v) = v.as_u64() {
                *acc.counters.entry(name).or_default() += v;
            }
        }
    }

    println!("== trials");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|((exp, n), acc)| {
            vec![
                exp.clone(),
                n.to_string(),
                acc.trials.to_string(),
                acc.failed.to_string(),
                acc.instrumented.to_string(),
            ]
        })
        .collect();
    print_table(
        &["experiment", "n", "trials", "failed", "with_counters"],
        &rows,
    );

    if points.values().all(|acc| acc.instrumented == 0) {
        println!("(no per-trial counters — pre-telemetry journal or PP_METRICS=off)");
        return;
    }
    println!("== counters");
    let mut rows = Vec::new();
    for ((exp, n), acc) in &points {
        if acc.instrumented == 0 {
            continue;
        }
        for (name, total) in &acc.counters {
            rows.push(vec![
                exp.clone(),
                n.to_string(),
                name.clone(),
                format!("{:.1}", *total as f64 / acc.instrumented as f64),
                total.to_string(),
            ]);
        }
        let hits = acc.counters.get("pair_cache_hits").copied().unwrap_or(0);
        let misses = acc.counters.get("pair_cache_misses").copied().unwrap_or(0);
        if hits + misses > 0 {
            rows.push(vec![
                exp.clone(),
                n.to_string(),
                "pair_cache_hit_rate".into(),
                format!("{:.3}", hits as f64 / (hits + misses) as f64),
                "-".into(),
            ]);
        }
    }
    print_table(&["experiment", "n", "counter", "mean", "total"], &rows);
}

/// The fields of a JSON object value (empty for anything else).
fn obj_fields(value: Option<&Value>) -> Vec<(String, Value)> {
    match value {
        Some(Value::Obj(fields)) => fields.clone(),
        _ => Vec::new(),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("pp-report: {msg}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    /// Appends one meta line with the store's CRC splice, building a
    /// fixture job directory without depending on the server crate.
    fn append_meta_line(dir: &Path, mut line: String) {
        let crc = pp_telemetry::crc32(line.as_bytes());
        line.pop();
        line.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("meta.jsonl"))
            .unwrap();
        writeln!(file, "{line}").unwrap();
    }

    #[test]
    fn job_section_renders_identity_and_lifecycle() {
        let dir =
            std::env::temp_dir().join(format!("pp_report_job_fixture_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        append_meta_line(
            &dir,
            "{\"event\":\"job\",\"id\":\"000001-00000000deadbeef\",\"seq\":1,\
             \"name\":\"fixture\",\"fingerprint\":\"00000000deadbeef\",\
             \"spec\":\"spec.toml\",\"total\":8}"
                .to_string(),
        );
        append_meta_line(
            &dir,
            "{\"event\":\"state\",\"state\":\"queued\"}".to_string(),
        );
        append_meta_line(
            &dir,
            "{\"event\":\"state\",\"state\":\"running\"}".to_string(),
        );
        append_meta_line(
            &dir,
            "{\"event\":\"state\",\"state\":\"failed\",\"detail\":\"boom\"}".to_string(),
        );

        let section = job_section(&dir).unwrap();
        assert!(section.starts_with("== job "), "{section}");
        assert!(section.contains("id 000001-00000000deadbeef"), "{section}");
        assert!(
            section.contains("fingerprint 00000000deadbeef"),
            "{section}"
        );
        assert!(section.contains("total trials 8"), "{section}");
        assert!(section.contains("== lifecycle"), "{section}");
        // Lifecycle rows render in recorded order, with details.
        let queued = section.find("queued").unwrap();
        let running = section.find("running").unwrap();
        let failed = section.find("failed").unwrap();
        assert!(queued < running && running < failed, "{section}");
        assert!(section.contains("boom"), "{section}");

        // A torn final line falls back to the previous transitions.
        let path = dir.join("meta.jsonl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let section = job_section(&dir).unwrap();
        assert!(!section.contains("failed"), "{section}");
        assert!(section.contains("running"), "{section}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_meta_is_a_readable_error() {
        let dir =
            std::env::temp_dir().join(format!("pp_report_empty_fixture_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = job_section(&dir).unwrap_err();
        assert!(err.contains("meta.jsonl"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
