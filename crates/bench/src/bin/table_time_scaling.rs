//! **T3.1-time**: the `O(log² n)` convergence-time scaling (Corollary 3.10).
//!
//! Fits measured mean convergence times to `t = a + b·log n` and
//! `t = a + b·log² n`; the quadratic model should dominate, and the
//! harness also reports Corollary 3.10's explicit budget
//! `(11 log n + 1)·24 ln n` for comparison (the proof's constant is loose
//! by design — measured times sit far below it).
//!
//! Runs as a `pp-sweep` grid over the `logsize_estimate` registry
//! experiment, resumable via `--journal`.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 200, 400, 800, 1600, 3200, 6400], 8);
    let spec = args.sweep_spec("table_time_scaling");
    println!(
        "Corollary 3.10 time scaling (trials={}): converges in O(log^2 n) w.p. >= 1 - 1/n^2",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["logsize_estimate"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut means = Vec::new();
    for &n in &args.sizes {
        let s = report.point("logsize_estimate", n).summary("time");
        let budget = pp_analysis::subexp::corollary_3_10_time_budget(n);
        means.push((n, s.mean));
        rows.push(vec![
            n.to_string(),
            fmt(s.mean),
            fmt(s.stddev),
            fmt(s.mean / (n as f64).log2().powi(2)),
            fmt(budget),
        ]);
    }
    print_table(
        &["n", "mean_time", "sd", "time/log^2(n)", "C3.10_budget"],
        &rows,
    );
    let (lin, quad) = pp_analysis::fit::compare_scaling_models(&means);
    println!(
        "\nfit t ~ a + b*log n:   b = {:.1}, R^2 = {:.5}",
        lin.slope, lin.r_squared
    );
    println!(
        "fit t ~ a + b*log^2 n: b = {:.2}, R^2 = {:.5}",
        quad.slope, quad.r_squared
    );
    println!(
        "verdict: {} (time/log^2 column should be ~constant)",
        if quad.r_squared >= lin.r_squared {
            "quadratic-in-log model preferred, matching the paper"
        } else {
            "UNEXPECTED: linear-in-log model fit better"
        }
    );
    let csv: Vec<Vec<String>> = means
        .iter()
        .map(|&(n, t)| vec![n.to_string(), format!("{t}")])
        .collect();
    write_csv("table_time_scaling", &["n", "mean_time"], &csv);
}
