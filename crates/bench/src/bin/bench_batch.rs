//! `BENCH_batch.json` emitter: sequential vs batched simulator throughput.
//!
//! Two protocols at `n ∈ {10⁴, 10⁶, 10⁷}`, both engines seeded identically:
//!
//! * **`epidemic`** — the one-way infection epidemic (deterministic, two
//!   states): the batched engine's best case and the historical baseline.
//! * **`weak_estimator`** — the Alistarh et al. max-geometric estimator, a
//!   *randomized* paper protocol: each agent's first interaction draws a
//!   geometric (unbounded support → per-interaction sampling inside the
//!   batch), after which every pair is a deterministic max-merge that the
//!   law table bulk-applies, and the converged tail is skipped by the
//!   null-skip mode. This row is the acceptance check that randomized
//!   protocols now reach batched speed.
//!
//! Two workloads per protocol:
//!
//! * **`fixed_time`** (primary): simulate exactly `8·ln n` parallel time —
//!   the paper's `Θ(log n)`-time experiment shape (both protocols converge
//!   w.h.p. well within it, so the workload includes the converged tail
//!   that null skipping accelerates). Both engines execute exactly
//!   `⌈8 n ln n⌉` interactions.
//! * **`completion`**: run until the protocol's convergence predicate
//!   holds (every agent infected / all agents agree on the settled max).
//!
//! Interactions per second and the batched/sequential speedup are recorded
//! per workload so future PRs have a perf trajectory. Results land in
//! `BENCH_batch.json` in the current directory.
//!
//! Usage: `cargo run --release --bin bench_batch [-- --quick]`
//! (`--quick` drops `n = 10⁷`, whose sequential fixed-time runs take ~10 s
//! each).

use std::fmt::Write as _;
use std::time::Instant;

use pp_baselines::alistarh::{WeakEstimator, WeakState};
use pp_engine::batch::BatchedCountSim;
use pp_engine::count_sim::{CountConfiguration, CountProtocol, CountSim};
use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::rng::derive_seed;

struct Measurement {
    trials: u64,
    interactions: u64,
    seconds: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.interactions as f64 / self.seconds
    }
}

/// One benchmarkable protocol: initial configuration plus completion
/// predicate.
trait Workload: CountProtocol + Copy {
    fn config(n: u64) -> CountConfiguration<Self::State>;
    fn complete(c: &CountConfiguration<Self::State>, n: u64) -> bool;
}

impl Workload for InfectionEpidemic {
    fn config(n: u64) -> CountConfiguration<bool> {
        CountConfiguration::from_pairs([(false, n - 1), (true, 1)])
    }

    fn complete(c: &CountConfiguration<bool>, n: u64) -> bool {
        c.count(&true) == n
    }
}

impl Workload for WeakEstimator {
    fn config(n: u64) -> CountConfiguration<WeakState> {
        CountConfiguration::uniform(WeakState::initial(), n)
    }

    fn complete(c: &CountConfiguration<WeakState>, _n: u64) -> bool {
        WeakEstimator::agreed(c)
    }
}

/// Runs `trials` runs of `P` on the chosen engine; `fixed_time` selects the
/// `8 ln n`-parallel-time workload, otherwise run-to-completion.
fn run<P: Workload + Default>(
    n: u64,
    trials: u64,
    batched: bool,
    fixed_time: bool,
    base_seed: u64,
) -> Measurement {
    let sim_time = 8.0 * (n as f64).ln();
    let start = Instant::now();
    let mut interactions = 0;
    for t in 0..trials {
        let seed = derive_seed(base_seed, t);
        let done = if batched {
            let mut sim = BatchedCountSim::new(P::default(), P::config(n), seed);
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| P::complete(c, n), (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        } else {
            let mut sim = CountSim::new(P::default(), P::config(n), seed);
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| P::complete(c, n), (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        };
        interactions += done;
    }
    Measurement {
        trials,
        interactions,
        seconds: start.elapsed().as_secs_f64(),
    }
}

struct Row {
    protocol: &'static str,
    n: u64,
    workload: &'static str,
    seq: Measurement,
    bat: Measurement,
}

fn bench_protocol<P: Workload + Default>(
    name: &'static str,
    sizes: &[(u64, u64, u64)],
    rows: &mut Vec<Row>,
) {
    for &(n, seq_trials, batch_trials) in sizes {
        for (workload, fixed_time) in [("fixed_time", true), ("completion", false)] {
            let seq = run::<P>(n, seq_trials, false, fixed_time, 0xB0BA);
            let bat = run::<P>(n, batch_trials, true, fixed_time, 0xB0BA);
            eprintln!(
                "{name:>14} n = {:>9} {:>11}: sequential {:>12.0} int/s ({:.3}s) | batched {:>13.0} int/s ({:.3}s) | speedup {:.1}x",
                n,
                workload,
                seq.rate(),
                seq.seconds,
                bat.rate(),
                bat.seconds,
                bat.rate() / seq.rate()
            );
            rows.push(Row {
                protocol: name,
                n,
                workload,
                seq,
                bat,
            });
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (n, sequential trials, batched trials)
    let sizes: &[(u64, u64, u64)] = if quick {
        &[(10_000, 20, 200), (1_000_000, 2, 100)]
    } else {
        &[(10_000, 50, 400), (1_000_000, 3, 200), (10_000_000, 1, 40)]
    };
    let weak_sizes: &[(u64, u64, u64)] = if quick {
        &[(10_000, 20, 50), (1_000_000, 2, 10)]
    } else {
        &[(10_000, 50, 100), (1_000_000, 3, 20), (10_000_000, 1, 5)]
    };

    let mut rows = Vec::new();
    bench_protocol::<InfectionEpidemic>("epidemic", sizes, &mut rows);
    bench_protocol::<WeakEstimator>("weak_estimator", weak_sizes, &mut rows);

    let mut json = String::from(
        "{\n  \"benchmark\": \"sequential_vs_batched\",\n  \"unit\": \"interactions_per_second\",\n  \
         \"primary_workload\": \"fixed_time\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"protocol\": \"{}\", \"n\": {}, \"workload\": \"{}\", \"sequential\": {:.1}, \
             \"batched\": {:.1}, \"speedup\": {:.2}, \"sequential_trials\": {}, \
             \"batched_trials\": {}}}",
            row.protocol,
            row.n,
            row.workload,
            row.seq.rate(),
            row.bat.rate(),
            row.bat.rate() / row.seq.rate(),
            row.seq.trials,
            row.bat.trials
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("{json}");
}
