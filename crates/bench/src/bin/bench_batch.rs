//! `BENCH_batch.json` emitter: sequential vs batched simulator throughput.
//!
//! Two one-way-epidemic workloads at `n ∈ {10⁴, 10⁶, 10⁷}`, single infected
//! source, both engines seeded identically:
//!
//! * **`fixed_time`** (primary): simulate exactly `8·ln n` parallel time —
//!   the paper's `Θ(log n)`-time experiment shape (the epidemic completes
//!   w.h.p. within it; Lemma A.1 gives `Pr[T > a ln n] < 4n^{-a/4+1}`).
//!   Both engines execute exactly `⌈8 n ln n⌉` interactions.
//! * **`completion`**: run until every agent is infected (no silent phase).
//!
//! Interactions per second and the batched/sequential speedup are recorded
//! per workload so future PRs have a perf trajectory. Results land in
//! `BENCH_batch.json` in the current directory.
//!
//! Usage: `cargo run --release --bin bench_batch [-- --quick]`
//! (`--quick` drops `n = 10⁷`, whose sequential fixed-time run takes ~10 s).

use std::fmt::Write as _;
use std::time::Instant;

use pp_engine::batch::BatchedCountSim;
use pp_engine::count_sim::{CountConfiguration, CountSim};
use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::rng::derive_seed;

struct Measurement {
    trials: u64,
    interactions: u64,
    seconds: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.interactions as f64 / self.seconds
    }
}

fn epidemic_config(n: u64) -> CountConfiguration<bool> {
    CountConfiguration::from_pairs([(false, n - 1), (true, 1)])
}

/// Runs `trials` epidemics on the chosen engine; `fixed_time` selects the
/// `8 ln n`-parallel-time workload, otherwise run-to-completion.
fn run(n: u64, trials: u64, batched: bool, fixed_time: bool, base_seed: u64) -> Measurement {
    let sim_time = 8.0 * (n as f64).ln();
    let start = Instant::now();
    let mut interactions = 0;
    for t in 0..trials {
        let seed = derive_seed(base_seed, t);
        let done = if batched {
            let mut sim = BatchedCountSim::new(InfectionEpidemic, epidemic_config(n), seed);
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| c.count(&true) == n, (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        } else {
            let mut sim = CountSim::new(InfectionEpidemic, epidemic_config(n), seed);
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| c.count(&true) == n, (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        };
        interactions += done;
    }
    Measurement {
        trials,
        interactions,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (n, sequential trials, batched trials)
    let sizes: &[(u64, u64, u64)] = if quick {
        &[(10_000, 20, 200), (1_000_000, 2, 100)]
    } else {
        &[(10_000, 50, 400), (1_000_000, 3, 200), (10_000_000, 1, 40)]
    };

    let mut rows = Vec::new();
    for &(n, seq_trials, batch_trials) in sizes {
        for (workload, fixed_time) in [("fixed_time", true), ("completion", false)] {
            let seq = run(n, seq_trials, false, fixed_time, 0xB0BA);
            let bat = run(n, batch_trials, true, fixed_time, 0xB0BA);
            eprintln!(
                "n = {:>9} {:>11}: sequential {:>12.0} int/s ({:.3}s) | batched {:>13.0} int/s ({:.3}s) | speedup {:.1}x",
                n,
                workload,
                seq.rate(),
                seq.seconds,
                bat.rate(),
                bat.seconds,
                bat.rate() / seq.rate()
            );
            rows.push((n, workload, seq, bat));
        }
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"one_way_epidemic\",\n  \"unit\": \"interactions_per_second\",\n  \
         \"primary_workload\": \"fixed_time\",\n  \"results\": [\n",
    );
    for (i, (n, workload, seq, bat)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"workload\": \"{}\", \"sequential\": {:.1}, \"batched\": {:.1}, \
             \"speedup\": {:.2}, \"sequential_trials\": {}, \"batched_trials\": {}}}",
            n,
            workload,
            seq.rate(),
            bat.rate(),
            bat.rate() / seq.rate(),
            seq.trials,
            bat.trials
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("{json}");
}
