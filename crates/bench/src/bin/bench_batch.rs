//! `BENCH_batch.json` emitter: sequential vs batched simulator throughput.
//!
//! Two protocols at `n ∈ {10⁴, 10⁶, 10⁷}`, both engines seeded identically:
//!
//! * **`epidemic`** — the one-way infection epidemic (deterministic, two
//!   states): the batched engine's best case and the historical baseline.
//! * **`weak_estimator`** — the Alistarh et al. max-geometric estimator, a
//!   *randomized* paper protocol: each agent's first interaction draws a
//!   geometric (unbounded support → per-interaction sampling inside the
//!   batch), after which every pair is a deterministic max-merge that the
//!   law table bulk-applies, and the converged tail is skipped by the
//!   null-skip mode. This row is the acceptance check that randomized
//!   protocols now reach batched speed.
//!
//! Two further rows cover the *interned* count engine on the paper's
//! counter-churning record protocols, the path interner GC unlocked as
//! the default:
//!
//! * **`logsize_estimation`** / **`leader_terminating`** — fixed parallel
//!   time on `Log-Size-Estimation` and the Theorem 3.13 terminating
//!   variant, at `n = 2000` (the paper-scale regime) and `n = 50000`
//!   (the agent state array falls out of L2). For these rows the
//!   "sequential" column is the **per-agent engine** (the machine
//!   normalizer — both engines run in the same process) and the
//!   "batched" column is the interned `ConfigSim` under
//!   `EngineMode::Auto` with GC on. Once the occupied support crosses
//!   the dense-lane floor, the count engine runs these churners through
//!   the per-agent lane — the agent simulator's exact interaction loop
//!   bracketed by an `O(n)` expand/collapse — so the gated ratio sits
//!   near 1 instead of the ~0.14 the pre-lane intern-per-interaction
//!   path managed, and a regression in the lane, the slot index, or the
//!   GC'd count path trips the gate.
//!
//! Two workloads per protocol:
//!
//! * **`fixed_time`** (primary): simulate exactly `8·ln n` parallel time —
//!   the paper's `Θ(log n)`-time experiment shape (both protocols converge
//!   w.h.p. well within it, so the workload includes the converged tail
//!   that null skipping accelerates). Both engines execute exactly
//!   `⌈8 n ln n⌉` interactions.
//! * **`completion`**: run until the protocol's convergence predicate
//!   holds (every agent infected / all agents agree on the settled max).
//!
//! Interactions per second and the batched/sequential speedup are recorded
//! per workload so future PRs have a perf trajectory. Results land in
//! `BENCH_batch.json` in the current directory.
//!
//! Usage: `cargo run --release --bin bench_batch [-- --quick] [--huge] [--gate BASELINE.json]`
//! (`--quick` drops `n = 10⁷`, whose sequential fixed-time runs take ~10 s
//! each).
//!
//! `--huge` adds two `n = 10⁸` rows — `epidemic_par_fill` and
//! `weak_estimator_par_fill` — comparing the batched engine's classic
//! serial batch fill against the fixed-partition parallel fill
//! (`PP_THREADS`-style, here set programmatically to 4 workers). Both
//! columns are the batched engine (a per-agent run at this size would
//! take hours), so the row's "speedup" is the fill-parallelization
//! factor alone. The rows are opt-in because one trial executes
//! `⌈8 n ln n⌉ ≈ 1.5·10¹¹` interactions, and they are honest about
//! hardware: on a single-core machine the scoped workers clamp to inline
//! execution, so the expected ratio is ≈ 1 and the row exercises the
//! discipline (partition, per-subrange streams, merge), not the fan-out.
//! The epidemic row is a deliberate degenerate case — one reactive row,
//! so the fill stays serial by eligibility and `parallel_fills` is 0;
//! it pins the knob's overhead on ineligible protocols at zero. The
//! weak-estimator row engages the parallel discipline once every agent
//! is past its geometric first interaction (check its `parallel_fills`
//! counter). Neither row is in the committed baseline, so `--gate`
//! ignores them until a baseline recorded with `--huge` lands.
//!
//! `--gate BASELINE.json` turns the run into a **regression gate**: every
//! measured row whose `(protocol, n, workload)` appears in the baseline
//! file must reach at least 70% of the baseline's batched/sequential
//! *speedup*, or the process exits 1 listing the offenders. The speedup is
//! the batched throughput in machine-normalized units — both engines run
//! in the same process, so the ratio cancels raw hardware speed and the
//! gate stays stable on shared CI runners that are faster or slower than
//! the machine that committed the baseline, while still catching any
//! real batched-engine throughput regression beyond 30%. CI runs
//! `bench_batch --quick --gate BENCH_batch.json` on every push, so such a
//! drop fails the job instead of slipping by as an "informational" number.
//! In gate mode the fresh measurements are written to
//! `BENCH_batch.latest.json`, leaving the committed baseline untouched
//! (refresh it by re-running without `--gate`).

use std::fmt::Write as _;
use std::time::Instant;

use pp_baselines::alistarh::{WeakEstimator, WeakState};
use pp_core::leader::{LeaderState, LeaderTerminating};
use pp_core::log_size::LogSizeEstimation;
use pp_engine::batch::BatchedCountSim;
use pp_engine::count_sim::{CountConfiguration, CountProtocol, CountSim};
use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::rng::derive_seed;
use pp_engine::{EngineMode, Metrics, Protocol, SimMode, Simulation};

struct Measurement {
    trials: u64,
    interactions: u64,
    seconds: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.interactions as f64 / self.seconds
    }
}

/// One benchmarkable protocol: initial configuration plus completion
/// predicate.
trait Workload: CountProtocol + Copy {
    fn config(n: u64) -> CountConfiguration<Self::State>;
    fn complete(c: &CountConfiguration<Self::State>, n: u64) -> bool;
}

impl Workload for InfectionEpidemic {
    fn config(n: u64) -> CountConfiguration<bool> {
        CountConfiguration::from_pairs([(false, n - 1), (true, 1)])
    }

    fn complete(c: &CountConfiguration<bool>, n: u64) -> bool {
        c.count(&true) == n
    }
}

impl Workload for WeakEstimator {
    fn config(n: u64) -> CountConfiguration<WeakState> {
        CountConfiguration::uniform(WeakState::initial(), n)
    }

    fn complete(c: &CountConfiguration<WeakState>, _n: u64) -> bool {
        WeakEstimator::agreed(c)
    }
}

/// Runs `trials` runs of `P` on the chosen engine; `fixed_time` selects the
/// `8 ln n`-parallel-time workload, otherwise run-to-completion. The
/// batched engine records into `metrics` (hooks are observation-only, so
/// the gated throughput is measured with telemetry attached — exactly how
/// production runs execute).
fn run<P: Workload + Default>(
    n: u64,
    trials: u64,
    batched: bool,
    fixed_time: bool,
    base_seed: u64,
    metrics: &Metrics,
) -> Measurement {
    let sim_time = 8.0 * (n as f64).ln();
    let start = Instant::now();
    let mut interactions = 0;
    for t in 0..trials {
        let seed = derive_seed(base_seed, t);
        let done = if batched {
            let mut sim = BatchedCountSim::new(P::default(), P::config(n), seed);
            sim.set_metrics(metrics.clone());
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| P::complete(c, n), (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        } else {
            let mut sim = CountSim::new(P::default(), P::config(n), seed);
            if fixed_time {
                sim.run_for_time(sim_time);
            } else {
                let out = sim.run_until(|c| P::complete(c, n), (n / 8).max(1), f64::MAX);
                assert!(out.converged);
            }
            sim.interactions()
        };
        interactions += done;
    }
    Measurement {
        trials,
        interactions,
        seconds: start.elapsed().as_secs_f64(),
    }
}

struct Row {
    protocol: &'static str,
    n: u64,
    workload: &'static str,
    seq: Measurement,
    bat: Measurement,
    /// Nonzero telemetry counters accumulated over the batched/counted
    /// engine's trials of this row (the machine-normalizer engine runs
    /// uninstrumented).
    counters: Vec<(&'static str, u64)>,
}

fn bench_protocol<P: Workload + Default>(
    name: &'static str,
    sizes: &[(u64, u64, u64)],
    rows: &mut Vec<Row>,
) {
    for &(n, seq_trials, batch_trials) in sizes {
        for (workload, fixed_time) in [("fixed_time", true), ("completion", false)] {
            let metrics = Metrics::new();
            let seq = run::<P>(n, seq_trials, false, fixed_time, 0xB0BA, &metrics);
            let bat = run::<P>(n, batch_trials, true, fixed_time, 0xB0BA, &metrics);
            eprintln!(
                "{name:>14} n = {:>9} {:>11}: sequential {:>12.0} int/s ({:.3}s) | batched {:>13.0} int/s ({:.3}s) | speedup {:.1}x",
                n,
                workload,
                seq.rate(),
                seq.seconds,
                bat.rate(),
                bat.seconds,
                bat.rate() / seq.rate()
            );
            rows.push(Row {
                protocol: name,
                n,
                workload,
                seq,
                bat,
                counters: metrics.nonzero_counters(),
            });
        }
    }
}

/// Agent-engine vs interned-count-engine throughput for one of the
/// paper's counter-churning record protocols, at a fixed parallel time.
/// The agent engine fills the row's "sequential" slot as the machine
/// normalizer; the interned `ConfigSim` (`EngineMode::Auto`, interner GC
/// on — the default every `estimate_log_size` / `run_terminating` call
/// takes) fills "batched". See the module docs for why the gate watches
/// this ratio.
fn bench_interned<P: Protocol + Clone>(
    name: &'static str,
    protocol: P,
    planted: Option<P::State>,
    n: u64,
    sim_time: f64,
    trials: u64,
    rows: &mut Vec<Row>,
) where
    P::State: Eq + std::hash::Hash + Clone,
{
    let metrics = Metrics::new();
    let measure = |agent: bool| -> Measurement {
        let start = Instant::now();
        let mut interactions = 0;
        for t in 0..trials {
            let mode = if agent {
                SimMode::Agent
            } else {
                EngineMode::Auto.into()
            };
            let mut builder = Simulation::builder(protocol.clone())
                .size(n)
                .seed(derive_seed(0xB0BB, t))
                .mode(mode);
            if !agent {
                // Only the gated (counted) engine records: the agent
                // engine is the machine normalizer, and the row's
                // counters should describe the engine under test.
                builder = builder.metrics(&metrics);
            }
            if let Some(state) = planted.clone() {
                builder = builder.init_planted([(state, 1)]);
            }
            let mut sim = builder.build();
            sim.run_for_time(sim_time);
            interactions += sim.interactions();
        }
        Measurement {
            trials,
            interactions,
            seconds: start.elapsed().as_secs_f64(),
        }
    };
    let seq = measure(true);
    let bat = measure(false);
    eprintln!(
        "{name:>18} n = {n:>9}  fixed_time: agent {:>12.0} int/s ({:.3}s) | counted {:>13.0} int/s ({:.3}s) | ratio {:.2}x",
        seq.rate(),
        seq.seconds,
        bat.rate(),
        bat.seconds,
        bat.rate() / seq.rate()
    );
    rows.push(Row {
        protocol: name,
        n,
        workload: "fixed_time",
        seq,
        bat,
        counters: metrics.nonzero_counters(),
    });
}

/// Serial-fill vs parallel-fill batched throughput at one huge size (the
/// dense regime the fixed-partition fill targets). The "sequential"
/// column is the classic serial batch fill and the "batched" column the
/// parallel-fill discipline at 4 workers, so the speedup is the
/// fill-parallelization factor with the rest of the engine cancelled.
/// One trial per column: at `n = 10⁸` a fixed-time run is ~1.5·10¹¹
/// interactions and the batch law makes per-trial variance negligible.
fn bench_parallel_fill<P: Workload + Default>(name: &'static str, n: u64, rows: &mut Vec<Row>) {
    let sim_time = 8.0 * (n as f64).ln();
    let metrics = Metrics::new();
    let measure = |fill_threads: Option<u64>| -> Measurement {
        let start = Instant::now();
        let mut sim = BatchedCountSim::new(P::default(), P::config(n), 0xB0BC);
        if let Some(k) = fill_threads {
            sim.set_fill_threads(k);
            // Only the engine under test records, as in every other row.
            sim.set_metrics(metrics.clone());
        }
        sim.run_for_time(sim_time);
        Measurement {
            trials: 1,
            interactions: sim.interactions(),
            seconds: start.elapsed().as_secs_f64(),
        }
    };
    let seq = measure(None);
    let bat = measure(Some(4));
    eprintln!(
        "{name:>22} n = {n:>9}  fixed_time: serial fill {:>12.0} int/s ({:.3}s) | parallel fill {:>13.0} int/s ({:.3}s) | ratio {:.2}x",
        seq.rate(),
        seq.seconds,
        bat.rate(),
        bat.seconds,
        bat.rate() / seq.rate()
    );
    rows.push(Row {
        protocol: name,
        n,
        workload: "fixed_time",
        seq,
        bat,
        counters: metrics.nonzero_counters(),
    });
}

/// Maximum tolerated drop in machine-normalized batched throughput
/// (the batched/sequential speedup) vs the baseline (30%).
const GATE_TOLERANCE: f64 = 0.30;

/// One `(protocol, n, workload)` row of a baseline file: the batched rate
/// (informational) and the batched/sequential speedup (the gated metric).
struct BaselineRow {
    protocol: String,
    n: u64,
    workload: String,
    batched: f64,
    speedup: f64,
}

/// Parses the rows of a previously emitted `BENCH_batch.json`.
fn load_baseline(path: &str) -> Vec<BaselineRow> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = pp_sweep::json::parse(&text)
        .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
    doc.get("results")
        .and_then(pp_sweep::json::Value::as_arr)
        .unwrap_or_else(|| panic!("baseline {path} has no \"results\" array"))
        .iter()
        .map(|row| BaselineRow {
            protocol: row
                .get("protocol")
                .and_then(pp_sweep::json::Value::as_str)
                .expect("baseline row protocol")
                .to_string(),
            n: row
                .get("n")
                .and_then(pp_sweep::json::Value::as_u64)
                .expect("baseline row n"),
            workload: row
                .get("workload")
                .and_then(pp_sweep::json::Value::as_str)
                .expect("baseline row workload")
                .to_string(),
            batched: row
                .get("batched")
                .and_then(pp_sweep::json::Value::as_f64)
                .expect("baseline row batched rate"),
            speedup: row
                .get("speedup")
                .and_then(pp_sweep::json::Value::as_f64)
                .expect("baseline row speedup"),
        })
        .collect()
}

/// Compares measured rows against the baseline; returns the failures.
///
/// The gated metric is the batched/sequential *speedup*: both engines run
/// in the same process on the same machine, so the ratio cancels the raw
/// hardware speed and the gate stays meaningful on shared CI runners whose
/// absolute interactions/s differ from the machine that committed the
/// baseline. Absolute batched rates are printed alongside as context.
fn gate_failures(baseline: &[BaselineRow], rows: &[Row]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for row in rows {
        let Some(base) = baseline
            .iter()
            .find(|b| b.protocol == row.protocol && b.n == row.n && b.workload == row.workload)
        else {
            continue;
        };
        matched += 1;
        let measured = row.bat.rate() / row.seq.rate();
        let floor = base.speedup * (1.0 - GATE_TOLERANCE);
        if measured < floor {
            failures.push(format!(
                "{} n={} {}: batched speedup {measured:.2}x is below 70% of baseline {:.2}x \
                 (batched {:.3e} int/s, baseline {:.3e})",
                row.protocol,
                row.n,
                row.workload,
                base.speedup,
                row.bat.rate(),
                base.batched
            ));
        } else {
            eprintln!(
                "[gate] {} n={} {}: speedup {measured:.2}x vs baseline {:.2}x — ok ({:+.0}%; \
                 batched {:.3e} int/s)",
                row.protocol,
                row.n,
                row.workload,
                base.speedup,
                (measured / base.speedup - 1.0) * 100.0,
                row.bat.rate()
            );
        }
    }
    assert!(
        matched > 0,
        "gate matched no baseline rows — wrong baseline file?"
    );
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut quick = false;
    let mut huge = false;
    let mut gate: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--huge" => huge = true,
            "--gate" => {
                i += 1;
                let value = args.get(i).unwrap_or_else(|| {
                    panic!("--gate needs a baseline path (e.g. --gate BENCH_batch.json)")
                });
                assert!(
                    !value.starts_with("--"),
                    "--gate needs a baseline path, got flag-like {value:?}"
                );
                gate = Some(value.clone());
            }
            other => {
                panic!("unknown argument {other}; supported: --quick --huge --gate BASELINE.json")
            }
        }
        i += 1;
    }
    // (n, sequential trials, batched trials)
    let sizes: &[(u64, u64, u64)] = if quick {
        &[(10_000, 20, 200), (1_000_000, 2, 100)]
    } else {
        &[(10_000, 50, 400), (1_000_000, 3, 200), (10_000_000, 1, 40)]
    };
    let weak_sizes: &[(u64, u64, u64)] = if quick {
        &[(10_000, 20, 50), (1_000_000, 2, 10)]
    } else {
        &[(10_000, 50, 100), (1_000_000, 3, 20), (10_000_000, 1, 5)]
    };

    let mut rows = Vec::new();
    bench_protocol::<InfectionEpidemic>("epidemic", sizes, &mut rows);
    bench_protocol::<WeakEstimator>("weak_estimator", weak_sizes, &mut rows);
    // Same sizes in quick and full mode, so the --quick CI gate always
    // covers the interned paths: n = 2000 (the paper-scale regime both
    // record protocols are measured at) and n = 50000 (big enough that
    // the agent engine's state array falls out of L2 — the regime where
    // the dense lane's compact table pays).
    let interned_sizes: &[(u64, u64)] = if quick {
        &[(2_000, 3), (50_000, 2)]
    } else {
        &[(2_000, 5), (50_000, 3)]
    };
    if huge {
        bench_parallel_fill::<InfectionEpidemic>("epidemic_par_fill", 100_000_000, &mut rows);
        bench_parallel_fill::<WeakEstimator>("weak_estimator_par_fill", 100_000_000, &mut rows);
    }
    for &(n, trials) in interned_sizes {
        bench_interned(
            "logsize_estimation",
            LogSizeEstimation::paper(),
            None,
            n,
            300.0,
            trials,
            &mut rows,
        );
        bench_interned(
            "leader_terminating",
            LeaderTerminating::paper(),
            Some(LeaderState::leader()),
            n,
            300.0,
            trials,
            &mut rows,
        );
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"sequential_vs_batched\",\n  \"unit\": \"interactions_per_second\",\n  \
         \"primary_workload\": \"fixed_time\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"protocol\": \"{}\", \"n\": {}, \"workload\": \"{}\", \"sequential\": {:.1}, \
             \"batched\": {:.1}, \"speedup\": {:.2}, \"sequential_trials\": {}, \
             \"batched_trials\": {}",
            row.protocol,
            row.n,
            row.workload,
            row.seq.rate(),
            row.bat.rate(),
            row.bat.rate() / row.seq.rate(),
            row.seq.trials,
            row.bat.trials
        );
        // Telemetry snapshot of the engine under test, cumulative over
        // the row's batched trials. The gate's baseline loader matches
        // rows by (protocol, n, workload) and ignores unknown fields, so
        // pre-telemetry baselines stay valid.
        if !row.counters.is_empty() {
            json.push_str(", \"counters\": {");
            for (j, (name, v)) in row.counters.iter().enumerate() {
                if j > 0 {
                    json.push_str(", ");
                }
                let _ = write!(json, "\"{name}\": {v}");
            }
            json.push('}');
        }
        json.push('}');
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    // Gate mode must not clobber the committed baseline it compares against.
    let out_path = if gate.is_some() {
        "BENCH_batch.latest.json"
    } else {
        "BENCH_batch.json"
    };
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");

    if let Some(baseline_path) = gate {
        let failures = gate_failures(&load_baseline(&baseline_path), &rows);
        if failures.is_empty() {
            eprintln!(
                "[gate] all matched rows within {:.0}% of baseline",
                GATE_TOLERANCE * 100.0
            );
        } else {
            eprintln!("[gate] THROUGHPUT REGRESSION ({} rows):", failures.len());
            for failure in &failures {
                eprintln!("[gate]   {failure}");
            }
            std::process::exit(1);
        }
    }
}
