//! **Figure 2**: convergence time of `Log-Size-Estimation` vs population
//! size.
//!
//! The paper plots 10 trials at each `n ∈ {10², 10³, 10⁴, 10⁵}`; convergence
//! is "all agents reach `epoch = 5·logSize2`", and the observed estimate is
//! always within additive error 2 in practice. The x axis is log-scaled, so
//! the `Θ(log² n)` time shows as a gently accelerating curve.
//!
//! Default sizes stop at 10⁴ (a 10⁵ trial simulates ~10¹⁰ interactions);
//! pass `--full` to add 10⁵, or `--sizes`/`--trials` to customize.

use pp_bench::{ascii_scatter_logx, fmt, print_table, write_csv, HarnessArgs};
use pp_core::log_size::estimate_log_size;
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let mut args = HarnessArgs::parse(&[100, 316, 1000, 3162, 10_000], 10);
    if args.full && !args.sizes.contains(&100_000) {
        args.sizes.push(100_000);
    }
    println!(
        "Figure 2: Log-Size-Estimation convergence time (trials={})",
        args.trials
    );
    println!("paper: O(log^2 n) time w.p. >= 1 - 1/n^2; estimate within 5.7 of log n (within 2 in practice)\n");

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n in &args.sizes {
        let outcomes = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            estimate_log_size(n as usize, seed, None)
        });
        let times: Vec<f64> = outcomes.iter().map(|o| o.value.time).collect();
        let errors: Vec<f64> = outcomes.iter().filter_map(|o| o.value.error(n)).collect();
        let converged = outcomes.iter().filter(|o| o.value.converged).count();
        let summary = pp_analysis::stats::Summary::of(&times);
        let max_abs_err = errors.iter().fold(0.0f64, |a, &e| a.max(e.abs()));
        for &t in &times {
            points.push((n as f64, t));
        }
        rows.push(vec![
            n.to_string(),
            converged.to_string(),
            fmt(summary.mean),
            fmt(summary.min),
            fmt(summary.max),
            fmt(max_abs_err),
        ]);
    }
    let header = [
        "n",
        "converged",
        "mean_time",
        "min_time",
        "max_time",
        "max_|err|",
    ];
    print_table(&header, &rows);
    println!("\n{}", ascii_scatter_logx(&points, 70, 18));

    // The paper's scaling claim: time ~ log^2 n fits better than ~ log n.
    let means: Vec<(u64, f64)> = args
        .sizes
        .iter()
        .zip(rows.iter())
        .map(|(&n, r)| (n, r[2].parse::<f64>().unwrap_or(0.0)))
        .collect();
    if means.len() >= 3 {
        let (lin, quad) = pp_analysis::fit::compare_scaling_models(&means);
        println!(
            "scaling fit: time ~ a + b*log n    R^2 = {:.4}",
            lin.r_squared
        );
        println!(
            "scaling fit: time ~ a + b*log^2 n  R^2 = {:.4}  (slope {:.1})",
            quad.r_squared, quad.slope
        );
    }
    let csv_rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(n, t)| vec![format!("{n}"), format!("{t}")])
        .collect();
    write_csv("fig2_convergence", &["n", "parallel_time"], &csv_rows);
}
