//! **T3.1-err**: the additive-error band of Theorem 3.1.
//!
//! Claim: the converged output `k` satisfies `|k − log n| ≤ 5.7` with
//! probability `≥ 1 − 9/n`; the Figure 2 caption adds that in practice the
//! error is within 2. This harness measures the full error distribution.
//!
//! Runs as a `pp-sweep` grid over the registry's `logsize_estimate`
//! experiment (the same measurement `table_baseline_estimators` and the
//! `sweep` CLI resolve), so trials fan out over `--threads` workers,
//! `--journal` makes the run resumable, and every trial carries its
//! engine telemetry counters into the journal for free.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 500, 1000, 5000], 30);
    let spec = args.sweep_spec("table_error_band");
    println!(
        "Theorem 3.1 error band (trials={}): |k - log n| <= 5.7 w.p. >= 1 - 9/n; <= 2 in practice",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["logsize_estimate"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let errors = report.point("logsize_estimate", n).values("err");
        let within_band = errors.iter().filter(|e| e.abs() <= 5.7).count();
        let within_2 = errors.iter().filter(|e| e.abs() <= 2.0).count();
        let s = pp_analysis::stats::Summary::of(&errors);
        let bound = pp_analysis::subexp::theorem_3_1_error_bound(n);
        rows.push(vec![
            n.to_string(),
            fmt(s.mean),
            fmt(s.min),
            fmt(s.max),
            format!("{}/{}", within_band, errors.len()),
            format!("{}/{}", within_2, errors.len()),
            format!("{:.3}", 1.0 - bound),
        ]);
        for e in &errors {
            csv.push(vec![n.to_string(), format!("{e}")]);
        }
    }
    print_table(
        &[
            "n",
            "mean_err",
            "min_err",
            "max_err",
            "|err|<=5.7",
            "|err|<=2",
            "claimed_P",
        ],
        &rows,
    );
    write_csv("table_error_band", &["n", "signed_error"], &csv);
}
