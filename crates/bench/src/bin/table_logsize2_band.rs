//! **L3.8**: the `logSize2` band.
//!
//! Claim: the settled `logSize2` (max of |A| geometric samples, plus 2) is
//! in `[log n − log ln n, 2 log n + 1]` with probability
//! `≥ 1 − 1/n − e^{−n/18}`. Measured two ways: direct Monte-Carlo of the
//! maximum (fast, many trials, stays inline — it samples raw geometrics,
//! not a population) and the value the full protocol actually settles on,
//! which runs as a `pp-sweep` grid over the registry's `logsize2_band`
//! experiment — so trials fan out over `--threads` workers, `--journal`
//! makes the run resumable, and the spec is servable by `pp-server`.

use pp_analysis::geometric::{logsize2_band, max_geometric_sample};
use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};
use pp_engine::rng::rng_from_seed;

fn main() {
    let args = HarnessArgs::parse(&[100, 1000, 10_000], 10);
    let spec = args.sweep_spec("table_logsize2_band");
    println!(
        "Lemma 3.8 logSize2 band (protocol trials={}): log n - log ln n <= logSize2 <= 2 log n + 1",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["logsize2_band"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let (lo, hi) = logsize2_band(n);
        // Monte-Carlo of max over n/2 samples (the A subpopulation), +2.
        let mc_trials = 20_000;
        let mut rng = rng_from_seed(args.seed ^ n);
        let mut mc_within = 0u64;
        let mut mc_sum = 0.0;
        for _ in 0..mc_trials {
            let v = (max_geometric_sample(n / 2, &mut rng) + 2) as f64;
            mc_sum += v;
            if v >= lo && v <= hi {
                mc_within += 1;
            }
        }
        // Protocol-in-the-loop, from the sweep report.
        let point = report.point("logsize2_band", n);
        let proto_vals = point.values("logsize2");
        let proto_within = point.values("in_band").iter().filter(|&&v| v > 0.0).count();
        let s = pp_analysis::stats::Summary::of(&proto_vals);
        rows.push(vec![
            n.to_string(),
            fmt(lo),
            fmt(hi),
            fmt(mc_sum / mc_trials as f64),
            format!("{:.4}", mc_within as f64 / mc_trials as f64),
            fmt(s.mean),
            format!("{}/{}", proto_within, proto_vals.len()),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{lo}"),
            format!("{hi}"),
            format!("{}", mc_sum / mc_trials as f64),
            format!("{}", s.mean),
        ]);
    }
    print_table(
        &[
            "n",
            "band_lo",
            "band_hi",
            "mc_mean",
            "mc_in_band",
            "proto_mean",
            "proto_in_band",
        ],
        &rows,
    );
    write_csv(
        "table_logsize2_band",
        &["n", "band_lo", "band_hi", "mc_mean", "proto_mean"],
        &csv,
    );
}
