//! **Fig 2 companion**: the distribution of the signed additive error.
//!
//! The Figure 2 caption's claim — "in practice the estimate is always
//! within 2" — is a statement about the error distribution's support. This
//! harness draws it: an ASCII histogram of `k − log2 n` over many trials,
//! showing the +1.33-centered bell predicted by Corollary D.9's centering
//! constant `δ₀ = 1/2 + γ/ln 2 − ε₂`.
//!
//! Runs on the sweep registry (the `logsize_estimate` experiment — the
//! same per-trial measurement Table 1 uses), fanned out over the seeded
//! worker pool (`--journal PATH` resumes, `--shard k/N` splits across
//! machines).

use pp_analysis::stats::histogram;
use pp_analysis::subexp::delta0;
use pp_bench::{experiments, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[1000], 60);
    let spec = args.sweep_spec("fig_error_histogram");
    let n = spec.sizes[0];
    println!(
        "Error distribution at n = {n} over {} trials (claimed: |err| <= 5.7, practical <= 2)",
        spec.effective_trials()
    );

    let experiments = experiments::build(&["logsize_estimate"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);
    let errors: Vec<f64> = report
        .points_for("logsize_estimate")
        .iter()
        .flat_map(|point| point.values("err"))
        .collect();

    let (lo, hi) = (-6.0, 6.0);
    let bins = 12;
    let counts = histogram(&errors, lo, hi, bins);
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("\n  signed error (bin width 1.0):");
    for (i, &c) in counts.iter().enumerate() {
        let left = lo + i as f64;
        let bar = "#".repeat((c * 50 / max) as usize);
        println!("  [{left:>4.1},{:>4.1})  {c:>3}  {bar}", left + 1.0);
    }
    let s = pp_analysis::stats::Summary::of(&errors);
    println!(
        "\n  mean {:+.3} (predicted centering ≈ δ0 − ~0.3 rounding/role effects; δ0 = {:.3})",
        s.mean,
        delta0()
    );
    println!(
        "  min {:+.2}, max {:+.2}, all within 5.7: {}",
        s.min,
        s.max,
        errors.iter().all(|e| e.abs() <= 5.7)
    );

    let rows: Vec<Vec<String>> = errors
        .iter()
        .map(|e| vec![n.to_string(), format!("{e}")])
        .collect();
    print_table(
        &["n", "trials", "mean", "min", "max"],
        &[vec![
            n.to_string(),
            errors.len().to_string(),
            format!("{:+.3}", s.mean),
            format!("{:+.2}", s.min),
            format!("{:+.2}", s.max),
        ]],
    );
    write_csv("fig_error_histogram", &["n", "signed_error"], &rows);
}
