//! **Epidemic (Lemma A.1 / Corollaries 3.4–3.5)**: epidemic completion
//! times.
//!
//! Claims: full-population epidemic has `E[T] = (n−1)/n·H_{n−1}` and
//! `Pr[T > α·ln n] < 4n^{−α/4+1}`; an epidemic confined to a subpopulation
//! of `n/c` agents slows down by roughly `c²` per-step (Corollary 3.4), and
//! at `c = 3`, `Pr[T > 24 ln n] < 27 n^{−3}` (Corollary 3.5).
//!
//! Runs as a `pp-sweep` grid: two registry experiments × `--sizes`, trials
//! fanned out over `--threads` workers, resumable via `--journal`.

use pp_analysis::harmonic::{expected_epidemic_time, subpopulation_epidemic_tail};
use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[1000, 10_000, 100_000], 20);
    let spec = args.sweep_spec("table_epidemic");
    println!(
        "Lemma A.1 / Corollary 3.4 epidemics (trials={})",
        spec.effective_trials()
    );

    let experiments =
        experiments::build(&["epidemic_full", "epidemic_sub3"]).expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let full_times = report.point("epidemic_full", n).values("time");
        let sub_times = report.point("epidemic_sub3", n).values("time");
        let sf = pp_analysis::stats::Summary::of(&full_times);
        let ss = pp_analysis::stats::Summary::of(&sub_times);
        let ln_n = (n as f64).ln();
        let over_24 = sub_times.iter().filter(|&&t| t > 24.0 * ln_n).count();
        rows.push(vec![
            n.to_string(),
            fmt(sf.mean),
            fmt(expected_epidemic_time(n)),
            fmt(sf.mean / ln_n),
            fmt(ss.mean),
            fmt(ss.mean / sf.mean),
            format!("{}/{}", over_24, sub_times.len()),
            format!("{:.1e}", subpopulation_epidemic_tail(n / 3, 3.0, 24.0)),
        ]);
        for (f, s) in full_times.iter().zip(&sub_times) {
            csv.push(vec![n.to_string(), format!("{f}"), format!("{s}")]);
        }
    }
    print_table(
        &[
            "n",
            "full_mean",
            "A.1_E[T]",
            "full/ln n",
            "sub(n/3)_mean",
            "slowdown",
            "sub>24ln n",
            "C3.5_bound",
        ],
        &rows,
    );
    println!("\n(full epidemic here is one-way from a single source: ~2 ln n; A.1's form is the");
    println!(" expected completion of its epidemic process — same Theta(log n) shape.");
    println!(
        " Corollary 3.5: the subpopulation epidemic should essentially never exceed 24 ln n.)"
    );
    write_csv(
        "table_epidemic",
        &["n", "full_time", "subpopulation_time"],
        &csv,
    );
}
