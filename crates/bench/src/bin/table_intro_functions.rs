//! **Intro (§1)**: the exponential gap between `f(x) = 2x` and
//! `f(x) = ⌊x/2⌋`.
//!
//! Paper: `x, q -> y, y` computes doubling in `O(log n)` expected time;
//! `x, x -> y, q` computes halving in `Θ(n)` — the motivating example for
//! why "efficient" means sublinear.
//!
//! Runs on the sweep registry (`intro_functions` experiment): trials fan
//! out over the seeded worker pool and `--journal PATH` makes runs
//! resumable.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    // Halving takes Θ(n) *parallel* time = Θ(n²) interactions, so the
    // default sweep stops at 3·10⁴ (≈10⁹ interactions per trial).
    let args = HarnessArgs::parse(&[500, 5_000, 30_000], 8);
    let spec = args.sweep_spec("table_intro_functions");
    println!(
        "Section 1 intro example (trials={}): doubling O(log n) vs halving Theta(n)",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["intro_functions"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("intro_functions") {
        let n = point.n;
        let ds = pp_analysis::stats::Summary::of(&point.values("double_time"));
        let hs = pp_analysis::stats::Summary::of(&point.values("halve_time"));
        rows.push(vec![
            n.to_string(),
            fmt(ds.mean),
            fmt(ds.mean / (n as f64).ln()),
            fmt(hs.mean),
            fmt(hs.mean / n as f64),
            fmt(hs.mean / ds.mean),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", ds.mean),
            format!("{}", hs.mean),
        ]);
    }
    print_table(
        &[
            "n",
            "double_time",
            "double/ln n",
            "halve_time",
            "halve/n",
            "gap",
        ],
        &rows,
    );
    println!("\n(double/ln n and halve/n should both be ~constant; the gap column is the");
    println!(" paper's 'exponentially slower' — growing like n/log n)");
    write_csv(
        "table_intro_functions",
        &["n", "double_time", "halve_time"],
        &csv,
    );
}
