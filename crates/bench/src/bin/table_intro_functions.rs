//! **Intro (§1)**: the exponential gap between `f(x) = 2x` and
//! `f(x) = ⌊x/2⌋`.
//!
//! Paper: `x, q -> y, y` computes doubling in `O(log n)` expected time;
//! `x, x -> y, q` computes halving in `Θ(n)` — the motivating example for
//! why "efficient" means sublinear.

use pp_baselines::intro_functions::{double_time, halve_time};
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_sweep::trials::run_trials_threaded;

fn main() {
    // Halving takes Θ(n) *parallel* time = Θ(n²) interactions, so the
    // default sweep stops at 3·10⁴ (≈10⁹ interactions per trial).
    let args = HarnessArgs::parse(&[500, 5_000, 30_000], 8);
    println!(
        "Section 1 intro example (trials={}): doubling O(log n) vs halving Theta(n)",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        // x = n/4 keeps the doubling fuel q plentiful (q ≥ n/2 throughout),
        // which is what the paper's O(log n) claim needs; halving gets the
        // same input size.
        let x = n / 4;
        let d = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            double_time(n, x, seed).1
        });
        let h = run_trials_threaded(args.seed ^ n ^ 1, args.trials, args.threads, |_, seed| {
            halve_time(n, x, seed).1
        });
        let dt: Vec<f64> = d.iter().map(|o| o.value).collect();
        let ht: Vec<f64> = h.iter().map(|o| o.value).collect();
        let ds = pp_analysis::stats::Summary::of(&dt);
        let hs = pp_analysis::stats::Summary::of(&ht);
        rows.push(vec![
            n.to_string(),
            fmt(ds.mean),
            fmt(ds.mean / (n as f64).ln()),
            fmt(hs.mean),
            fmt(hs.mean / n as f64),
            fmt(hs.mean / ds.mean),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", ds.mean),
            format!("{}", hs.mean),
        ]);
    }
    print_table(
        &[
            "n",
            "double_time",
            "double/ln n",
            "halve_time",
            "halve/n",
            "gap",
        ],
        &rows,
    );
    println!("\n(double/ln n and halve/n should both be ~constant; the gap column is the");
    println!(" paper's 'exponentially slower' — growing like n/log n)");
    write_csv(
        "table_intro_functions",
        &["n", "double_time", "halve_time"],
        &csv,
    );
}
