//! Generic sweep runner: executes a TOML/JSON sweep spec over the
//! experiment registry.
//!
//! ```text
//! sweep <spec.toml|spec.json> [--threads N] [--trials T] [--seed S]
//!                             [--max-retries R] [--fault kill@N]
//!                             [--shard k/N] [--merge a.jsonl b.jsonl ...]
//! sweep --list
//! sweep submit <server> <spec.toml|spec.json>
//! sweep status <server> <job-id>
//! sweep watch  <server> <job-id>
//! sweep fetch  <server> <job-id> [--out DIR]
//! ```
//!
//! `--max-retries R` retries a panicking trial up to `R` times (with
//! backoff) before recording it as failed; a sweep with failed trials
//! still completes and reports the failure count. `--fault kill@N` arms
//! the deterministic fault-injection harness: the process aborts (like a
//! SIGKILL) after `N` trials complete — re-running the same spec then
//! resumes from the journal, and the final outputs are byte-identical to
//! an uninterrupted run (CI asserts this on every push).
//!
//! The spec names its experiments (see `sweep --list` for the catalogue),
//! sizes, trials, engine policy, master seed, and optionally a journal
//! path — with a journal, an interrupted sweep resumes instead of
//! restarting, and re-running a completed spec just replays it. Output:
//! the aggregated summary as an aligned table on stdout plus three files
//! under `results/`: `<name>_summary.csv` (per-point statistics at full
//! precision), `<name>_trials.csv` (every trial), and `<name>_sweep.json`.
//! All three are byte-identical for a fixed spec and master seed,
//! regardless of thread count or interruptions.
//!
//! `--shard k/N` turns the run into the *producer* half of a distributed
//! sweep: only the trials with `trial % N == k` execute, journaled to a
//! per-shard file (`<journal stem>_shard{k}of{N}.jsonl`, derived from the
//! spec's journal or the spec name) and no report is emitted. Shards of
//! one spec partition the grid exactly, and every trial seed is a pure
//! function of its grid coordinates, so merging all N shard journals
//! reproduces the single-machine report byte for byte (CI asserts this on
//! every push).
//!
//! `--merge` is the *collector* half: it combines journals produced on
//! different machines (`--shard` runs, disjoint `--trials` prefixes, or
//! split journal files) into one report. Each listed journal must carry
//! the spec's exact grid fingerprint (mismatches are refused before
//! anything is written), their trials are folded into the spec's journal,
//! and the sweep then runs whatever is still missing and emits the
//! combined report.
//!
//! The `submit`/`status`/`watch`/`fetch` subcommands talk to a running
//! `pp-server` instead of executing locally: `submit` posts the spec and
//! prints the job id on stdout (submission is idempotent on the grid
//! fingerprint, so rerunning a submit script is safe), `status` prints
//! the job's JSON status document, `watch` follows the server-sent-event
//! stream until the job ends (exit status reflects the terminal state),
//! and `fetch` downloads the report artifacts — byte-identical to what a
//! local `sweep <spec>` run of the same spec writes under `results/`.
//!
//! Example spec: see `specs/table_epidemic.toml`.

use std::path::PathBuf;

use pp_bench::{anchor_journal, client, experiments, print_table, results_dir, run_sweep_or_exit};
use pp_sweep::{emit, merge_journals, run_sweep_shard, Shard, SweepSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if matches!(
        args.get(1).map(String::as_str),
        Some("submit" | "status" | "watch" | "fetch")
    ) {
        client_main(&args);
    }
    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for name in experiments::names() {
            let exp = experiments::experiment(name).expect("registered");
            println!("  {name}  (metrics: {})", exp.metrics().join(", "));
        }
        return;
    }
    let mut spec_path = None;
    let mut threads = None;
    let mut trials = None;
    let mut seed = None;
    let mut max_retries = None;
    let mut fault = None;
    let mut shard: Option<Shard> = None;
    let mut merge: Option<Vec<PathBuf>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = Some(parse_num(&args, i, "--threads"));
            }
            "--trials" => {
                i += 1;
                trials = Some(parse_num(&args, i, "--trials"));
            }
            "--seed" => {
                i += 1;
                seed = Some(parse_num(&args, i, "--seed"));
            }
            "--max-retries" => {
                i += 1;
                max_retries = Some(parse_num(&args, i, "--max-retries"));
            }
            "--fault" => {
                i += 1;
                let value = args
                    .get(i)
                    .unwrap_or_else(|| die("--fault needs a value (kill@N)"));
                pp_engine::env::parse_fault(value).unwrap_or_else(|e| die(&e));
                fault = Some(value.clone());
            }
            "--shard" => {
                i += 1;
                let value = args
                    .get(i)
                    .unwrap_or_else(|| die("--shard needs a value (k/N, e.g. 0/2)"));
                shard = Some(value.parse().unwrap_or_else(|e: String| die(&e)));
            }
            "--merge" => {
                let sources = merge.get_or_insert_with(Vec::new);
                // Consume shard paths, but never swallow the spec file: a
                // .toml/.json argument while the spec is still missing is
                // the spec, not a shard.
                while args.get(i + 1).is_some_and(|a| {
                    !a.starts_with("--")
                        && !(spec_path.is_none() && (a.ends_with(".toml") || a.ends_with(".json")))
                }) {
                    i += 1;
                    sources.push(PathBuf::from(&args[i]));
                }
                if sources.is_empty() {
                    die("--merge needs at least one journal file");
                }
            }
            other if spec_path.is_none() && !other.starts_with("--") => {
                spec_path = Some(other.to_string());
            }
            other => die(&format!(
                "unknown argument {other}; usage: sweep <spec.toml|spec.json> \
                 [--threads N] [--trials T] [--seed S] [--max-retries R] [--fault kill@N] \
                 [--shard k/N] [--merge a.jsonl b.jsonl ...] | sweep --list"
            )),
        }
        i += 1;
    }
    let Some(spec_path) = spec_path else {
        die(
            "missing spec file; usage: sweep <spec.toml|spec.json> [--threads N] [--trials T] \
             [--seed S] [--shard k/N] [--merge a.jsonl b.jsonl ...]",
        );
    };

    let mut spec = SweepSpec::from_file(&spec_path).unwrap_or_else(|e| die(&e));
    if let Some(threads) = threads {
        spec.threads = threads as usize;
    }
    if let Some(trials) = trials {
        spec.trials = trials as usize;
    }
    if let Some(seed) = seed {
        spec.master_seed = seed;
    }
    if let Some(max_retries) = max_retries {
        spec.max_retries = max_retries as usize;
    }
    if let Some(fault) = fault {
        spec.fault = Some(fault);
    }
    // Relative journal paths anchor at the workspace root (like the
    // results/ outputs), so resume finds the journal regardless of the
    // directory the CLI was invoked from.
    anchor_journal(&mut spec);
    let experiments = experiments::build(&spec.experiments).unwrap_or_else(|e| die(&e));
    if let Some(shard) = shard {
        if merge.is_some() {
            die("--shard produces a journal and --merge consumes them; run them separately");
        }
        // The shard journal is a sibling of the spec's journal (or lands
        // under results/), suffixed so N shards on one filesystem never
        // collide — and so the collector knows what to list in --merge.
        spec.journal = Some(shard_journal_path(&spec, shard));
        let recorded =
            run_sweep_shard(&spec, &experiments, shard).unwrap_or_else(|e| die(&e.to_string()));
        // Run diagnostics go to stderr: stdout is reserved for report
        // content so `sweep ... > out.txt` captures exactly the tables.
        eprintln!(
            "[sweep] shard {}/{} of sweep {:?}: {recorded} trial(s) journaled at {}",
            shard.index,
            shard.count,
            spec.name,
            spec.journal.as_ref().expect("set above").display()
        );
        eprintln!("[sweep] merge the shards with: sweep {spec_path} --merge <shard journals ...>",);
        return;
    }
    if let Some(sources) = merge {
        // Shard journals without a journal-less spec have nowhere to land.
        if spec.journal.is_none() {
            spec.journal = Some(results_dir().join(format!("{}_merged.jsonl", spec.name)));
        }
        let available =
            merge_journals(&spec, &experiments, &sources).unwrap_or_else(|e| die(&e.to_string()));
        eprintln!(
            "[sweep] merged {} journal(s) into {} ({available} trials available)",
            sources.len(),
            spec.journal.as_ref().expect("set above").display()
        );
    }
    let report = run_sweep_or_exit(&spec, &experiments);

    println!(
        "sweep {:?}: {} points, {} trials (master seed {})",
        report.name,
        report.points.len(),
        report.total_trials(),
        report.master_seed
    );
    if report.failed_trials > 0 {
        // Warnings go to stderr so stdout stays machine-parseable.
        eprintln!(
            "[sweep] WARNING: {} trial(s) failed permanently and are missing from the aggregates",
            report.failed_trials
        );
    }
    let rows = emit::summary_rows(&report);
    print_table(&emit::SUMMARY_HEADER, &rows);

    let dir = results_dir();
    let mut outputs = vec![
        ("summary.csv", emit::summary_csv(&report)),
        ("trials.csv", emit::per_trial_csv(&report)),
        ("sweep.json", emit::to_json(&report)),
    ];
    // Per-point telemetry aggregates ride along whenever trials carried
    // counters (PP_METRICS=off or replaying a pre-telemetry journal
    // leaves the file list exactly as it always was).
    if report.has_counters() {
        outputs.push(("counters.csv", emit::counters_csv(&report)));
    }
    for (suffix, content) in outputs {
        let path = dir.join(format!("{}_{suffix}", report.name));
        std::fs::write(&path, content)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        eprintln!("[out] {}", path.display());
    }
}

/// The journal a `--shard k/N` run writes: the spec's journal path (or
/// `results/<name>.jsonl` when the spec has none) with `_shard{k}of{N}`
/// appended to the file stem.
fn shard_journal_path(spec: &SweepSpec, shard: Shard) -> PathBuf {
    let base = spec
        .journal
        .clone()
        .unwrap_or_else(|| results_dir().join(format!("{}.jsonl", spec.name)));
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
    base.with_file_name(format!(
        "{stem}_shard{}of{}.jsonl",
        shard.index, shard.count
    ))
}

/// Dispatches the `submit|status|watch|fetch <server> ...` subcommands
/// (the client half of the `pp-server` sweep service).
fn client_main(args: &[String]) -> ! {
    let command = args[1].as_str();
    let server = args
        .get(2)
        .unwrap_or_else(|| die(&format!("{command} needs a server address")));
    let addr = client::server_addr(server);
    let arg3 = || {
        args.get(3)
            .unwrap_or_else(|| die(&format!("{command} needs a job id")))
            .as_str()
    };
    match command {
        "submit" => {
            let spec = args
                .get(3)
                .unwrap_or_else(|| die("submit needs a spec file"));
            let id = client::submit(&addr, spec).unwrap_or_else(|e| die(&e));
            // Only the job id on stdout: `ID=$(sweep submit ...)` works.
            println!("{id}");
        }
        "status" => {
            let body = client::status(&addr, arg3()).unwrap_or_else(|e| die(&e));
            println!("{body}");
        }
        "watch" => {
            let state = client::watch(&addr, arg3()).unwrap_or_else(|e| die(&e));
            println!("{state}");
            if state != "done" {
                std::process::exit(1);
            }
        }
        "fetch" => {
            let id = arg3();
            let mut out_dir = None;
            let mut i = 4;
            while i < args.len() {
                match args[i].as_str() {
                    "--out" => {
                        i += 1;
                        out_dir = Some(PathBuf::from(
                            args.get(i)
                                .unwrap_or_else(|| die("--out needs a directory")),
                        ));
                    }
                    other => die(&format!("unknown fetch argument {other}")),
                }
                i += 1;
            }
            let out_dir = out_dir.unwrap_or_else(|| results_dir().join("jobs").join(id));
            let written = client::fetch(&addr, id, &out_dir).unwrap_or_else(|e| die(&e));
            for path in written {
                eprintln!("[out] {}", path.display());
            }
        }
        _ => unreachable!("dispatched on a known subcommand"),
    }
    std::process::exit(0);
}

fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    args.get(i)
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} must be an unsigned integer")))
}

fn die(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(1);
}
