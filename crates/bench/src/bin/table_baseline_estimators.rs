//! **Baselines**: the estimator landscape the paper situates itself in.
//!
//! | protocol | error | time | leader? | terminating? |
//! |---|---|---|---|---|
//! | Alistarh et al. \[2\] max-geometric | multiplicative on `log n` | `O(log n)` | no | no |
//! | **this paper's** `Log-Size-Estimation` | additive 5.7 | `O(log² n)` | no | no |
//! | `l_i/f_i` exact backup (§3.3) | exact `⌊log n⌋` | `O(n)` | no | no |
//! | Michail-style exact count \[32\] | exact `n` | `O(n log n)` | yes | **yes** |
//!
//! This harness measures all four side by side — who wins on what, at what
//! cost — reproducing the paper's comparative claims. Runs as one
//! `pp-sweep` grid of four registry experiments (the two `Ω(n)`-time exact
//! protocols are capped at 5 trials by the registry), resumable via
//! `--journal`.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[100, 1000, 10_000], 10);
    let spec = args.sweep_spec("table_baseline_estimators");
    println!(
        "Estimator landscape (trials={}): error vs time across the four protocols",
        spec.effective_trials()
    );

    let experiments = experiments::build(&[
        "weak_estimator",
        "logsize_estimate",
        "exact_backup",
        "exact_leader_count",
    ])
    .expect("registry names");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mean_abs = |values: &[f64]| {
        let abs: Vec<f64> = values.iter().map(|x| x.abs()).collect();
        pp_analysis::stats::Summary::of(&abs).mean
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let weak = report.point("weak_estimator", n);
        let main = report.point("logsize_estimate", n);
        let backup = report.point("exact_backup", n);
        let exact = report.point("exact_leader_count", n);

        let weak_err = mean_abs(&weak.values("err"));
        let main_err = mean_abs(&main.values("err"));
        let backup_exact = backup.count_true("exact");
        let count_exact = exact.count_true("exact");

        rows.push(vec![
            n.to_string(),
            format!("{} / {}", fmt(weak_err), fmt(weak.mean("time"))),
            format!("{} / {}", fmt(main_err), fmt(main.mean("time"))),
            format!(
                "{}/{} / {}",
                backup_exact,
                backup.trials.len(),
                fmt(backup.mean("time"))
            ),
            format!(
                "{}/{} / {}",
                count_exact,
                exact.trials.len(),
                fmt(exact.mean("time"))
            ),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{weak_err}"),
            format!("{main_err}"),
            format!("{}", weak.mean("time")),
            format!("{}", main.mean("time")),
            format!("{}", backup.mean("time")),
            format!("{}", exact.mean("time")),
        ]);
    }
    print_table(
        &[
            "n",
            "weak[2]: |err|/time",
            "this paper: |err|/time",
            "l/f backup: exact/time",
            "leader count: exact/time",
        ],
        &rows,
    );
    println!("\n(the paper's position: the weak estimator's error GROWS with n while this");
    println!(" paper's stays <= 5.7; the exact protocols pay Omega(n) time for exactness)");
    write_csv(
        "table_baseline_estimators",
        &[
            "n",
            "weak_abs_err",
            "main_abs_err",
            "weak_time",
            "main_time",
            "backup_time",
            "exact_count_time",
        ],
        &csv,
    );
}
