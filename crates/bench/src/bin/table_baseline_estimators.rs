//! **Baselines**: the estimator landscape the paper situates itself in.
//!
//! | protocol | error | time | leader? | terminating? |
//! |---|---|---|---|---|
//! | Alistarh et al. \[2\] max-geometric | multiplicative on `log n` | `O(log n)` | no | no |
//! | **this paper's** `Log-Size-Estimation` | additive 5.7 | `O(log² n)` | no | no |
//! | `l_i/f_i` exact backup (§3.3) | exact `⌊log n⌋` | `O(n)` | no | no |
//! | Michail-style exact count \[32\] | exact `n` | `O(n log n)` | yes | **yes** |
//!
//! This harness measures all four side by side — who wins on what, at what
//! cost — reproducing the paper's comparative claims.

use pp_baselines::alistarh::weak_estimate;
use pp_baselines::exact_backup::run_backup;
use pp_baselines::exact_leader::run_exact_count;
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_core::log_size::estimate_log_size;
use pp_engine::runner::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[100, 1000, 10_000], 10);
    println!(
        "Estimator landscape (trials={}): error vs time across the four protocols",
        args.trials
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let logn = (n as f64).log2();
        let weak = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            weak_estimate(n as usize, seed)
        });
        let main = run_trials_threaded(args.seed ^ n ^ 3, args.trials, args.threads, |_, seed| {
            estimate_log_size(n as usize, seed, None)
        });
        let backup = run_trials_threaded(
            args.seed ^ n ^ 4,
            args.trials.min(5),
            args.threads,
            |_, seed| run_backup(n, seed),
        );
        let exact = run_trials_threaded(
            args.seed ^ n ^ 6,
            args.trials.min(5),
            args.threads,
            |_, seed| run_exact_count(n as usize, seed, 1e9),
        );

        let weak_err: Vec<f64> = weak
            .iter()
            .map(|o| (o.value.estimate as f64 - logn).abs())
            .collect();
        let main_err: Vec<f64> = main
            .iter()
            .filter_map(|o| o.value.error(n).map(f64::abs))
            .collect();
        let weak_t: Vec<f64> = weak.iter().map(|o| o.value.time).collect();
        let main_t: Vec<f64> = main.iter().map(|o| o.value.time).collect();
        let backup_t: Vec<f64> = backup.iter().map(|o| o.value.silent_time).collect();
        let exact_t: Vec<f64> = exact.iter().map(|o| o.value.time).collect();
        let backup_exact = backup
            .iter()
            .filter(|o| o.value.max_level as f64 == logn.floor())
            .count();
        let count_exact = exact.iter().filter(|o| o.value.count == n).count();

        let m = |v: &[f64]| pp_analysis::stats::Summary::of(v).mean;
        rows.push(vec![
            n.to_string(),
            format!("{} / {}", fmt(m(&weak_err)), fmt(m(&weak_t))),
            format!("{} / {}", fmt(m(&main_err)), fmt(m(&main_t))),
            format!("{}/{} / {}", backup_exact, backup.len(), fmt(m(&backup_t))),
            format!("{}/{} / {}", count_exact, exact.len(), fmt(m(&exact_t))),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", m(&weak_err)),
            format!("{}", m(&main_err)),
            format!("{}", m(&weak_t)),
            format!("{}", m(&main_t)),
            format!("{}", m(&backup_t)),
            format!("{}", m(&exact_t)),
        ]);
    }
    print_table(
        &[
            "n",
            "weak[2]: |err|/time",
            "this paper: |err|/time",
            "l/f backup: exact/time",
            "leader count: exact/time",
        ],
        &rows,
    );
    println!("\n(the paper's position: the weak estimator's error GROWS with n while this");
    println!(" paper's stays <= 5.7; the exact protocols pay Omega(n) time for exactness)");
    write_csv(
        "table_baseline_estimators",
        &[
            "n",
            "weak_abs_err",
            "main_abs_err",
            "weak_time",
            "main_time",
            "backup_time",
            "exact_count_time",
        ],
        &csv,
    );
}
