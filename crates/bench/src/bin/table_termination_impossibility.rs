//! **T4.1 / L4.2**: the termination impossibility, made visible.
//!
//! Three uniform dense "terminating" protocols — the Figure-1 counter, the
//! fixed-threshold counter, and the geometric timer — all raise their
//! signal at an essentially *constant* parallel time as `n` grows by 1000×.
//! Alongside, Lemma 4.2's density claim: every `m-ρ`-producible state
//! (including the terminated one) occupies a δ-fraction of the population
//! by a constant time, with δ independent of `n`.

use pp_baselines::naive_terminating::{fixed_signal_time, geometric_signal_time};
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_sweep::trials::run_trials_threaded;
use pp_termination::experiment::{
    counter_dense_config, counter_protocol, signal_time, verify_density_lemma, COUNTER_T,
};

fn main() {
    let args = HarnessArgs::parse(&[1000, 10_000, 100_000, 1_000_000], 5);
    println!(
        "Theorem 4.1: signal times of uniform dense protocols are O(1) in n (trials={})",
        args.trials
    );

    let counter = counter_protocol(8);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let t_counter = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            signal_time(
                &counter,
                counter_dense_config(n),
                |&s| s == COUNTER_T,
                1e5,
                seed,
            )
            .expect("counter terminates")
        });
        let t_fixed =
            run_trials_threaded(args.seed ^ n ^ 1, args.trials, args.threads, |_, seed| {
                fixed_signal_time(n, 40, seed)
            });
        let t_geo = run_trials_threaded(args.seed ^ n ^ 2, args.trials, args.threads, |_, seed| {
            geometric_signal_time(n, 10, seed)
        });
        let mean = |v: &[pp_sweep::trials::TrialOutcome<f64>]| {
            v.iter().map(|o| o.value).sum::<f64>() / v.len() as f64
        };
        rows.push(vec![
            n.to_string(),
            fmt(mean(&t_counter)),
            fmt(mean(&t_fixed)),
            fmt(mean(&t_geo)),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", mean(&t_counter)),
            format!("{}", mean(&t_fixed)),
            format!("{}", mean(&t_geo)),
        ]);
    }
    print_table(
        &[
            "n",
            "fig1_counter(8)",
            "fixed_counter(40)",
            "geo_timer(x10)",
        ],
        &rows,
    );
    println!("\n(all three columns must stay flat as n grows 1000x — that is Theorem 4.1)");

    println!(
        "\nLemma 4.2: density of every m-rho-producible state at time 4 (counter(6), alpha=1/2)"
    );
    let rel = counter_protocol(6);
    let mut drows = Vec::new();
    for &n in &args.sizes {
        let report =
            verify_density_lemma(&rel, counter_dense_config(n), 1.0, None, 4.0, args.seed ^ n);
        let min_frac = report.min_fraction();
        let t_frac = report
            .states
            .iter()
            .find(|s| s.state == COUNTER_T)
            .map(|s| s.fraction)
            .unwrap_or(0.0);
        drows.push(vec![
            n.to_string(),
            report.states.len().to_string(),
            fmt(min_frac),
            fmt(t_frac),
        ]);
    }
    print_table(
        &["n", "closure_states", "min_fraction", "t_fraction"],
        &drows,
    );
    println!("\n(min_fraction is Lemma 4.2's delta: it must NOT shrink as n grows)");
    write_csv(
        "table_termination_impossibility",
        &["n", "counter_signal", "fixed_signal", "geo_signal"],
        &csv,
    );
}
