//! **L3.2**: the role-partition balance of Lemma 3.2 / Corollary 3.3.
//!
//! Claim: `|A| ∈ [n/2 − a, n/2 + a]` with probability `≥ 1 − e^{−2a²/n}`
//! (two-sided: `2e^{−2a²/n}`), and the partition finishes in `O(log n)`
//! time. Measured: the deviation distribution at `a = √(n ln n)` and the
//! completion times.
//!
//! Runs on the sweep registry (`partition` experiment): trials fan out
//! over the seeded worker pool and `--journal PATH` makes runs resumable.

use pp_bench::{experiments, fmt, print_table, run_sweep_or_exit, write_csv, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[1000, 10_000, 100_000], 40);
    let spec = args.sweep_spec("table_partition");
    println!(
        "Lemma 3.2 partition balance (trials={}): |A| in n/2 +- sqrt(n ln n) w.p. >= 1 - 2/n^2",
        spec.effective_trials()
    );
    let experiments = experiments::build(&["partition"]).expect("registered");
    let report = run_sweep_or_exit(&spec, &experiments);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for point in report.points_for("partition") {
        let n = point.n;
        let devs = point.values("abs_dev");
        let times = point.values("time");
        let a = ((n as f64) * (n as f64).ln()).sqrt();
        let within = devs.iter().filter(|&&d| d <= a).count();
        let third = point
            .values("a_count")
            .iter()
            .filter(|&&c| c >= n as f64 / 3.0 && c <= 2.0 * n as f64 / 3.0)
            .count();
        let sdev = pp_analysis::stats::Summary::of(&devs);
        let stime = pp_analysis::stats::Summary::of(&times);
        rows.push(vec![
            n.to_string(),
            fmt(sdev.mean),
            fmt(sdev.max),
            fmt(a),
            format!("{}/{}", within, devs.len()),
            format!("{}/{}", third, devs.len()),
            fmt(stime.mean),
        ]);
        for (d, t) in devs.iter().zip(&times) {
            csv.push(vec![n.to_string(), format!("{d}"), format!("{t}")]);
        }
    }
    print_table(
        &[
            "n",
            "mean_|dev|",
            "max_|dev|",
            "sqrt(n ln n)",
            "within",
            "in [n/3,2n/3]",
            "mean_time",
        ],
        &rows,
    );
    println!("\n(expected |dev| for a fair binomial is ~sqrt(n/2pi); O(log n) completion time)");
    write_csv(
        "table_partition",
        &["n", "abs_deviation", "completion_time"],
        &csv,
    );
}
