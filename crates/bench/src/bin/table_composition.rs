//! **Composition**: uniformized downstream protocols (§1.1).
//!
//! The paper's composition scheme (weak estimate + leaderless phase clock +
//! restart) should make the nonuniform cancellation/doubling majority and
//! the coin-tournament leader election *uniform* at a constant-factor time
//! cost. Measured: correctness of both against the nonuniform reference.

use pp_baselines::leader_election::run_uniform_election;
use pp_baselines::majority::{run_nonuniform_majority, run_uniform_majority};
use pp_bench::{fmt, print_table, write_csv, HarnessArgs};
use pp_sweep::trials::run_trials_threaded;

fn main() {
    let args = HarnessArgs::parse(&[200, 500, 1000], 8);
    println!(
        "Composition framework: uniformized majority and leader election (trials={})",
        args.trials
    );

    println!("\nMajority with a 60/40 split:");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &args.sizes {
        let ones = (n as usize) * 3 / 5;
        let uni = run_trials_threaded(args.seed ^ n, args.trials, args.threads, |_, seed| {
            run_uniform_majority(n as usize, ones, seed, 1e8)
        });
        let non = run_trials_threaded(args.seed ^ n ^ 9, args.trials, args.threads, |_, seed| {
            run_nonuniform_majority(n as usize, ones, seed, 1e8)
        });
        let uni_correct = uni.iter().filter(|o| o.value.winner == Some(1)).count();
        let non_correct = non.iter().filter(|o| o.value.winner == Some(1)).count();
        let ut: Vec<f64> = uni.iter().map(|o| o.value.time).collect();
        let nt: Vec<f64> = non.iter().map(|o| o.value.time).collect();
        let us = pp_analysis::stats::Summary::of(&ut);
        let ns = pp_analysis::stats::Summary::of(&nt);
        rows.push(vec![
            n.to_string(),
            format!("{}/{}", uni_correct, uni.len()),
            format!("{}/{}", non_correct, non.len()),
            fmt(us.mean),
            fmt(ns.mean),
            fmt(us.mean / ns.mean),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", uni_correct as f64 / uni.len() as f64),
            format!("{}", us.mean),
            format!("{}", ns.mean),
        ]);
    }
    print_table(
        &[
            "n",
            "uniform_correct",
            "nonuniform_correct",
            "uniform_time",
            "nonuniform_time",
            "overhead",
        ],
        &rows,
    );

    println!("\nLeader election (coin tournament):");
    let mut rows2 = Vec::new();
    for &n in &args.sizes {
        let outs = run_trials_threaded(args.seed ^ n ^ 21, args.trials, args.threads, |_, seed| {
            run_uniform_election(n as usize, seed, 1e8)
        });
        let unique = outs.iter().filter(|o| o.value.contenders == 1).count();
        let nonzero = outs.iter().filter(|o| o.value.contenders >= 1).count();
        let times: Vec<f64> = outs.iter().map(|o| o.value.time).collect();
        let s = pp_analysis::stats::Summary::of(&times);
        rows2.push(vec![
            n.to_string(),
            format!("{}/{}", unique, outs.len()),
            format!("{}/{}", nonzero, outs.len()),
            fmt(s.mean),
        ]);
    }
    print_table(
        &["n", "unique_leader", ">=1 contender", "mean_time"],
        &rows2,
    );
    println!("\n(>=1 contender must be ALL trials — elimination can never kill the last one;");
    println!(" the uniform/nonuniform overhead should be a modest constant)");
    write_csv(
        "table_composition",
        &[
            "n",
            "uniform_majority_correct",
            "uniform_time",
            "nonuniform_time",
        ],
        &csv,
    );
}
