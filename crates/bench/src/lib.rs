//! # pp-bench — experiment harness utilities
//!
//! *Layer 5 (sweep & service) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! Shared plumbing for the harness binaries in `src/bin/`, each of which
//! regenerates one figure or table of the paper's evaluation (see
//! `DESIGN.md` §3 for the experiment index). Every binary:
//!
//! 1. prints the rows it generates to stdout (aligned table),
//! 2. writes the same rows to `results/<name>.csv`,
//! 3. accepts `--sizes n1,n2,...`, `--trials T`, `--seed S`, `--threads W`,
//!    `--journal PATH`, and `--full` where meaningful.
//!
//! The sweep-shaped binaries (`table_epidemic`, `table_time_scaling`,
//! `table_baseline_estimators`, `table_leader_termination`,
//! `table_error_band`, `table_prob1_upper`, and the generic `sweep` CLI)
//! run on the `pp-sweep` orchestration layer: experiments come from the
//! [`experiments`] registry, trials fan out over a seeded worker pool
//! (output independent of thread count), `--journal` makes runs
//! resumable — carrying each trial's engine telemetry counters (rendered
//! by the `pp-report` binary) — and the `PP_SWEEP_TRIALS` environment
//! variable caps trial counts so CI can smoke-run every table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use pp_sweep::SweepSpec;

pub mod client;
pub mod experiments;

/// The workspace root (compile-time anchor: two levels above this
/// crate's manifest).
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

/// Returns (and creates) the `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Rebases a relative journal path onto the workspace root, so journals
/// land (and are found again on resume) next to the `results/` outputs no
/// matter which directory the binary was invoked from. Absolute paths are
/// left alone.
pub fn anchor_journal(spec: &mut SweepSpec) {
    if let Some(path) = &spec.journal {
        if path.is_relative() {
            spec.journal = Some(workspace_root().join(path));
        }
    }
}

/// Writes rows as CSV under `results/`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("\n[csv] {}", path.display());
}

/// Renders an aligned text table to a string (the form the report
/// renderers unit-test against).
pub fn table_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        out.push_str(&format!("  {}\n", line.join("  ")));
    };
    push_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    push_row(&rule);
    for row in rows {
        push_row(row);
    }
    out
}

/// Prints an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    print!("{}", table_string(header, rows));
}

/// Renders a scatter of `(x, y)` points as ASCII art with a log-scaled x
/// axis — the shape of the paper's Figure 2.
pub fn ascii_scatter_logx(points: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 5);
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let lx: Vec<f64> = points.iter().map(|p| p.0.log10()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let (x_min, x_max) = bounds(&lx);
    let (y_min, y_max) = bounds(&ys);
    let x_span = (x_max - x_min).max(1e-9);
    let y_span = (y_max - y_min).max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    for (&x, &y) in lx.iter().zip(&ys) {
        let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = b'o';
    }
    let mut out = String::new();
    out.push_str(&format!("  y: {y_min:.1} .. {y_max:.1} (parallel time)\n"));
    for row in grid {
        out.push_str("  |");
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "   x: 10^{x_min:.1} .. 10^{x_max:.1} (population size, log scale)\n"
    ));
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// Minimal CLI parsing shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Population sizes to sweep.
    pub sizes: Vec<u64>,
    /// Trials per size.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Whether the expensive extension (`--full`) was requested.
    pub full: bool,
    /// Worker threads (defaults to available parallelism, capped at 24).
    pub threads: usize,
    /// Journal path for resumable sweeps (`--journal PATH`).
    pub journal: Option<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, with defaults supplied by the binary.
    pub fn parse(default_sizes: &[u64], default_trials: usize) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut sizes: Vec<u64> = default_sizes.to_vec();
        let mut trials = default_trials;
        let mut seed = 1u64;
        let mut full = false;
        let mut threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(24);
        let mut journal = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--sizes" => {
                    i += 1;
                    sizes = args
                        .get(i)
                        .expect("--sizes needs a value")
                        .split(',')
                        .map(|s| s.parse().expect("size must be an integer"))
                        .collect();
                }
                "--trials" => {
                    i += 1;
                    trials = args
                        .get(i)
                        .expect("--trials needs a value")
                        .parse()
                        .expect("trials must be an integer");
                }
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer");
                }
                "--threads" => {
                    i += 1;
                    threads = args
                        .get(i)
                        .expect("--threads needs a value")
                        .parse()
                        .expect("threads must be an integer");
                }
                "--journal" => {
                    i += 1;
                    journal = Some(args.get(i).expect("--journal needs a path").clone());
                }
                "--full" => full = true,
                other => panic!(
                    "unknown argument {other}; supported: --sizes --trials --seed --threads \
                     --journal --full"
                ),
            }
            i += 1;
        }
        Self {
            sizes,
            trials,
            seed,
            full,
            threads,
            journal,
        }
    }

    /// Builds a [`SweepSpec`] named `name` from these arguments: the
    /// harness grid, master seed, thread count, and journal path carry
    /// over (relative journal paths are anchored at the workspace root,
    /// like every other results file), and `PP_SWEEP_TRIALS` caps the
    /// trial count via [`SweepSpec::effective_trials`].
    pub fn sweep_spec(&self, name: &str) -> SweepSpec {
        let mut spec = SweepSpec::new(name, self.sizes.clone(), self.trials);
        spec.master_seed = self.seed;
        spec.threads = self.threads;
        spec.journal = self.journal.clone().map(PathBuf::from);
        anchor_journal(&mut spec);
        spec
    }
}

/// Runs a sweep and exits with a readable error on failure — the shared
/// entry point of the migrated `table_*` binaries.
pub fn run_sweep_or_exit(
    spec: &SweepSpec,
    experiments: &[pp_sweep::SweepExperiment],
) -> pp_sweep::SweepReport {
    pp_sweep::run_sweep(spec, experiments).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_does_not_panic() {
        print_table(
            &["n", "time"],
            &[
                vec!["100".into(), "12.5".into()],
                vec!["100000".into(), "3.25".into()],
            ],
        );
    }

    #[test]
    fn scatter_renders_all_points() {
        let pts = vec![(100.0, 10.0), (1000.0, 20.0), (10000.0, 40.0)];
        let art = ascii_scatter_logx(&pts, 40, 10);
        // Count markers only on grid lines (axis labels contain 'o' too).
        let markers: usize = art
            .lines()
            .filter(|l| l.starts_with("  |"))
            .map(|l| l.matches('o').count())
            .sum();
        assert_eq!(markers, 3);
        assert!(art.contains("log scale"));
    }

    #[test]
    fn scatter_handles_single_point() {
        let art = ascii_scatter_logx(&[(100.0, 5.0)], 20, 5);
        let markers: usize = art
            .lines()
            .filter(|l| l.starts_with("  |"))
            .map(|l| l.matches('o').count())
            .sum();
        assert!(markers >= 1);
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(4.6512), "4.651");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(123456.7), "123457");
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }
}
