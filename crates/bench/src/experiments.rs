//! The experiment registry: every paper measurement as a named
//! [`SweepExperiment`].
//!
//! This is the binding layer between the protocol crates and the sweep
//! orchestrator: the migrated `table_*` binaries and the `sweep` CLI both
//! resolve experiments here, so a measurement is defined exactly once. A
//! registry experiment maps one [`pp_sweep::TrialCtx`] — grid population size,
//! derived seed, engine policy — to a fixed vector of named metrics
//! (NaN = the trial did not produce that metric).
//!
//! The engine policy reaches the experiments that expose an
//! engine-selection hook (the epidemics and, since interner GC made the
//! count engine the default for counter-churning protocols, the
//! `logsize_estimate` / `leader_termination` paper measurements); the
//! others run on the engine their protocol helper picks (documented per
//! entry below).

use pp_analysis::balls_bins::{simulate_balls_bins, simulate_worst_case_consumption};
use pp_analysis::geometric::{logsize2_band, max_geometric_sample};
use pp_analysis::subexp::d10_min_k;
use pp_baselines::alistarh::weak_estimate;
use pp_baselines::exact_backup::run_backup;
use pp_baselines::exact_leader::run_exact_count;
use pp_baselines::intro_functions::{double_time, halve_time};
use pp_core::leader::terminating_in_mode;
use pp_core::log_size::{estimate_in_mode, estimate_log_size, estimate_with, LogSizeEstimation};
use pp_core::partition::run_partition;
use pp_core::synthetic::estimate_log_size_synthetic;
use pp_core::upper_bound::estimate_upper_bound;
use pp_engine::epidemic::{InfectionEpidemic, SubState, SubpopulationEpidemic};
use pp_engine::rng::rng_from_seed;
use pp_engine::{count_of, Simulation};
use pp_sweep::SweepExperiment;
use pp_termination::experiment::counter_signal_trial;

/// The `Log-Size-Estimation` accuracy band of Theorem 3.1 (`|output −
/// log₂ n| ≤ 5.7` w.h.p.), shared by the estimator and termination
/// experiments.
pub const ACCURACY_BAND: f64 = 5.7;

/// Fixed population for the `ablation` experiment — its grid axis
/// carries the constant pair, not a population size.
pub const ABLATION_N: u64 = 1_000;

/// Encodes a `(clock multiplier, epoch multiplier)` constant pair onto
/// the `ablation` experiment's size axis (`clock·100 + epochs` — epoch
/// multipliers are single-digit-to-tens, so the encoding is unambiguous).
pub fn ablation_code(clock: u64, epochs: u64) -> u64 {
    debug_assert!(epochs < 100, "epoch multiplier overflows the encoding");
    clock * 100 + epochs
}

/// Inverse of [`ablation_code`].
pub fn ablation_decode(code: u64) -> (u64, u64) {
    (code / 100, code % 100)
}

/// Names of every registered experiment, in registry order.
pub fn names() -> &'static [&'static str] {
    &[
        "epidemic_full",
        "epidemic_sub3",
        "logsize_estimate",
        "weak_estimator",
        "exact_backup",
        "prob1_upper",
        "exact_leader_count",
        "leader_termination",
        "counter_signal",
        "logsize2_band",
        "state_bounds",
        "partition",
        "geometric_maxima",
        "intro_functions",
        "ablation",
        "timer_lemma",
        "synthetic_coin",
    ]
}

/// Builds the registry experiment with the given name, or `None` for an
/// unknown name.
pub fn experiment(name: &str) -> Option<SweepExperiment> {
    Some(match name {
        // Full-population one-way epidemic (Lemma A.1): completion time.
        // The spec's engine policy reaches the builder via `.mode(ctx.engine)`.
        "epidemic_full" => SweepExperiment::new("epidemic_full", &["time"], |ctx| {
            let n = ctx.n;
            let (out, _) = Simulation::count_builder(InfectionEpidemic)
                .config([(false, n - 1), (true, 1)])
                .seed(ctx.seed)
                .mode(ctx.engine)
                .check_every((n / 10).max(1))
                .until(move |view| count_of(view, &true) == n)
                .run();
            debug_assert!(out.converged);
            vec![out.time]
        })
        .with_engine_hook(),
        // Epidemic confined to an n/3 subpopulation (Corollary 3.4).
        // Honors the spec's engine policy through the same builder hook.
        "epidemic_sub3" => SweepExperiment::new("epidemic_sub3", &["time"], |ctx| {
            let (n, a) = (ctx.n, ctx.n / 3);
            let member_inf = SubState {
                member: true,
                infected: true,
            };
            let member_sus = SubState {
                member: true,
                infected: false,
            };
            let outsider = SubState {
                member: false,
                infected: false,
            };
            let (out, _) = Simulation::count_builder(SubpopulationEpidemic)
                .config([(member_inf, 1), (member_sus, a - 1), (outsider, n - a)])
                .seed(ctx.seed)
                .mode(ctx.engine)
                .check_every((n / 10).max(1))
                .until(move |view| count_of(view, &member_inf) == a)
                .run();
            debug_assert!(out.converged);
            vec![out.time]
        })
        .with_engine_hook(),
        // The paper's Log-Size-Estimation protocol (Theorem 3.1): signed
        // additive error (NaN if the run did not converge to an output)
        // and convergence time. Runs on the count engine by default
        // (interner GC keeps the table at live-support size despite the
        // per-interaction counters); a spec's engine policy reaches it
        // through `estimate_in_mode`.
        "logsize_estimate" => {
            SweepExperiment::new("logsize_estimate", &["err", "time", "converged"], |ctx| {
                let out = estimate_in_mode(
                    LogSizeEstimation::paper(),
                    ctx.n as usize,
                    ctx.seed,
                    None,
                    ctx.engine.into(),
                );
                vec![
                    out.error(ctx.n).unwrap_or(f64::NAN),
                    out.time,
                    f64::from(out.converged),
                ]
            })
            .with_engine_hook()
        }
        // Alistarh et al.'s max-geometric weak estimator: signed error of
        // the settled maximum vs log₂ n, and agreement time. Runs on
        // `ConfigSim` (adaptive).
        "weak_estimator" => SweepExperiment::new("weak_estimator", &["err", "time"], |ctx| {
            let out = weak_estimate(ctx.n as usize, ctx.seed);
            vec![out.estimate as f64 - (ctx.n as f64).log2(), out.time]
        }),
        // The §3.3 `l_i/f_i` exact backup: time to silence and whether the
        // maximum level hit `⌊log₂ n⌋` exactly. Ω(n) time per trial, so
        // capped at 5 trials per point.
        "exact_backup" => SweepExperiment::new("exact_backup", &["time", "exact"], |ctx| {
            let out = run_backup(ctx.n, ctx.seed);
            let exact = out.max_level as f64 == (ctx.n as f64).log2().floor();
            vec![out.silent_time, f64::from(exact)]
        })
        .with_max_trials(5),
        // The §3.3 probability-1 upper bound: the reported
        // `max(k_fast + 4, kex + 1)` and the backup's exact `kex`. The
        // backup needs Ω(n) extra time after the fast part converges, so
        // capped at 10 trials per point.
        "prob1_upper" => SweepExperiment::new("prob1_upper", &["report", "kex"], |ctx| {
            let out = estimate_upper_bound(ctx.n as usize, ctx.seed, 30.0 * ctx.n as f64);
            vec![out.report as f64, out.kex as f64]
        })
        .with_max_trials(10),
        // Michail-style exact leader count: time and exactness. Ω(n log n)
        // time per trial, so capped at 5 trials per point.
        "exact_leader_count" => {
            SweepExperiment::new("exact_leader_count", &["time", "exact"], |ctx| {
                let out = run_exact_count(ctx.n as usize, ctx.seed, 1e9);
                vec![out.time, f64::from(out.count == ctx.n)]
            })
            .with_max_trials(5)
        }
        // Theorem 3.13 leader-driven terminating estimation: whether the
        // signal fired, when (NaN if never), the majority output (NaN if
        // none), whether it was within the accuracy band, and the
        // agreement fraction at the freeze. Count engine by default, like
        // `logsize_estimate`; the spec's engine policy reaches it through
        // `terminating_in_mode`.
        "leader_termination" => SweepExperiment::new(
            "leader_termination",
            &["terminated", "term_time", "output", "correct", "agreement"],
            |ctx| {
                let out = terminating_in_mode(ctx.n as usize, ctx.seed, 1e8, ctx.engine.into());
                let correct = out
                    .output
                    .map(|k| (k as f64 - (ctx.n as f64).log2()).abs() <= ACCURACY_BAND)
                    .unwrap_or(false);
                vec![
                    f64::from(out.terminated),
                    if out.terminated {
                        out.termination_time
                    } else {
                        f64::NAN
                    },
                    out.output.map(|k| k as f64).unwrap_or(f64::NAN),
                    f64::from(correct),
                    out.agreement,
                ]
            },
        )
        .with_engine_hook(),
        // Theorem 4.1: signal time of the threshold-8 Figure-1 counter
        // started dense — flat in n for any uniform protocol.
        "counter_signal" => SweepExperiment::new("counter_signal", &["time"], |ctx| {
            vec![counter_signal_trial(ctx.n, 8, ctx.seed)]
        }),
        // Lemma 3.8 logSize2 band, protocol-in-the-loop: the value the
        // full protocol settles on and whether it landed inside
        // `[log n − log ln n, 2 log n + 1]` (the fast Monte-Carlo half of
        // the lemma's table stays in its harness binary — it samples raw
        // geometrics, not a population).
        "logsize2_band" => SweepExperiment::new("logsize2_band", &["logsize2", "in_band"], |ctx| {
            let v = estimate_log_size(ctx.n as usize, ctx.seed, None)
                .maxima
                .log_size2 as f64;
            let (lo, hi) = logsize2_band(ctx.n);
            vec![v, f64::from(v >= lo && v <= hi)]
        }),
        // Lemma 3.9 field ranges: the per-trial maxima of every
        // `Log-Size-Estimation` field plus the implied state-count
        // estimate. The harness binary folds the across-trial maxima back
        // into a `FieldMaxima` for the `O(log⁴ n)` table.
        "state_bounds" => SweepExperiment::new(
            "state_bounds",
            &["log_size2", "gr", "time", "epoch", "sum", "states"],
            |ctx| {
                let maxima = estimate_log_size(ctx.n as usize, ctx.seed, None).maxima;
                vec![
                    maxima.log_size2 as f64,
                    maxima.gr as f64,
                    maxima.time as f64,
                    maxima.epoch as f64,
                    maxima.sum as f64,
                    maxima.state_count_estimate() as f64,
                ]
            },
        ),
        // Lemma 3.2 / Corollary 3.3 role partition: |A|, its absolute
        // deviation from n/2, and the completion time. Runs on the count
        // engines (batched at scale).
        "partition" => SweepExperiment::new("partition", &["a_count", "abs_dev", "time"], |ctx| {
            let out = run_partition(ctx.n as usize, ctx.seed);
            vec![
                out.a_count as f64,
                (out.a_count as f64 - ctx.n as f64 / 2.0).abs(),
                out.time,
            ]
        }),
        // Appendix D geometric maxima (Lemmas D.4/D.10): one trial = one
        // max of N geometrics plus one Corollary-D.10 average of
        // K = ⌈4 log N⌉ such maxima (`n` plays the role of N — no
        // population is simulated).
        "geometric_maxima" => {
            SweepExperiment::new("geometric_maxima", &["max", "d10_avg"], |ctx| {
                let mut rng = rng_from_seed(ctx.seed);
                let max = max_geometric_sample(ctx.n, &mut rng) as f64;
                let k = d10_min_k(ctx.n);
                let sum: u64 = (0..k).map(|_| max_geometric_sample(ctx.n, &mut rng)).sum();
                vec![max, sum as f64 / k as f64]
            })
        }
        // The §1 intro example: `x, q → y, y` doubling completes in
        // O(log n) time, `x, x → y, q` halving in Θ(n) — one trial runs
        // both at input `x = n/4` (doubling's fuel stays plentiful).
        // Halving is Θ(n²) interactions, so callers keep the size axis
        // modest and the trial cap low.
        "intro_functions" => {
            SweepExperiment::new("intro_functions", &["double_time", "halve_time"], |ctx| {
                let x = ctx.n / 4;
                let (_, double) = double_time(ctx.n, x, ctx.seed);
                let (_, halve) = halve_time(ctx.n, x, ctx.seed ^ 1);
                vec![double, halve]
            })
            .with_max_trials(8)
        }
        // Constant ablation of `Log-Size-Estimation` at a fixed
        // population of [`ABLATION_N`]: the grid axis carries the
        // `(clock multiplier, epoch multiplier)` pair via
        // [`ablation_code`]. Signed error (NaN if the run produced no
        // output), convergence time, and the converged flag.
        "ablation" => SweepExperiment::new("ablation", &["err", "time", "converged"], |ctx| {
            let (clock, epochs) = ablation_decode(ctx.n);
            let protocol = LogSizeEstimation::with_constants(clock, epochs, 2);
            let out = estimate_with(protocol, ABLATION_N as usize, ctx.seed, Some(1e7));
            vec![
                out.error(ABLATION_N).unwrap_or(f64::NAN),
                out.time,
                f64::from(out.converged),
            ]
        }),
        // Appendix E timer lemma (E.1 balls-into-bins, E.3 worst-case
        // consumption): one trial throws `m = n/2` balls at `k = n/2`
        // empty bins and reports the bins still empty, then runs the
        // worst-case consumption process on a count-`k` state for one
        // unit of time and reports the surviving count.
        "timer_lemma" => {
            SweepExperiment::new("timer_lemma", &["e1_remaining", "e3_survivors"], |ctx| {
                let k = ctx.n / 2;
                let mut rng = rng_from_seed(ctx.seed);
                let remaining = simulate_balls_bins(ctx.n, k, k, &mut rng) as f64;
                let survivors = simulate_worst_case_consumption(ctx.n, k, 1.0, &mut rng) as f64;
                vec![remaining, survivors]
            })
        }
        // Appendix B synthetic-coin variant (Lemma B.5) vs the randomized
        // main protocol: one trial runs both (disjoint seed streams),
        // reporting the synthetic run's convergence time and per-agent
        // output range beside the main protocol's time. Outputs are
        // per-agent, so `min_output`/`max_output` bound the spread;
        // coin harvesting costs an extra epidemic per geometric, so
        // callers keep the size axis modest.
        "synthetic_coin" => SweepExperiment::new(
            "synthetic_coin",
            &["synth_time", "main_time", "min_output", "max_output"],
            |ctx| {
                let synth = estimate_log_size_synthetic(ctx.n as usize, ctx.seed, 1e8);
                let main = estimate_log_size(ctx.n as usize, ctx.seed ^ 1, None);
                vec![
                    synth.time,
                    main.time,
                    synth.min_output as f64,
                    synth.max_output as f64,
                ]
            },
        ),
        _ => return None,
    })
}

/// Resolves a list of registry names, failing with the full catalogue on
/// the first unknown name.
pub fn build(requested: &[impl AsRef<str>]) -> Result<Vec<SweepExperiment>, String> {
    if requested.is_empty() {
        return Err(format!(
            "no experiments requested; available: {}",
            names().join(", ")
        ));
    }
    requested
        .iter()
        .map(|name| {
            let name = name.as_ref();
            experiment(name).ok_or_else(|| {
                format!(
                    "unknown experiment {name:?}; available: {}",
                    names().join(", ")
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        for &name in names() {
            let exp = experiment(name).expect(name);
            assert_eq!(exp.name(), name);
            assert!(!exp.metrics().is_empty());
        }
    }

    #[test]
    fn unknown_names_list_the_catalogue() {
        assert!(experiment("nope").is_none());
        let err = build(&["epidemic_full", "nope"]).unwrap_err();
        assert!(
            err.contains("nope") && err.contains("epidemic_full"),
            "{err}"
        );
        assert!(build(&Vec::<String>::new()).is_err());
    }

    #[test]
    fn epidemic_trial_produces_sane_time() {
        let exp = experiment("epidemic_full").unwrap();
        let report =
            pp_sweep::run_sweep(&pp_sweep::SweepSpec::new("t", vec![1_000], 3), &[exp]).unwrap();
        let mean = report.point("epidemic_full", 1_000).mean("time");
        assert!(mean > 2.0 && mean < 60.0, "epidemic mean time {mean}");
    }
}
