//! `pp-server` — the durable sweep job service daemon.
//!
//! ```text
//! pp-server [--port N] [--port-file PATH] [--jobs-dir DIR]
//!           [--workers N] [--http-pool N] [--max-retries N]
//! ```
//!
//! * `--port 0` (the default) binds an ephemeral loopback port;
//!   `--port-file` writes the bound port as decimal text once listening,
//!   so scripts can start the server and discover the address racelessly.
//! * `--jobs-dir` sets the store root; defaults to `PP_JOBS_DIR`
//!   (see `pp_engine::env::jobs_dir`) and then `<workspace>/jobs`.
//! * `--workers` sweep workers (default 1 — jobs run one at a time, in
//!   submission order; each sweep still parallelizes per its spec).
//! * `--max-retries` applied to specs that do not set their own.
//!
//! Experiments are resolved through the shared `pp_bench::experiments`
//! registry, so any spec the `sweep` CLI accepts is accepted here too.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::exit;

use pp_server::{http, Service, ServiceConfig};

fn die(msg: &str) -> ! {
    eprintln!("pp-server: {msg}");
    exit(2);
}

struct Args {
    port: u16,
    port_file: Option<PathBuf>,
    jobs_dir: PathBuf,
    workers: usize,
    http_pool: usize,
    max_retries: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: pp-server [--port N] [--port-file PATH] [--jobs-dir DIR] \
         [--workers N] [--http-pool N] [--max-retries N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        port_file: None,
        jobs_dir: pp_engine::env::jobs_dir()
            .unwrap_or_else(|| pp_bench::workspace_root().join("jobs")),
        workers: 1,
        http_pool: 8,
        max_retries: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| die("--port must be a u16"));
            }
            "--port-file" => args.port_file = Some(PathBuf::from(value("--port-file"))),
            "--jobs-dir" => args.jobs_dir = PathBuf::from(value("--jobs-dir")),
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers must be a positive integer"));
            }
            "--http-pool" => {
                args.http_pool = value("--http-pool")
                    .parse()
                    .unwrap_or_else(|_| die("--http-pool must be a positive integer"));
            }
            "--max-retries" => {
                args.max_retries = value("--max-retries")
                    .parse()
                    .unwrap_or_else(|_| die("--max-retries must be an integer"));
            }
            "--help" | "-h" => usage(),
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let service = Service::open(
        ServiceConfig {
            jobs_dir: args.jobs_dir.clone(),
            workers: args.workers,
            default_max_retries: args.max_retries,
        },
        Box::new(|spec| pp_bench::experiments::build(&spec.experiments)),
    )
    .unwrap_or_else(|e| die(&e));
    service.start();
    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .unwrap_or_else(|e| die(&format!("cannot bind 127.0.0.1:{}: {e}", args.port)));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot read bound address: {e}")));
    if let Some(port_file) = &args.port_file {
        std::fs::write(port_file, format!("{}\n", addr.port()))
            .unwrap_or_else(|e| die(&format!("cannot write port file: {e}")));
    }
    eprintln!(
        "[server] listening on http://{addr} (jobs dir {})",
        args.jobs_dir.display()
    );
    http::serve(service, listener, args.http_pool);
}
