//! The directory-per-job persistent store.
//!
//! One directory per job under the store root:
//!
//! ```text
//! jobs/
//!   000001-8c5f3a2e91b04d17/
//!     spec.toml        # the submitted spec body, byte-for-byte
//!     meta.jsonl       # job identity + state transitions (CRC'd JSONL)
//!     journal.jsonl    # the sweep runner's trial journal (CRC'd JSONL)
//!     summary.csv      # emitted on completion (same bytes as `sweep <spec>`)
//!     trials.csv
//!     report.json
//! ```
//!
//! Job ids are `<seq:06>-<fingerprint:016x>`: the submission sequence
//! number plus the grid fingerprint ([`pp_sweep::grid_fingerprint`]), so
//! resubmitting an identical spec finds the existing job instead of
//! duplicating work.
//!
//! `meta.jsonl` uses the same line discipline as the sweep journal and
//! the telemetry trace: one JSON document per line, each carrying a
//! trailing CRC-32 of the line as composed (the fixed-width
//! `,"crc":"xxxxxxxx"}` suffix). [`pp_telemetry::read_trace`] is the
//! reader — a torn final line from a crash is dropped, earlier corruption
//! is a hard error. The first line identifies the job; every state
//! transition appends one `{"event":"state",...}` line and is fsync'd, so
//! a job's lifecycle survives a `kill -9` at any point:
//!
//! ```text
//! {"event":"job","id":"000001-…","seq":1,"name":"epidemic","fingerprint":"8c5f…","spec":"spec.toml","total":8,"crc":"…"}
//! {"event":"state","state":"queued","crc":"…"}
//! {"event":"state","state":"running","crc":"…"}
//! {"event":"state","state":"done","crc":"…"}
//! ```
//!
//! Recovery reads the **last** state line (torn tails fall back to the
//! previous state): a job found `queued` or `running` was interrupted and
//! is re-enqueued; the sweep runner then resumes from `journal.jsonl`,
//! so no completed trial is ever re-executed. No line carries a wall
//! clock — the store is a pure function of the submissions it accepted,
//! which is what makes kill/restart byte-identity testable.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use pp_engine::snapshot::crc32;
use pp_sweep::json;

/// A job's lifecycle state. `queued → running → done|failed|cancelled`;
/// `failed` and `cancelled` jobs may be re-queued by resubmitting their
/// spec (the journal makes the re-run a resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is driving the sweep.
    Running,
    /// Completed; report files are in the job directory.
    Done,
    /// The run errored (journal conflict, resolver failure, …).
    Failed,
    /// Cancelled at a trial boundary; the journal is a valid resume point.
    Cancelled,
}

impl JobState {
    /// Stable lowercase name (wire format and `meta.jsonl` key).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the state is final (no worker will touch the job again).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A job restored from (or just written to) its directory.
#[derive(Debug, Clone)]
pub struct StoredJob {
    /// `<seq:06>-<fingerprint:016x>`.
    pub id: String,
    /// Submission sequence number.
    pub seq: u64,
    /// Grid fingerprint of the parsed spec.
    pub fingerprint: u64,
    /// Sweep name (from the spec).
    pub name: String,
    /// Total trials in the grid.
    pub total: usize,
    /// Last durably recorded state.
    pub state: JobState,
    /// Failure/cancellation detail from the last state line, if any.
    pub detail: Option<String>,
    /// The submitted spec body, byte-for-byte.
    pub spec_text: String,
    /// The job's directory.
    pub dir: PathBuf,
}

/// Handle on the store root; all operations are path-relative to it.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create jobs dir {}: {e}", root.display()))?;
        Ok(Self { root })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory of job `id`.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Creates a new job directory: the spec body (written verbatim, so
    /// the job can be re-parsed forever), the identity line, and a
    /// `queued` state line.
    ///
    /// # Errors
    ///
    /// IO failures; an already-existing directory for the id.
    pub fn create_job(
        &self,
        seq: u64,
        fingerprint: u64,
        name: &str,
        spec_text: &str,
        total: usize,
    ) -> Result<StoredJob, String> {
        let id = job_id(seq, fingerprint);
        let dir = self.job_dir(&id);
        if dir.exists() {
            return Err(format!("job dir {} already exists", dir.display()));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create job dir {}: {e}", dir.display()))?;
        let spec_file = spec_file_name(spec_text);
        std::fs::write(dir.join(spec_file), spec_text)
            .map_err(|e| format!("cannot write job spec: {e}"))?;
        let mut line = String::from("{\"event\":\"job\",\"id\":");
        json::write_str(&mut line, &id);
        line.push_str(&format!(",\"seq\":{seq},\"name\":"));
        json::write_str(&mut line, name);
        line.push_str(&format!(
            ",\"fingerprint\":\"{fingerprint:016x}\",\"spec\":\"{spec_file}\",\"total\":{total}}}"
        ));
        append_meta(&dir, line)?;
        self.append_state(&id, JobState::Queued, None)?;
        Ok(StoredJob {
            id,
            seq,
            fingerprint,
            name: name.to_string(),
            total,
            state: JobState::Queued,
            detail: None,
            spec_text: spec_text.to_string(),
            dir,
        })
    }

    /// Durably appends one state transition to the job's `meta.jsonl`.
    ///
    /// # Errors
    ///
    /// IO failures (including an unknown job id).
    pub fn append_state(
        &self,
        id: &str,
        state: JobState,
        detail: Option<&str>,
    ) -> Result<(), String> {
        let mut line = format!("{{\"event\":\"state\",\"state\":\"{}\"", state.name());
        if let Some(detail) = detail {
            line.push_str(",\"detail\":");
            json::write_str(&mut line, detail);
        }
        line.push('}');
        append_meta(&self.job_dir(id), line)
    }

    /// Restores one job from its directory.
    ///
    /// # Errors
    ///
    /// Missing/corrupt `meta.jsonl` or spec file.
    pub fn load_job(&self, id: &str) -> Result<StoredJob, String> {
        let dir = self.job_dir(id);
        let meta_path = dir.join("meta.jsonl");
        let lines = pp_telemetry::read_trace(&meta_path)?;
        let first = lines
            .first()
            .ok_or_else(|| format!("{}: empty meta journal", meta_path.display()))?;
        let doc = json::parse(first).map_err(|e| format!("{}: {e}", meta_path.display()))?;
        if doc.get("event").and_then(json::Value::as_str) != Some("job") {
            return Err(format!(
                "{}: first line is not a job identity line",
                meta_path.display()
            ));
        }
        let field_str = |key: &str| {
            doc.get(key)
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("{}: missing field {key:?}", meta_path.display()))
        };
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("{}: missing field {key:?}", meta_path.display()))
        };
        let fingerprint = u64::from_str_radix(field_str("fingerprint")?, 16)
            .map_err(|_| format!("{}: malformed fingerprint", meta_path.display()))?;
        let spec_file = field_str("spec")?.to_string();
        let spec_text = std::fs::read_to_string(dir.join(&spec_file))
            .map_err(|e| format!("cannot read {}/{spec_file}: {e}", dir.display()))?;
        // Last state line wins; a torn tail was already dropped by the
        // reader, so we fall back to the previous durable state.
        let mut state = JobState::Queued;
        let mut detail = None;
        for line in &lines[1..] {
            let doc = json::parse(line).map_err(|e| format!("{}: {e}", meta_path.display()))?;
            if doc.get("event").and_then(json::Value::as_str) != Some("state") {
                continue;
            }
            let name = doc
                .get("state")
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("{}: state line without state", meta_path.display()))?;
            state = JobState::parse(name)
                .ok_or_else(|| format!("{}: unknown state {name:?}", meta_path.display()))?;
            detail = doc
                .get("detail")
                .and_then(json::Value::as_str)
                .map(String::from);
        }
        Ok(StoredJob {
            id: field_str("id")?.to_string(),
            seq: field_u64("seq")?,
            fingerprint,
            name: field_str("name")?.to_string(),
            total: field_u64("total")? as usize,
            state,
            detail,
            spec_text,
            dir,
        })
    }

    /// Restores every job in the store, in submission (seq) order.
    /// Directories without a readable `meta.jsonl` are skipped with a
    /// warning — one corrupt job must not take the service down.
    ///
    /// # Errors
    ///
    /// Only root-level IO failures.
    pub fn load_all(&self) -> Result<Vec<StoredJob>, String> {
        let mut jobs = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| format!("cannot read jobs dir {}: {e}", self.root.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("jobs dir read error: {e}"))?;
            if !entry.path().is_dir() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().into_owned();
            if !entry.path().join("meta.jsonl").exists() {
                continue;
            }
            match self.load_job(&id) {
                Ok(job) => jobs.push(job),
                Err(e) => eprintln!("[store] skipping unreadable job {id}: {e}"),
            }
        }
        jobs.sort_by_key(|j| j.seq);
        Ok(jobs)
    }

    /// Removes a job directory entirely.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn delete(&self, id: &str) -> Result<(), String> {
        let dir = self.job_dir(id);
        std::fs::remove_dir_all(&dir)
            .map_err(|e| format!("cannot delete job dir {}: {e}", dir.display()))
    }
}

/// The canonical job id: submission sequence + grid fingerprint.
pub fn job_id(seq: u64, fingerprint: u64) -> String {
    format!("{seq:06}-{fingerprint:016x}")
}

/// `spec.json` for a JSON body (leading `{`), `spec.toml` otherwise —
/// the same dispatch [`pp_sweep::SweepSpec::parse_str`] uses.
fn spec_file_name(spec_text: &str) -> &'static str {
    if spec_text.trim_start().starts_with('{') {
        "spec.json"
    } else {
        "spec.toml"
    }
}

/// Appends one composed line to `dir/meta.jsonl` with the workspace's
/// CRC-32 suffix spliced in before the closing brace, then fsyncs: state
/// transitions are rare and must survive a crash immediately after being
/// acknowledged.
fn append_meta(dir: &Path, mut line: String) -> Result<(), String> {
    debug_assert!(line.ends_with('}'));
    let crc = crc32(line.as_bytes());
    line.pop();
    line.push_str(&format!(",\"crc\":\"{crc:08x}\"}}"));
    let path = dir.join("meta.jsonl");
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("meta write failed: {e}"))?;
    file.sync_all()
        .map_err(|e| format!("meta fsync failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> JobStore {
        let root =
            std::env::temp_dir().join(format!("pp-server-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        JobStore::open(root).unwrap()
    }

    #[test]
    fn create_and_reload_round_trips() {
        let store = temp_store("roundtrip");
        let spec = "name = \"t\"\nsizes = [100]\ntrials = 2\nexperiments = [\"epidemic_full\"]\n";
        let job = store.create_job(1, 0xABCD, "t", spec, 2).unwrap();
        assert_eq!(job.id, "000001-000000000000abcd");
        assert_eq!(job.state, JobState::Queued);
        store
            .append_state(&job.id, JobState::Running, None)
            .unwrap();
        store
            .append_state(&job.id, JobState::Failed, Some("boom \"quoted\""))
            .unwrap();
        let loaded = store.load_job(&job.id).unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.fingerprint, 0xABCD);
        assert_eq!(loaded.name, "t");
        assert_eq!(loaded.total, 2);
        assert_eq!(loaded.state, JobState::Failed);
        assert_eq!(loaded.detail.as_deref(), Some("boom \"quoted\""));
        assert_eq!(loaded.spec_text, spec);
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 1);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn torn_final_state_line_falls_back() {
        let store = temp_store("torn");
        let job = store.create_job(1, 7, "t", "name = \"t\"\n", 4).unwrap();
        store
            .append_state(&job.id, JobState::Running, None)
            .unwrap();
        store.append_state(&job.id, JobState::Done, None).unwrap();
        // Tear the final (done) line mid-write: recovery must fall back
        // to `running`, i.e. the job is re-enqueued and resumes.
        let meta = job.dir.join("meta.jsonl");
        let text = std::fs::read_to_string(&meta).unwrap();
        std::fs::write(&meta, &text[..text.len() - 9]).unwrap();
        let loaded = store.load_job(&job.id).unwrap();
        assert_eq!(loaded.state, JobState::Running);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn json_specs_get_a_json_file() {
        let store = temp_store("json");
        let job = store
            .create_job(2, 1, "j", "{\"name\":\"j\",\"sizes\":[10],\"trials\":1}", 1)
            .unwrap();
        assert!(job.dir.join("spec.json").exists());
        assert!(!job.dir.join("spec.toml").exists());
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn load_all_orders_by_seq_and_skips_junk() {
        let store = temp_store("order");
        store.create_job(2, 2, "b", "name = \"b\"\n", 1).unwrap();
        store.create_job(1, 1, "a", "name = \"a\"\n", 1).unwrap();
        // A stray directory without meta.jsonl is ignored.
        std::fs::create_dir_all(store.root().join("not-a-job")).unwrap();
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, 1);
        assert_eq!(all[1].seq, 2);
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
