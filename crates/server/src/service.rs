//! The job service: queue, worker pool, and per-job runtime state.
//!
//! A [`Service`] owns the [`JobStore`], an in-memory index of
//! [`JobHandle`]s, and a FIFO queue drained by a pool of worker threads.
//! Workers drive [`pp_sweep::run_sweep_with`] with hooks: every landed
//! trial updates the job's Welford progress and counter aggregates and is
//! broadcast to SSE subscribers; the job's cancel flag is honored at
//! trial boundaries. The experiment registry is injected as a
//! [`Resolver`] so the service layer stays independent of any particular
//! experiment catalogue (the `pp-server` binary wires
//! `pp_bench::experiments::build`; tests wire toy closures).

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use pp_analysis::stats::Running;
use pp_sweep::{
    emit, grid_fingerprint, grid_total_trials, json, run_sweep_with, RunHooks, SweepExperiment,
    SweepSpec, TrialEvent,
};
use pp_telemetry::{Counter, Metrics};

use crate::store::{JobState, JobStore, StoredJob};

/// Maps a parsed spec to its experiment closures. Must be deterministic:
/// it is called at submit (validation + fingerprint) and again at run.
pub type Resolver = dyn Fn(&SweepSpec) -> Result<Vec<SweepExperiment>, String> + Send + Sync;

/// Service construction parameters.
pub struct ServiceConfig {
    /// Root of the directory-per-job store.
    pub jobs_dir: PathBuf,
    /// Job worker threads (each runs one sweep at a time; the sweep
    /// itself parallelizes across trials per its spec).
    pub workers: usize,
    /// `max_retries` applied to specs that do not set their own.
    pub default_max_retries: usize,
}

/// Formats one server-sent event frame.
pub fn sse_event(event: &str, data: &str) -> String {
    format!("event: {event}\ndata: {data}\n\n")
}

/// Per-grid-point labels, fixed at run start: experiment, size, metrics.
type PointMeta = (String, u64, Vec<String>);

/// Mutable per-job state, guarded by the handle's mutex.
struct JobInner {
    state: JobState,
    detail: Option<String>,
    completed: usize,
    resumed: usize,
    failed: usize,
    /// Point labels in canonical grid order (filled at run start).
    points_meta: Vec<PointMeta>,
    /// Welford accumulators keyed by `(point, metric index)`.
    progress: BTreeMap<(usize, usize), Running>,
    /// Counter totals across landed trials, keyed by counter name.
    counters: BTreeMap<String, u64>,
}

/// One job's identity plus runtime state. Shared between the queue,
/// the workers, and the HTTP layer via `Arc`.
pub struct JobHandle {
    /// `<seq:06>-<fingerprint:016x>`.
    pub id: String,
    /// Submission sequence number.
    pub seq: u64,
    /// Grid fingerprint of the spec.
    pub fingerprint: u64,
    /// Sweep name.
    pub name: String,
    /// Total trials in the grid.
    pub total: usize,
    /// The submitted spec body.
    pub spec_text: String,
    /// The job's directory in the store.
    pub dir: PathBuf,
    /// Cooperative cancellation; checked at trial boundaries.
    pub cancel: AtomicBool,
    inner: Mutex<JobInner>,
    subscribers: Mutex<Vec<mpsc::Sender<String>>>,
}

impl JobHandle {
    fn new(stored: StoredJob) -> Self {
        Self {
            id: stored.id,
            seq: stored.seq,
            fingerprint: stored.fingerprint,
            name: stored.name,
            total: stored.total,
            spec_text: stored.spec_text,
            dir: stored.dir,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: stored.state,
                detail: stored.detail,
                completed: 0,
                resumed: 0,
                failed: 0,
                points_meta: Vec::new(),
                progress: BTreeMap::new(),
                counters: BTreeMap::new(),
            }),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    fn lock_inner(&self) -> MutexGuard<'_, JobInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The job's current lifecycle state.
    pub fn state(&self) -> JobState {
        self.lock_inner().state
    }

    /// One-line list entry: `{"id":…,"name":…,"state":…,"completed":…,"total":…}`.
    pub fn list_json(&self) -> String {
        let inner = self.lock_inner();
        let mut out = String::from("{\"id\":");
        json::write_str(&mut out, &self.id);
        out.push_str(",\"name\":");
        json::write_str(&mut out, &self.name);
        out.push_str(&format!(
            ",\"state\":\"{}\",\"completed\":{},\"total\":{}}}",
            inner.state.name(),
            inner.completed,
            self.total
        ));
        out
    }

    /// Full status document: identity, state, progress (per-metric
    /// Welford mean ± CI95), and aggregated nonzero counters.
    pub fn status_json(&self) -> String {
        let inner = self.lock_inner();
        self.status_json_locked(&inner)
    }

    fn status_json_locked(&self, inner: &JobInner) -> String {
        let mut out = String::from("{\"id\":");
        json::write_str(&mut out, &self.id);
        out.push_str(",\"name\":");
        json::write_str(&mut out, &self.name);
        out.push_str(&format!(
            ",\"state\":\"{}\",\"fingerprint\":\"{:016x}\",\"total\":{},\"completed\":{},\
             \"resumed\":{},\"failed\":{}",
            inner.state.name(),
            self.fingerprint,
            self.total,
            inner.completed,
            inner.resumed,
            inner.failed
        ));
        if let Some(detail) = &inner.detail {
            out.push_str(",\"detail\":");
            json::write_str(&mut out, detail);
        }
        out.push_str(",\"progress\":[");
        let mut first = true;
        for (&(point, metric_idx), running) in &inner.progress {
            let Some((exp, n, metrics)) = inner.points_meta.get(point) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"experiment\":");
            json::write_str(&mut out, exp);
            out.push_str(&format!(",\"n\":{n},\"metric\":"));
            json::write_str(&mut out, &metrics[metric_idx]);
            out.push_str(&format!(",\"count\":{},\"mean\":", running.count()));
            json::write_f64(&mut out, running.mean());
            out.push_str(",\"ci95\":");
            json::write_f64(&mut out, running.ci95_half_width());
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("}}");
        out
    }

    /// Registers an SSE subscriber. The returned receiver is primed with
    /// a `progress` catch-up event (and, for already-terminal jobs, the
    /// terminal `done` event). Returns `(receiver, already_terminal)`.
    pub fn subscribe(&self) -> (mpsc::Receiver<String>, bool) {
        let (tx, rx) = mpsc::channel();
        // Lock order subscribers → inner, the reverse of the broadcast
        // path (which drops `inner` before taking `subscribers`): holding
        // the subscriber list here means no terminal event can slip
        // between the catch-up snapshot and the registration.
        let mut subs = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        let inner = self.lock_inner();
        let status = self.status_json_locked(&inner);
        let terminal = inner.state.is_terminal();
        drop(inner);
        let _ = tx.send(sse_event("progress", &status));
        if terminal {
            let _ = tx.send(sse_event("done", &status));
        } else {
            subs.push(tx);
        }
        (rx, terminal)
    }

    /// Sends one pre-rendered frame to every live subscriber, dropping
    /// the ones that hung up. Never called with `inner` held.
    fn broadcast(&self, msg: &str) {
        let mut subs = self.subscribers.lock().unwrap_or_else(|e| e.into_inner());
        subs.retain(|tx| tx.send(msg.to_string()).is_ok());
    }

    /// Applies one landed trial: progress, counters, and the SSE frame.
    fn observe(&self, ev: &TrialEvent<'_>, service: &Service) {
        {
            let mut inner = self.lock_inner();
            inner.completed = ev.completed;
            if ev.resumed {
                inner.resumed += 1;
            }
            for (idx, &v) in ev.values.iter().enumerate() {
                if !v.is_nan() {
                    inner.progress.entry((ev.point, idx)).or_default().push(v);
                }
            }
            for (name, v) in ev.counters {
                *inner.counters.entry(name.clone()).or_insert(0) += v;
            }
        }
        if !ev.resumed {
            // Only freshly executed trials feed the service-wide /metrics
            // registry: it measures work this process actually did.
            service.trials_executed.fetch_add(1, Ordering::Relaxed);
            for (name, v) in ev.counters {
                if let Some(c) = Counter::from_name(name) {
                    service.metrics.add(c, *v);
                }
            }
        }
        let mut data = String::from("{\"experiment\":");
        json::write_str(&mut data, ev.experiment);
        data.push_str(&format!(
            ",\"n\":{},\"trial\":{},\"seed\":{},\"values\":[",
            ev.n, ev.trial, ev.seed
        ));
        for (i, &v) in ev.values.iter().enumerate() {
            if i > 0 {
                data.push(',');
            }
            json::write_f64(&mut data, v);
        }
        data.push_str(&format!(
            "],\"resumed\":{},\"completed\":{},\"total\":{}}}",
            ev.resumed, ev.completed, ev.total
        ));
        self.broadcast(&sse_event("trial", &data));
    }
}

/// Outcome of a `DELETE /jobs/:id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued or running and is now cancelled (journal kept).
    Cancelled,
    /// The job was already terminal; its directory was deleted.
    Deleted,
    /// No such job.
    NotFound,
}

/// The long-running sweep job service.
pub struct Service {
    store: JobStore,
    resolver: Box<Resolver>,
    jobs: Mutex<BTreeMap<String, Arc<JobHandle>>>,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    next_seq: AtomicU64,
    workers: usize,
    default_max_retries: usize,
    metrics: Metrics,
    jobs_submitted: AtomicU64,
    trials_executed: AtomicU64,
}

impl Service {
    /// Opens the store, restores every job, and re-enqueues the ones a
    /// previous process left `queued` or `running` (their journals make
    /// the re-run a resume). Does **not** start workers; call
    /// [`Service::start`].
    ///
    /// # Errors
    ///
    /// Store IO failures.
    pub fn open(config: ServiceConfig, resolver: Box<Resolver>) -> Result<Arc<Self>, String> {
        let store = JobStore::open(config.jobs_dir)?;
        let restored = store.load_all()?;
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut next_seq = 1;
        for stored in restored {
            next_seq = next_seq.max(stored.seq + 1);
            let interrupted = !stored.state.is_terminal();
            let id = stored.id.clone();
            let handle = Arc::new(JobHandle::new(stored));
            if interrupted {
                // Make the recovery durable so a crash loop converges.
                if handle.state() != JobState::Queued {
                    store.append_state(&id, JobState::Queued, None)?;
                    handle.lock_inner().state = JobState::Queued;
                }
                eprintln!("[server] recovered interrupted job {id}; re-queued");
                queue.push_back(id.clone());
            }
            jobs.insert(id, handle);
        }
        Ok(Arc::new(Self {
            store,
            resolver,
            jobs: Mutex::new(jobs),
            queue: Mutex::new(queue),
            queue_cv: Condvar::new(),
            next_seq: AtomicU64::new(next_seq),
            workers: config.workers.max(1),
            default_max_retries: config.default_max_retries,
            metrics: Metrics::new(),
            jobs_submitted: AtomicU64::new(0),
            trials_executed: AtomicU64::new(0),
        }))
    }

    /// Spawns the worker pool (detached threads; they live as long as the
    /// process).
    pub fn start(self: &Arc<Self>) {
        for worker in 0..self.workers {
            let service = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("pp-job-worker-{worker}"))
                .spawn(move || service.worker_loop())
                .expect("cannot spawn job worker");
        }
    }

    /// The store root (for logs and tests).
    pub fn jobs_dir(&self) -> PathBuf {
        self.store.root().to_path_buf()
    }

    /// Submits a spec body (TOML or JSON). Idempotent on the grid
    /// fingerprint: an identical spec returns the existing job
    /// (`created = false`); a `failed`/`cancelled` twin is re-queued so
    /// the resubmission resumes it from its journal.
    ///
    /// # Errors
    ///
    /// Unparsable specs, unknown experiments, empty grids, store IO.
    pub fn submit(&self, body: &str) -> Result<(Arc<JobHandle>, bool), String> {
        let spec = SweepSpec::parse_str(body)?;
        if spec.experiments.is_empty() {
            return Err("spec names no experiments".into());
        }
        let experiments = (self.resolver)(&spec)?;
        let fingerprint = grid_fingerprint(&spec, &experiments);
        let total = grid_total_trials(&spec, &experiments);
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = jobs.values().find(|j| j.fingerprint == fingerprint) {
            let job = Arc::clone(job);
            let requeue = {
                let mut inner = job.lock_inner();
                if matches!(inner.state, JobState::Failed | JobState::Cancelled) {
                    inner.state = JobState::Queued;
                    inner.detail = None;
                    true
                } else {
                    false
                }
            };
            if requeue {
                job.cancel.store(false, Ordering::Relaxed);
                self.store.append_state(&job.id, JobState::Queued, None)?;
                self.enqueue(job.id.clone());
            }
            return Ok((job, false));
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let stored = self
            .store
            .create_job(seq, fingerprint, &spec.name, body, total)?;
        let id = stored.id.clone();
        let job = Arc::new(JobHandle::new(stored));
        jobs.insert(id.clone(), Arc::clone(&job));
        drop(jobs);
        self.enqueue(id);
        Ok((job, true))
    }

    fn enqueue(&self, id: String) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(id);
        self.queue_cv.notify_one();
    }

    /// Every job, in submission order.
    pub fn jobs(&self) -> Vec<Arc<JobHandle>> {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<Arc<JobHandle>> = jobs.values().cloned().collect();
        all.sort_by_key(|j| j.seq);
        all
    }

    /// Looks up one job.
    pub fn job(&self, id: &str) -> Option<Arc<JobHandle>> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    /// Cancels a live job (flag honored at the next trial boundary; the
    /// journal stays a valid resume point) or deletes a terminal one.
    pub fn cancel_or_delete(&self, id: &str) -> CancelOutcome {
        let Some(job) = self.job(id) else {
            return CancelOutcome::NotFound;
        };
        if job.state().is_terminal() {
            if let Err(e) = self.store.delete(id) {
                eprintln!("[server] {e}");
            }
            self.jobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(id);
            return CancelOutcome::Deleted;
        }
        job.cancel.store(true, Ordering::Relaxed);
        // Still queued (no worker picked it up): finalize immediately.
        let dequeued = {
            let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.iter().position(|queued| queued == id) {
                Some(pos) => {
                    queue.remove(pos);
                    true
                }
                None => false,
            }
        };
        if dequeued {
            self.finish(
                &job,
                JobState::Cancelled,
                Some("cancelled while queued".into()),
            );
        }
        CancelOutcome::Cancelled
    }

    /// The `GET /metrics` body: the engine-telemetry registry aggregated
    /// over every trial this process executed, plus service-level gauges.
    pub fn metrics_text(&self) -> String {
        let mut out = self.metrics.render_text();
        out.push_str(&format!(
            "pp_server_jobs_submitted {}\n",
            self.jobs_submitted.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "pp_server_trials_executed {}\n",
            self.trials_executed.load(Ordering::Relaxed)
        ));
        let mut by_state = [0usize; 5];
        for job in self.jobs() {
            by_state[job.state() as usize] += 1;
        }
        for (state, count) in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ]
        .into_iter()
        .zip(by_state)
        {
            out.push_str(&format!("pp_server_jobs_{} {count}\n", state.name()));
        }
        out
    }

    /// Worker thread body: pop a job id, run it, repeat.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let id = {
                let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(id) = queue.pop_front() {
                        break id;
                    }
                    queue = self.queue_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(job) = self.job(&id) else { continue };
            // A panic anywhere in the job driver must not kill the
            // worker thread; record the job as failed instead.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_job(&job);
            }));
            if result.is_err() {
                self.finish(&job, JobState::Failed, Some("job driver panicked".into()));
            }
        }
    }

    /// Durable terminal/bookkeeping transition + `done` broadcast.
    fn finish(&self, job: &Arc<JobHandle>, state: JobState, detail: Option<String>) {
        let status = {
            let mut inner = job.lock_inner();
            inner.state = state;
            inner.detail = detail.clone();
            job.status_json_locked(&inner)
        };
        if let Err(e) = self.store.append_state(&job.id, state, detail.as_deref()) {
            eprintln!("[server] job {}: cannot record state: {e}", job.id);
        }
        if state.is_terminal() {
            job.broadcast(&sse_event("done", &status));
        }
    }

    /// Drives one job to a terminal state.
    fn run_job(&self, job: &Arc<JobHandle>) {
        let mut spec = match SweepSpec::parse_str(&job.spec_text) {
            Ok(spec) => spec,
            Err(e) => return self.finish(job, JobState::Failed, Some(e)),
        };
        // The journal lives in the job directory regardless of what the
        // spec asked for: the job directory IS the durable unit.
        spec.journal = Some(job.dir.join("journal.jsonl"));
        if spec.max_retries == 0 {
            spec.max_retries = self.default_max_retries;
        }
        let experiments = match (self.resolver)(&spec) {
            Ok(experiments) => experiments,
            Err(e) => return self.finish(job, JobState::Failed, Some(e)),
        };
        let points_meta = points_meta(&spec, &experiments);
        {
            let mut inner = job.lock_inner();
            inner.state = JobState::Running;
            inner.detail = None;
            inner.completed = 0;
            inner.resumed = 0;
            inner.failed = 0;
            inner.points_meta = points_meta;
            inner.progress.clear();
            inner.counters.clear();
        }
        if let Err(e) = self.store.append_state(&job.id, JobState::Running, None) {
            eprintln!("[server] job {}: cannot record state: {e}", job.id);
        }
        let on_trial = |ev: &TrialEvent<'_>| job.observe(ev, self);
        let hooks = RunHooks {
            on_trial: Some(&on_trial),
            cancel: Some(&job.cancel),
        };
        match run_sweep_with(&spec, &experiments, &hooks) {
            Ok(report) => {
                // The report files are the same pure functions of the
                // report the `sweep` CLI writes — that is the whole
                // determinism story: fetched bytes ≡ local bytes.
                let mut outputs = vec![
                    ("summary.csv", emit::summary_csv(&report)),
                    ("trials.csv", emit::per_trial_csv(&report)),
                    ("report.json", emit::to_json(&report)),
                ];
                if report.has_counters() {
                    outputs.push(("counters.csv", emit::counters_csv(&report)));
                }
                for (file, content) in outputs {
                    if let Err(e) = std::fs::write(job.dir.join(file), content) {
                        let detail = format!("cannot write {file}: {e}");
                        return self.finish(job, JobState::Failed, Some(detail));
                    }
                }
                job.lock_inner().failed = report.failed_trials;
                let detail = (report.failed_trials > 0)
                    .then(|| format!("{} trial(s) failed permanently", report.failed_trials));
                self.finish(job, JobState::Done, detail);
            }
            Err(e) if job.cancel.load(Ordering::Relaxed) => {
                self.finish(job, JobState::Cancelled, Some(e.0));
            }
            Err(e) => {
                self.finish(job, JobState::Failed, Some(e.0));
            }
        }
    }
}

/// Point labels in the canonical grid order (experiment-major, then
/// size) — the same order [`pp_sweep`] flattens the grid in, so
/// [`TrialEvent::point`] indexes this directly.
fn points_meta(spec: &SweepSpec, experiments: &[SweepExperiment]) -> Vec<PointMeta> {
    let mut meta = Vec::new();
    for exp in experiments {
        for &n in &spec.sizes {
            meta.push((exp.name().to_string(), n, exp.metrics().to_vec()));
        }
    }
    meta
}
