//! `pp-server`: a durable sweep job service over the `pp-sweep` runner.
//!
//! *Layer 5 (sweep & service) of the five-layer workspace — see `ARCHITECTURE.md` at the
//! repository root for the layer map and the three determinism
//! invariants every layer is held to.*
//!
//! Submit a sweep spec once, watch it stream trial-by-trial progress,
//! fetch byte-identical reports later — and lose nothing to a crash. The
//! whole crate is hand-rolled on `std` (TCP, threads, condvars); there is
//! no async runtime and no new external dependency, in keeping with the
//! workspace's vendored-shim policy.
//!
//! # Architecture
//!
//! Three layers, one per module:
//!
//! * [`store`] — the directory-per-job store. A job is a directory under
//!   the jobs root holding the verbatim submitted spec, the sweep's trial
//!   journal, and a `meta.jsonl` lifecycle journal. All append-only files
//!   use the workspace journal line discipline (one JSON object per line,
//!   CRC-32 suffix, fsync per append).
//! * [`service`] — the queue, worker pool, and in-memory job index.
//!   Workers drive `pp_sweep::run_sweep_with` with hooks that stream
//!   per-trial events and honor cancellation at trial boundaries.
//! * [`http`] — a hand-rolled HTTP/1.1 + server-sent-events front end on
//!   `std::net::TcpListener` and a small thread pool.
//!
//! # Wire format
//!
//! Specs are submitted as the body of `POST /jobs`, in either of the two
//! formats the `sweep` CLI accepts (TOML, or JSON when the body starts
//! with `{`). Responses are JSON built with `pp_sweep::json` (no serde).
//! The SSE stream at `GET /jobs/:id/events` emits:
//!
//! * `event: progress` — one catch-up frame on connect, carrying the full
//!   status document (state, per-metric Welford progress, counters);
//! * `event: trial` — one frame per landed trial (fresh *and* replayed),
//!   with experiment, size, trial index, seed, metric values, and a
//!   `resumed` flag;
//! * `event: done` — the terminal frame (state `done`, `failed`, or
//!   `cancelled`), after which the stream closes;
//! * `: hb` comment heartbeats roughly every second while idle.
//!
//! # Durability guarantees
//!
//! * **Submission is durable before it is acknowledged**: `POST /jobs`
//!   returns only after the spec file and the job's `meta.jsonl` header
//!   line are on disk (fsync'd).
//! * **Progress is durable per trial**: workers run sweeps with a journal
//!   in the job directory; every completed trial is an fsync'd,
//!   CRC-framed journal line before it is reported anywhere.
//! * **Crashes lose at most the in-flight trials**: on restart the
//!   service re-queues every non-terminal job; the sweep runner's journal
//!   resume replays landed trials instead of re-executing them. A torn
//!   final line (in `journal.jsonl` or `meta.jsonl`) is detected by CRC
//!   and dropped; corruption earlier in a journal is a hard error.
//! * **Cancellation preserves resumability**: the cancel flag is honored
//!   only at trial boundaries, so a cancelled job's journal is always a
//!   valid resume point — resubmitting the identical spec re-queues the
//!   job and it picks up where it stopped.
//! * **Determinism end to end**: report artifacts are the same pure
//!   functions of the aggregated report the `sweep` CLI writes, so a
//!   fetched `summary.csv`/`trials.csv` is byte-identical to a local run
//!   of the same spec (asserted in CI).
//!
//! Job identity is the grid fingerprint: resubmitting a byte-different
//! spec with the same effective grid resolves to the same job
//! (idempotent submits), while any change to the grid — sizes, trials,
//! seeds, engine, experiments, or the parallel-fill discipline — makes a
//! new job.
//!
//! A spec's `fill_threads` key gives each job its own intra-trial
//! parallelism: trials run the batched engine's deterministic parallel
//! batch fill with up to that many workers (`0` = explicitly serial; the
//! runner clamps `trial workers × fill workers` at the machine). Because
//! enabling the discipline changes trial trajectories (the worker count
//! never does), its enabled-ness is part of the grid fingerprint — a
//! journal recorded under one discipline refuses to resume under the
//! other, and jobs differing only in that bit are distinct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod service;
pub mod store;

pub use service::{CancelOutcome, JobHandle, Resolver, Service, ServiceConfig};
pub use store::{JobState, JobStore, StoredJob};
