//! Hand-rolled HTTP/1.1 front end for the job service.
//!
//! `std::net::TcpListener` + a small fixed thread pool; no async runtime,
//! no external dependencies. Every response is `Connection: close` — one
//! request per connection keeps the parser trivial and is plenty for a
//! lab service. Server-sent-event streams hold their pool thread until
//! the job reaches a terminal state (the `done` event closes the stream),
//! so the pool is sized larger than the worker pool.
//!
//! # Routes
//!
//! | Method + path            | Meaning                                         |
//! |--------------------------|-------------------------------------------------|
//! | `GET /healthz`           | liveness probe (`ok`)                           |
//! | `GET /metrics`           | telemetry + service gauges, greppable text      |
//! | `POST /jobs`             | submit a TOML/JSON sweep spec (idempotent)      |
//! | `GET /jobs`              | list jobs in submission order                   |
//! | `GET /jobs/:id`          | full status: state, Welford progress, counters  |
//! | `GET /jobs/:id/events`   | SSE: `progress` catch-up, `trial`s, `done`      |
//! | `GET /jobs/:id/report.json` | the job's `sweep.json` report                |
//! | `GET /jobs/:id/report.csv`  | the job's summary CSV (alias `summary.csv`)  |
//! | `GET /jobs/:id/trials.csv`  | the per-trial CSV                            |
//! | `GET /jobs/:id/counters.csv`| the counters CSV (only if instrumented)      |
//! | `DELETE /jobs/:id`       | cancel a live job / delete a terminal one       |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::service::{CancelOutcome, Service};
use crate::store::JobState;
use pp_sweep::json;

/// Heartbeat cadence for idle SSE streams (comment frames keep proxies
/// and half-dead clients honest).
const SSE_HEARTBEAT: Duration = Duration::from_millis(1000);

/// A parsed request: method, path (query string stripped), and body.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request. Only `Content-Length` bodies are
/// supported (no chunked encoding — our clients never send it).
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".into());
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let path = path.split('?').next().unwrap_or("").to_string();
    Ok(Request { method, path, body })
}

/// Writes a complete response and flushes. Errors are ignored — a client
/// that hung up mid-response is its own problem.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn respond_json(stream: &mut TcpStream, status: &str, body: &str) {
    respond(stream, status, "application/json", body);
}

fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::write_str(&mut out, message);
    out.push('}');
    out
}

/// Serves `listener` until the process exits. `pool` threads handle
/// connections; the accept loop itself never does protocol work.
pub fn serve(service: Arc<Service>, listener: TcpListener, pool: usize) -> ! {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for worker in 0..pool.max(2) {
        let service = Arc::clone(&service);
        let rx = Arc::clone(&rx);
        std::thread::Builder::new()
            .name(format!("pp-http-{worker}"))
            .spawn(move || loop {
                let stream = {
                    let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                    rx.recv()
                };
                let Ok(stream) = stream else { return };
                handle_connection(&service, stream);
            })
            .expect("cannot spawn http worker");
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    unreachable!("http pool receiver outlives the accept loop");
                }
            }
            Err(e) => eprintln!("[server] accept: {e}"),
        }
    }
}

/// Parses and dispatches one connection; never panics outward.
fn handle_connection(service: &Arc<Service>, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            respond_json(&mut stream, "400 Bad Request", &error_body(&e));
            return;
        }
    };
    route(service, &mut stream, &request);
}

fn route(service: &Arc<Service>, stream: &mut TcpStream, request: &Request) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => respond(stream, "200 OK", "text/plain", "ok\n"),
        ("GET", ["metrics"]) => {
            respond(stream, "200 OK", "text/plain", &service.metrics_text());
        }
        ("POST", ["jobs"]) => match service.submit(&request.body) {
            Ok((job, created)) => {
                let status = if created { "201 Created" } else { "200 OK" };
                respond_json(stream, status, &job.status_json());
            }
            Err(e) => respond_json(stream, "400 Bad Request", &error_body(&e)),
        },
        ("GET", ["jobs"]) => {
            let mut out = String::from("{\"jobs\":[");
            for (i, job) in service.jobs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&job.list_json());
            }
            out.push_str("]}");
            respond_json(stream, "200 OK", &out);
        }
        ("GET", ["jobs", id]) => match service.job(id) {
            Some(job) => respond_json(stream, "200 OK", &job.status_json()),
            None => respond_json(stream, "404 Not Found", &error_body("no such job")),
        },
        ("GET", ["jobs", id, "events"]) => match service.job(id) {
            Some(job) => stream_events(stream, &job),
            None => respond_json(stream, "404 Not Found", &error_body("no such job")),
        },
        ("GET", ["jobs", id, file]) => serve_report(service, stream, id, file),
        ("DELETE", ["jobs", id]) => match service.cancel_or_delete(id) {
            CancelOutcome::Cancelled => {
                respond_json(stream, "202 Accepted", "{\"state\":\"cancelling\"}");
            }
            CancelOutcome::Deleted => respond_json(stream, "200 OK", "{\"deleted\":true}"),
            CancelOutcome::NotFound => {
                respond_json(stream, "404 Not Found", &error_body("no such job"));
            }
        },
        _ => respond_json(stream, "404 Not Found", &error_body("no such route")),
    }
}

/// Serves one of the job's report artifacts. Reports exist only once the
/// job is `done`; earlier requests get `409 Conflict` so pollers can
/// distinguish "not yet" from "never".
fn serve_report(service: &Arc<Service>, stream: &mut TcpStream, id: &str, file: &str) {
    let Some(job) = service.job(id) else {
        respond_json(stream, "404 Not Found", &error_body("no such job"));
        return;
    };
    let (disk_name, content_type) = match file {
        "report.json" => ("report.json", "application/json"),
        "report.csv" | "summary.csv" => ("summary.csv", "text/csv"),
        "trials.csv" => ("trials.csv", "text/csv"),
        "counters.csv" => ("counters.csv", "text/csv"),
        _ => {
            respond_json(stream, "404 Not Found", &error_body("no such report"));
            return;
        }
    };
    if job.state() != JobState::Done {
        respond_json(
            stream,
            "409 Conflict",
            &error_body("job is not done; no report yet"),
        );
        return;
    }
    match std::fs::read_to_string(job.dir.join(disk_name)) {
        Ok(body) => respond(stream, "200 OK", content_type, &body),
        Err(_) => respond_json(stream, "404 Not Found", &error_body("report file missing")),
    }
}

/// Streams a job's events until it reaches a terminal state or the
/// client hangs up. Frames come pre-rendered from the service; idle gaps
/// are filled with comment heartbeats.
fn stream_events(stream: &mut TcpStream, job: &Arc<crate::service::JobHandle>) {
    let (rx, _terminal) = job.subscribe();
    if write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return;
    }
    loop {
        let frame = match rx.recv_timeout(SSE_HEARTBEAT) {
            Ok(frame) => frame,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stream.write_all(b": hb\n\n").is_err() || stream.flush().is_err() {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let is_done = frame.starts_with("event: done\n");
        if stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
        if is_done {
            return;
        }
    }
}
