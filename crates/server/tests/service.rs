//! In-process integration tests for the job service: idempotent submit,
//! end-to-end determinism of the report artifacts, cancellation at trial
//! boundaries, restart recovery, and terminal-job deletion.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pp_server::{CancelOutcome, JobHandle, JobState, Service, ServiceConfig};
use pp_sweep::{emit, json, run_sweep, SweepExperiment, SweepSpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pp_server_svc_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn toy() -> SweepExperiment {
    SweepExperiment::new("toy", &["value", "seed_lo"], |ctx| {
        vec![
            ctx.n as f64 + ctx.trial as f64 / 100.0,
            (ctx.seed % 1000) as f64,
        ]
    })
}

/// A gate shared between the test and a "gated" experiment: trials 0 and
/// 1 return immediately, later trials block until [`Gate::open`].
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

fn open_service(tag: &str) -> Arc<Service> {
    let service = Service::open(
        ServiceConfig {
            jobs_dir: temp_dir(tag),
            workers: 1,
            default_max_retries: 0,
        },
        Box::new(|_spec| Ok(vec![toy()])),
    )
    .unwrap();
    service.start();
    service
}

fn wait_state(job: &Arc<JobHandle>, want: JobState) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while job.state() != want {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {want:?}; job is {:?}",
            job.state()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn status_field_u64(job: &Arc<JobHandle>, field: &str) -> u64 {
    let status = json::parse(&job.status_json()).unwrap();
    status.get(field).and_then(|v| v.as_u64()).unwrap()
}

const TOY_SPEC: &str = r#"
name = "svc_toy"
master_seed = 11
sizes = [100, 200]
trials = 4
threads = 1
experiments = ["toy"]
"#;

#[test]
fn submit_is_idempotent_on_the_grid_fingerprint() {
    let service = open_service("idem");
    let (job, created) = service.submit(TOY_SPEC).unwrap();
    assert!(created);
    let (again, created_again) = service.submit(TOY_SPEC).unwrap();
    assert!(!created_again, "identical spec resolves to the same job");
    assert_eq!(job.id, again.id);
    // A different grid (new seed) is a different job.
    let (other, created_other) = service
        .submit(&TOY_SPEC.replace("master_seed = 11", "master_seed = 12"))
        .unwrap();
    assert!(created_other);
    assert_ne!(job.id, other.id);
    assert!(service.submit("definitely not a spec").is_err());
    assert!(service.submit("{\"name\": \"x\"").is_err());
}

#[test]
fn jobs_run_to_done_with_byte_identical_reports() {
    let service = open_service("done");
    let (job, _) = service.submit(TOY_SPEC).unwrap();
    wait_state(&job, JobState::Done);

    // The fetched artifacts must equal a local run of the same spec —
    // the same purity claim the CI smoke asserts over HTTP.
    let spec = SweepSpec::parse_str(TOY_SPEC).unwrap();
    let report = run_sweep(&spec, &[toy()]).unwrap();
    let read = |f: &str| std::fs::read_to_string(job.dir.join(f)).unwrap();
    assert_eq!(read("summary.csv"), emit::summary_csv(&report));
    assert_eq!(read("trials.csv"), emit::per_trial_csv(&report));
    assert_eq!(read("report.json"), emit::to_json(&report));

    assert_eq!(status_field_u64(&job, "completed"), 8);
    let metrics = service.metrics_text();
    assert!(metrics.contains("pp_server_jobs_done 1"));
    assert!(metrics.contains("pp_server_trials_executed 8"));
}

#[test]
fn cancelled_jobs_resume_on_resubmission() {
    let gate = Arc::new(Gate::default());
    let resolver_gate = Arc::clone(&gate);
    let service = Service::open(
        ServiceConfig {
            jobs_dir: temp_dir("cancel"),
            workers: 1,
            default_max_retries: 0,
        },
        Box::new(move |_spec| {
            let gate = Arc::clone(&resolver_gate);
            Ok(vec![SweepExperiment::new("gated", &["x"], move |ctx| {
                if ctx.trial >= 2 {
                    gate.wait();
                }
                vec![ctx.seed as f64]
            })])
        }),
    )
    .unwrap();
    service.start();

    let spec = r#"
name = "svc_gated"
master_seed = 3
sizes = [50]
trials = 4
threads = 1
experiments = ["gated"]
"#;
    let (job, _) = service.submit(spec).unwrap();
    // Trials 0 and 1 land; trial 2 parks on the gate.
    let deadline = Instant::now() + Duration::from_secs(30);
    while status_field_u64(&job, "completed") < 2 {
        assert!(Instant::now() < deadline, "first two trials never landed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.cancel_or_delete(&job.id), CancelOutcome::Cancelled);
    gate.open();
    wait_state(&job, JobState::Cancelled);
    // The in-flight trial finished and was journaled before the boundary
    // check stopped the run; trial 3 never ran.
    assert_eq!(status_field_u64(&job, "completed"), 3);

    // Resubmitting the identical spec re-queues the same job, which
    // resumes from its journal instead of starting over.
    let (resumed, created) = service.submit(spec).unwrap();
    assert!(!created);
    assert_eq!(resumed.id, job.id);
    wait_state(&job, JobState::Done);
    assert_eq!(status_field_u64(&job, "completed"), 4);
    assert_eq!(status_field_u64(&job, "resumed"), 3);
}

#[test]
fn restart_requeues_interrupted_jobs() {
    let dir = temp_dir("restart");
    let config = || ServiceConfig {
        jobs_dir: dir.clone(),
        workers: 1,
        default_max_retries: 0,
    };
    // First process: accept the job but never start workers, then "crash".
    let first = Service::open(config(), Box::new(|_spec| Ok(vec![toy()]))).unwrap();
    let (job, created) = first.submit(TOY_SPEC).unwrap();
    assert!(created);
    assert_eq!(job.state(), JobState::Queued);
    let id = job.id.clone();
    drop((job, first));

    // Second process: recovery re-queues it and the worker finishes it.
    let second = Service::open(config(), Box::new(|_spec| Ok(vec![toy()]))).unwrap();
    let job = second.job(&id).expect("job survives the restart");
    second.start();
    wait_state(&job, JobState::Done);
    assert_eq!(status_field_u64(&job, "completed"), 8);
}

#[test]
fn deleting_a_terminal_job_removes_its_directory() {
    let service = open_service("delete");
    let (job, _) = service.submit(TOY_SPEC).unwrap();
    wait_state(&job, JobState::Done);
    assert!(job.dir.is_dir());
    assert_eq!(service.cancel_or_delete(&job.id), CancelOutcome::Deleted);
    assert!(!job.dir.exists());
    assert!(service.job(&job.id).is_none());
    assert_eq!(service.cancel_or_delete(&job.id), CancelOutcome::NotFound);
}

#[test]
fn sse_subscribers_get_catchup_trials_and_done() {
    let service = open_service("sse");
    let (job, _) = service.submit(TOY_SPEC).unwrap();
    let (rx, _) = job.subscribe();
    let mut trials = 0usize;
    let mut saw_progress = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "stream never reached done");
        let frame = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("stream stalled");
        if frame.starts_with("event: progress\n") {
            saw_progress = true;
        } else if frame.starts_with("event: trial\n") {
            trials += 1;
            let data = frame
                .lines()
                .find_map(|l| l.strip_prefix("data: "))
                .unwrap();
            let trial = json::parse(data).unwrap();
            assert!(trial.get("seed").and_then(|v| v.as_u64()).is_some());
        } else if frame.starts_with("event: done\n") {
            break;
        }
    }
    assert!(saw_progress, "catch-up progress frame arrives first");
    // Subscribing early sees every trial; subscribing after the end sees
    // the terminal state immediately.
    assert!(trials <= 8);
    let (late, terminal) = job.subscribe();
    assert!(terminal);
    let catchup = late.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(catchup.starts_with("event: progress\n"));
    let done = late.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(done.starts_with("event: done\n"));
}
