//! End-to-end tests against the real `pp-server` binary: HTTP submit /
//! poll / fetch with byte-identity against a local run, and the
//! torn-write drill — kill the server mid-trial with `PP_FAULT`,
//! restart it, and watch the job resume from its journal to the same
//! bytes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pp_sweep::{emit, json, run_sweep, SweepSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp_server_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running server child; killed on drop so failed tests don't leak
/// processes.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `pp-server` on an ephemeral port and waits for the port file.
/// `fault` becomes the child's `PP_FAULT` (the engine honors it in every
/// trial, which is exactly how the drill kills the server mid-trial).
fn start_server(jobs_dir: &Path, fault: Option<&str>) -> Server {
    let port_file = jobs_dir.with_extension("port");
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pp-server"));
    cmd.args([
        "--port",
        "0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--jobs-dir",
        jobs_dir.to_str().unwrap(),
    ])
    .env_remove("PP_FAULT")
    .env_remove("PP_JOBS_DIR")
    .env_remove("PP_SWEEP_TRIALS")
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if let Some(fault) = fault {
        cmd.env("PP_FAULT", fault);
    }
    let mut child = cmd.spawn().expect("cannot spawn pp-server");
    let deadline = Instant::now() + Duration::from_secs(60);
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break port;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("pp-server exited before listening: {status}");
        }
        assert!(Instant::now() < deadline, "pp-server never wrote its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    Server {
        child,
        addr: format!("127.0.0.1:{port}"),
    }
}

/// One-shot HTTP/1.1 request; returns (status code, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn wait_done(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {body}");
        let doc = json::parse(&body).unwrap();
        match doc.get("state").and_then(|v| v.as_str()).unwrap() {
            "done" => return body,
            "failed" | "cancelled" => panic!("job ended badly: {body}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job never finished: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Local reference run of the same spec through the same registry — the
/// bytes the server must reproduce.
fn local_reference(spec_text: &str) -> (String, String) {
    let spec = SweepSpec::parse_str(spec_text).unwrap();
    let experiments = pp_bench::experiments::build(&spec.experiments).unwrap();
    let report = run_sweep(&spec, &experiments).unwrap();
    (emit::summary_csv(&report), emit::per_trial_csv(&report))
}

const FAST_SPEC: &str = r#"
name = "e2e_epidemic"
master_seed = 9
sizes = [300]
trials = 2
threads = 1
engine = "batched"
experiments = ["epidemic_full"]
"#;

#[test]
fn submit_poll_fetch_matches_a_local_run() {
    let jobs_dir = temp_dir("basic");
    let server = start_server(&jobs_dir, None);
    let addr = &server.addr;

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = http(addr, "POST", "/jobs", FAST_SPEC);
    assert_eq!(status, 201, "submit failed: {body}");
    let id = json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();

    // Identical resubmission is idempotent (200, same id).
    let (status, body) = http(addr, "POST", "/jobs", FAST_SPEC);
    assert_eq!(status, 200);
    assert!(body.contains(&id));

    // A report request before the job is done is 409, not 404 — but the
    // job may legitimately already be done, so accept both outcomes.
    let (status, _) = http(addr, "GET", &format!("/jobs/{id}/report.csv"), "");
    assert!(status == 409 || status == 200);

    wait_done(addr, &id);
    let (want_summary, want_trials) = local_reference(FAST_SPEC);
    let (status, summary) = http(addr, "GET", &format!("/jobs/{id}/report.csv"), "");
    assert_eq!(status, 200);
    assert_eq!(summary, want_summary, "summary.csv differs from local run");
    let (status, trials) = http(addr, "GET", &format!("/jobs/{id}/trials.csv"), "");
    assert_eq!(status, 200);
    assert_eq!(trials, want_trials, "trials.csv differs from local run");

    let (status, list) = http(addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(list.contains(&id));
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("pp_server_jobs_done 1"));

    // The SSE stream of a finished job: catch-up progress, then done.
    let (status, events) = http(addr, "GET", &format!("/jobs/{id}/events"), "");
    assert_eq!(status, 200);
    assert!(events.contains("event: progress\n"));
    assert!(events.contains("event: done\n"));

    let (status, _) = http(addr, "GET", "/jobs/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/jobs", "not a spec at all = [");
    assert_eq!(status, 400);
}

/// The torn-write drill. `PP_FAULT=kill@8000` makes the engine abort the
/// whole server process at the first checkpoint past 8000 interactions:
/// the n=400 trials (≈6½k interactions each) complete and are journaled,
/// then the first n=20000 trial kills the server mid-run. A restart
/// without the fault re-queues the job, resumes the journaled trials,
/// and produces byte-identical reports.
#[test]
fn killed_server_resumes_the_job_after_restart() {
    let spec = r#"
name = "e2e_kill"
master_seed = 21
sizes = [400, 20000]
trials = 2
threads = 1
engine = "batched"
experiments = ["epidemic_full"]
"#;
    let jobs_dir = temp_dir("kill");
    let server = start_server(&jobs_dir, Some("kill@8000"));
    // The submit response may be lost if the abort races it; the job is
    // durable either way, so ignore the response entirely.
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    let _ = write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{spec}",
        spec.len()
    );
    let mut _response = String::new();
    let _ = stream.read_to_string(&mut _response);

    // The server must die on its own (abort inside the doomed trial).
    let mut server = server;
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Some(status) = server.child.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "fault never fired");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        !status.success(),
        "server should have aborted, got {status}"
    );
    drop(server);

    // The journal recorded the completed n=400 trials before the crash.
    let restarted = start_server(&jobs_dir, None);
    let addr = &restarted.addr;
    let (code, list) = http(addr, "GET", "/jobs", "");
    assert_eq!(code, 200);
    let doc = json::parse(&list).unwrap();
    let jobs = doc.get("jobs").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(jobs.len(), 1, "recovered job list: {list}");
    let id = jobs[0].get("id").and_then(|v| v.as_str()).unwrap();

    let final_status = wait_done(addr, id);
    let doc = json::parse(&final_status).unwrap();
    let resumed = doc.get("resumed").and_then(|v| v.as_u64()).unwrap();
    assert!(
        resumed >= 1,
        "restart should replay journaled trials: {final_status}"
    );

    let (want_summary, want_trials) = local_reference(spec);
    let (code, summary) = http(addr, "GET", &format!("/jobs/{id}/report.csv"), "");
    assert_eq!(code, 200);
    assert_eq!(summary, want_summary, "post-crash summary.csv differs");
    let (code, trials) = http(addr, "GET", &format!("/jobs/{id}/trials.csv"), "");
    assert_eq!(code, 200);
    assert_eq!(trials, want_trials, "post-crash trials.csv differs");
}
