//! Sweep determinism and resume guarantees.
//!
//! * The same spec + master seed produces **byte-identical** aggregated
//!   output (summary CSV, per-trial CSV, JSON) at 1 thread and at N
//!   threads.
//! * A sweep interrupted mid-run and resumed from its journal produces
//!   exactly the output of an uninterrupted run.
//! * A journal written by a different grid is refused.

use std::path::PathBuf;

use pp_engine::epidemic::InfectionEpidemic;
use pp_engine::simulation::{count_of, Simulation};
use pp_sweep::{emit, run_sweep, SweepExperiment, SweepSpec};

fn epidemic_experiment() -> SweepExperiment {
    SweepExperiment::new("epidemic", &["time"], |ctx| {
        let n = ctx.n;
        let (out, _) = Simulation::count_builder(InfectionEpidemic)
            .config([(false, n - 1), (true, 1)])
            .seed(ctx.seed)
            .mode(ctx.engine)
            .check_every((n / 10).max(1))
            .until(move |view| count_of(view, &true) == n)
            .run();
        vec![out.time]
    })
    .with_engine_hook()
}

fn epidemic_experiments() -> Vec<SweepExperiment> {
    vec![
        epidemic_experiment(),
        // Exercises the NaN-as-missing path: odd trials omit the metric.
        SweepExperiment::new("flaky", &["maybe"], |ctx| {
            vec![if ctx.trial % 2 == 0 {
                ctx.seed as f64
            } else {
                f64::NAN
            }]
        }),
    ]
}

fn emitted(report: &pp_sweep::SweepReport) -> (String, String, String) {
    (
        emit::summary_csv(report),
        emit::per_trial_csv(report),
        emit::to_json(report),
    )
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pp-sweep-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn one_thread_and_many_threads_emit_identical_bytes() {
    let mut spec = SweepSpec::new("det", vec![500, 2_000], 10);
    spec.master_seed = 0xDECADE;
    spec.threads = 1;
    let single = run_sweep(&spec, &epidemic_experiments()).unwrap();
    spec.threads = 8;
    let parallel = run_sweep(&spec, &epidemic_experiments()).unwrap();
    // NaN placeholders make Vec<f64> equality useless (NaN ≠ NaN), so the
    // contract is asserted on the emitted bytes, where NaN renders
    // deterministically.
    assert_eq!(
        emitted(&single),
        emitted(&parallel),
        "emitted bytes must be identical across thread counts"
    );
}

#[test]
fn sharded_production_plus_merge_matches_single_machine_run() {
    use pp_sweep::{merge_journals, run_sweep_shard, Shard};

    // Reference: one machine runs the whole grid.
    let mut spec = SweepSpec::new("shards", vec![500, 2_000], 9);
    spec.master_seed = 0x5AAD;
    spec.threads = 2;
    let reference = run_sweep(&spec, &epidemic_experiments()).unwrap();

    // Producers: three shard runs, each journaling its `trial % 3` slice.
    let mut shard_paths = Vec::new();
    for index in 0..3 {
        let shard = Shard::new(index, 3).unwrap();
        let mut shard_spec = spec.clone();
        let path = temp_journal(&format!("shard{index}"));
        shard_spec.journal = Some(path.clone());
        let recorded = run_sweep_shard(&shard_spec, &epidemic_experiments(), shard).unwrap();
        assert!(recorded > 0, "shard {index} ran nothing");
        shard_paths.push(path);
    }

    // Collector: merge the shard journals into a fresh target and run the
    // spec — every trial must replay from the merge, none re-execute, and
    // the emitted bytes must match the single-machine reference exactly.
    let mut collect_spec = spec.clone();
    collect_spec.journal = Some(temp_journal("shard-merge-target"));
    let available = merge_journals(&collect_spec, &epidemic_experiments(), &shard_paths).unwrap();
    assert_eq!(
        available,
        reference.total_trials(),
        "shards must cover the grid"
    );
    let merged = run_sweep(&collect_spec, &epidemic_experiments()).unwrap();
    assert_eq!(merged.resumed_trials, reference.total_trials());
    assert_eq!(
        emitted(&reference),
        emitted(&merged),
        "merged shards must reproduce the single-machine bytes"
    );

    // A shard run without a journal has nowhere to put its trials.
    let err =
        run_sweep_shard(&spec, &epidemic_experiments(), Shard::new(0, 2).unwrap()).unwrap_err();
    assert!(err.0.contains("journal"), "{err}");

    for path in shard_paths {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_file(collect_spec.journal.unwrap());
}

#[test]
fn shard_parsing_validates() {
    use pp_sweep::Shard;

    assert_eq!(
        "0/2".parse::<Shard>().unwrap(),
        Shard { index: 0, count: 2 }
    );
    assert_eq!(
        "1/2".parse::<Shard>().unwrap(),
        Shard { index: 1, count: 2 }
    );
    assert!("2/2".parse::<Shard>().is_err(), "index must be below count");
    assert!("1".parse::<Shard>().is_err());
    assert!("a/b".parse::<Shard>().is_err());
    assert!("1/0".parse::<Shard>().is_err());
}

#[test]
fn resumed_run_matches_uninterrupted_run() {
    let mut spec = SweepSpec::new("resume", vec![400, 900], 8);
    spec.master_seed = 99;
    spec.threads = 3;

    // Ground truth: an uninterrupted, journal-free run.
    let uninterrupted = run_sweep(&spec, &epidemic_experiments()).unwrap();

    // A journaled run of the same grid...
    let journal = temp_journal("resume");
    spec.journal = Some(journal.clone());
    let full = run_sweep(&spec, &epidemic_experiments()).unwrap();
    assert_eq!(full.resumed_trials, 0);
    assert_eq!(emitted(&full), emitted(&uninterrupted));

    // ...then "interrupted": keep the header and roughly half the trial
    // lines, as if the process died mid-sweep.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = 1 + (lines.len() - 1) / 2;
    let truncated: String = lines[..keep].iter().flat_map(|l| [*l, "\n"]).collect();
    std::fs::write(&journal, truncated).unwrap();

    let resumed = run_sweep(&spec, &epidemic_experiments()).unwrap();
    assert_eq!(resumed.resumed_trials, keep - 1);
    assert_eq!(
        emitted(&resumed),
        emitted(&uninterrupted),
        "resume-from-journal must reproduce the uninterrupted output"
    );

    // A fully journaled grid resumes with zero work left.
    let replayed = run_sweep(&spec, &epidemic_experiments()).unwrap();
    assert_eq!(replayed.resumed_trials, replayed.total_trials());
    assert_eq!(emitted(&replayed), emitted(&uninterrupted));
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn journal_of_a_different_grid_is_refused() {
    let journal = temp_journal("refuse");
    let mut spec = SweepSpec::new("refuse", vec![300], 4);
    spec.journal = Some(journal.clone());
    run_sweep(&spec, &epidemic_experiments()).unwrap();

    // Same path, different trial count: must refuse, not silently mix.
    spec.trials = 6;
    let err = run_sweep(&spec, &epidemic_experiments()).unwrap_err();
    assert!(err.0.contains("fingerprint mismatch"), "{err}");
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn forced_engine_modes_agree_on_small_grids() {
    // Not a distribution test (the equivalence suites own that) — just
    // that the engine hook plumbs through and both engines complete.
    for engine in ["sequential", "batched"] {
        let mut spec = SweepSpec::new("engine", vec![5_000], 6);
        spec.engine = engine.parse().unwrap();
        spec.threads = 2;
        let report = run_sweep(&spec, &[epidemic_experiment()]).unwrap();
        let mean = report.point("epidemic", 5_000).mean("time");
        // One-way epidemic completes in ~2 ln n ≈ 17 parallel time.
        assert!(mean > 5.0 && mean < 60.0, "{engine}: mean {mean}");
    }
}

#[test]
fn merged_shard_journals_reproduce_the_single_machine_run() {
    use pp_sweep::merge_journals;

    let mut spec = SweepSpec::new("merge", vec![400, 900], 6);
    spec.master_seed = 0x5AAD;
    spec.threads = 2;

    // Ground truth: one uninterrupted single-machine run.
    let uninterrupted = run_sweep(&spec, &epidemic_experiments()).unwrap();

    // Simulate two machines: run the full grid journaled once, then split
    // the journal's trial lines into two shard files (each with the
    // header), as if each machine had completed half the grid.
    let journal = temp_journal("merge-full");
    spec.journal = Some(journal.clone());
    run_sweep(&spec, &epidemic_experiments()).unwrap();
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let (header, trials) = lines.split_first().unwrap();
    let shard_a = temp_journal("merge-shard-a");
    let shard_b = temp_journal("merge-shard-b");
    let mid = trials.len() / 2;
    // Overlap one line across the shards: duplicates must collapse.
    let write_shard = |path: &PathBuf, body: &[&str]| {
        let mut text = format!("{header}\n");
        for line in body {
            text.push_str(line);
            text.push('\n');
        }
        std::fs::write(path, text).unwrap();
    };
    write_shard(&shard_a, &trials[..=mid]);
    write_shard(&shard_b, &trials[mid..]);
    std::fs::remove_file(&journal).unwrap();

    // Merge the shards into a fresh target journal and re-run: every
    // trial must come from the journals, and the emitted bytes must match
    // the single-machine run exactly.
    let target = temp_journal("merge-target");
    spec.journal = Some(target.clone());
    let available = merge_journals(
        &spec,
        &epidemic_experiments(),
        &[shard_a.clone(), shard_b.clone()],
    )
    .unwrap();
    assert_eq!(available, trials.len(), "all distinct trials merged");
    let merged = run_sweep(&spec, &epidemic_experiments()).unwrap();
    assert_eq!(merged.resumed_trials, merged.total_trials());
    assert_eq!(
        emitted(&merged),
        emitted(&uninterrupted),
        "merged shards must reproduce the single-machine output"
    );

    // A shard from a different grid is refused before anything is written.
    let mut foreign_spec = SweepSpec::new("merge", vec![400, 900], 7); // trials differ
    foreign_spec.master_seed = 0x5AAD;
    foreign_spec.journal = Some(temp_journal("merge-foreign-target"));
    let err = merge_journals(
        &foreign_spec,
        &epidemic_experiments(),
        std::slice::from_ref(&shard_a),
    )
    .unwrap_err();
    assert!(err.0.contains("fingerprint mismatch"), "{err}");

    for path in [shard_a, shard_b, target] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn pinned_engine_refuses_engine_deaf_experiments() {
    // The "flaky" experiment ignores ctx.engine, so pinning an engine
    // over it must fail loudly instead of silently emitting identical
    // numbers for both settings.
    let mut spec = SweepSpec::new("deaf", vec![500], 2);
    spec.engine = "sequential".parse().unwrap();
    let err = run_sweep(&spec, &epidemic_experiments()).unwrap_err();
    assert!(err.0.contains("flaky") && err.0.contains("engine"), "{err}");
    spec.engine = "auto".parse().unwrap();
    assert!(run_sweep(&spec, &epidemic_experiments()).is_ok());
}
