//! Aggregated sweep results.
//!
//! The runner stores every trial's metric vector in a slot indexed by its
//! grid coordinates, so a [`SweepReport`] is independent of worker
//! scheduling: the same spec and master seed produce the same report — and
//! the same emitted bytes — at any thread count. Missing metric values
//! (e.g. "termination time" of a run that never terminated) are encoded as
//! NaN and excluded from summaries.

use pp_analysis::stats::{quantile, Summary};

/// One completed trial at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial index in `0..trials`.
    pub trial: usize,
    /// The derived seed the trial ran with.
    pub seed: u64,
    /// Metric values, in the experiment's metric order (NaN = missing).
    pub values: Vec<f64>,
    /// Nonzero engine telemetry counters observed during the trial
    /// (name → cumulative count), sorted by name. Empty when the trial
    /// predates telemetry, ran with `PP_METRICS=off`, or simply touched
    /// no instrumented engine path. Counters are a deterministic function
    /// of the trial's trajectory, so resumed and fresh runs agree.
    pub counters: Vec<(String, u64)>,
}

/// All trials of one experiment at one population size.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Experiment name.
    pub experiment: String,
    /// Population size.
    pub n: u64,
    /// Metric names, fixing the order of [`TrialRecord::values`].
    pub metrics: Vec<String>,
    /// Trial records, ordered by trial index.
    pub trials: Vec<TrialRecord>,
}

impl PointResult {
    /// Index of `metric` in this point's metric list.
    ///
    /// # Panics
    ///
    /// Panics if the experiment has no such metric.
    pub fn metric_index(&self, metric: &str) -> usize {
        self.metrics
            .iter()
            .position(|m| m == metric)
            .unwrap_or_else(|| {
                panic!(
                    "experiment {:?} has no metric {metric:?} (has: {:?})",
                    self.experiment, self.metrics
                )
            })
    }

    /// The metric's present (non-NaN) values, in trial order.
    pub fn values(&self, metric: &str) -> Vec<f64> {
        let idx = self.metric_index(metric);
        self.trials
            .iter()
            .map(|t| t.values[idx])
            .filter(|x| !x.is_nan())
            .collect()
    }

    /// The metric's raw values including NaN placeholders, in trial order.
    pub fn raw_values(&self, metric: &str) -> Vec<f64> {
        let idx = self.metric_index(metric);
        self.trials.iter().map(|t| t.values[idx]).collect()
    }

    /// Summary statistics over the metric's present values.
    ///
    /// # Panics
    ///
    /// Panics if no trial produced the metric (matching
    /// [`Summary::of`] on an empty sample).
    pub fn summary(&self, metric: &str) -> Summary {
        Summary::of(&self.values(metric))
    }

    /// Mean of the metric's present values (shorthand for
    /// `summary(metric).mean`).
    pub fn mean(&self, metric: &str) -> f64 {
        self.summary(metric).mean
    }

    /// Empirical quantile (`q ∈ [0, 1]`) of the metric's present values.
    pub fn quantile(&self, metric: &str, q: f64) -> f64 {
        quantile(&self.values(metric), q)
    }

    /// Number of trials whose value for a 0/1 indicator metric is true
    /// (present and `> 0.5`).
    pub fn count_true(&self, metric: &str) -> usize {
        self.values(metric).iter().filter(|&&x| x > 0.5).count()
    }

    /// Trials that carried a telemetry snapshot (nonzero counters).
    pub fn instrumented_trials(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| !t.counters.is_empty())
            .count()
    }

    /// Every counter name seen at this point, sorted (the union over
    /// instrumented trials).
    pub fn counter_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .trials
            .iter()
            .flat_map(|t| t.counters.iter().map(|(k, _)| k.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Sum of a counter across all instrumented trials (a trial that
    /// carried counters but not this one contributes zero).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.trials
            .iter()
            .flat_map(|t| &t.counters)
            .filter(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .sum()
    }

    /// Mean of a counter over the instrumented trials, or NaN if no trial
    /// was instrumented.
    pub fn counter_mean(&self, name: &str) -> f64 {
        let trials = self.instrumented_trials();
        if trials == 0 {
            return f64::NAN;
        }
        self.counter_total(name) as f64 / trials as f64
    }
}

/// The aggregated outcome of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (from the spec).
    pub name: String,
    /// Master seed the grid was derived from.
    pub master_seed: u64,
    /// Grid points in canonical order (experiment-major, then size).
    pub points: Vec<PointResult>,
    /// How many trials were loaded from the journal instead of executed.
    pub resumed_trials: usize,
    /// How many trials failed permanently (panicked through all retries)
    /// and are therefore absent from their point's records. A sweep with
    /// failures still completes; callers deciding whether to trust the
    /// aggregates should check this.
    pub failed_trials: usize,
}

impl SweepReport {
    /// The grid point for `experiment` at population size `n`.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no such point.
    pub fn point(&self, experiment: &str, n: u64) -> &PointResult {
        self.points
            .iter()
            .find(|p| p.experiment == experiment && p.n == n)
            .unwrap_or_else(|| {
                panic!(
                    "sweep {:?} has no point ({experiment:?}, n = {n})",
                    self.name
                )
            })
    }

    /// All grid points of one experiment, in size order.
    pub fn points_for(&self, experiment: &str) -> Vec<&PointResult> {
        self.points
            .iter()
            .filter(|p| p.experiment == experiment)
            .collect()
    }

    /// Total trials across all points.
    pub fn total_trials(&self) -> usize {
        self.points.iter().map(|p| p.trials.len()).sum()
    }

    /// Whether any trial in the report carried telemetry counters —
    /// callers gate the counter emitters on this so uninstrumented sweeps
    /// produce exactly the bytes they always did.
    pub fn has_counters(&self) -> bool {
        self.points.iter().any(|p| p.instrumented_trials() > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> PointResult {
        PointResult {
            experiment: "e".into(),
            n: 100,
            metrics: vec!["time".into(), "ok".into()],
            trials: vec![
                TrialRecord {
                    trial: 0,
                    seed: 1,
                    values: vec![2.0, 1.0],
                    counters: vec![("batches".into(), 4), ("gc_passes".into(), 1)],
                },
                TrialRecord {
                    trial: 1,
                    seed: 2,
                    values: vec![f64::NAN, 0.0],
                    counters: Vec::new(),
                },
                TrialRecord {
                    trial: 2,
                    seed: 3,
                    values: vec![4.0, 1.0],
                    counters: vec![("batches".into(), 8)],
                },
            ],
        }
    }

    #[test]
    fn nan_values_are_missing() {
        let p = point();
        assert_eq!(p.values("time"), vec![2.0, 4.0]);
        assert_eq!(p.raw_values("time").len(), 3);
        assert_eq!(p.summary("time").mean, 3.0);
        assert_eq!(p.count_true("ok"), 2);
        assert_eq!(p.quantile("time", 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "no metric")]
    fn unknown_metric_panics_with_context() {
        point().values("nope");
    }

    #[test]
    fn counter_aggregation_skips_uninstrumented_trials() {
        let p = point();
        assert_eq!(p.instrumented_trials(), 2);
        assert_eq!(p.counter_names(), vec!["batches", "gc_passes"]);
        assert_eq!(p.counter_total("batches"), 12);
        assert_eq!(p.counter_mean("batches"), 6.0);
        // A counter only some instrumented trials saw averages over all
        // instrumented trials (absent = 0 for that trial).
        assert_eq!(p.counter_mean("gc_passes"), 0.5);
        assert_eq!(p.counter_total("nope"), 0);
        let empty = PointResult {
            trials: Vec::new(),
            ..point()
        };
        assert!(empty.counter_mean("batches").is_nan());
    }

    #[test]
    fn report_lookup() {
        let report = SweepReport {
            name: "s".into(),
            master_seed: 1,
            points: vec![point()],
            resumed_trials: 0,
            failed_trials: 0,
        };
        assert_eq!(report.point("e", 100).n, 100);
        assert_eq!(report.points_for("e").len(), 1);
        assert_eq!(report.total_trials(), 3);
    }
}
